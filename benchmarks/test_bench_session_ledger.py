"""Benchmark: the session-aware write path under the ledger workload
(PR 8's tentpole).

Three experiments against a 3-node fleet running the double-entry
ledger (strict ``ledger`` table, relaxed ``accounts``):

* **read-your-writes transition** — a session INSERTs a transfer and
  re-reads it at the loosest bound: the first read must bounce to the
  back-end (the replica has not applied the session's commit yet), and
  once replication catches up the same read must serve locally;
* **routing split vs write rate** — the seeded mixed workload at write
  rates 0 / 5 / 10 / 20 %: the local-read fraction falls as the write
  rate grows, because every fresh commit pins its re-reads remote until
  the agents apply it;
* **mixed throughput** — operations/second of the 10 %-write mix versus
  the read-only baseline (median of three interleaved trials, both over
  the same preloaded key distribution), with the acceptance bar at
  >= 80 % of the baseline: the write path must not tax the read path.

Headline numbers land in ``benchmarks/BENCH_8.json``.

Run:  pytest benchmarks/test_bench_session_ledger.py -s
"""

import statistics
import time

from repro import FleetConfig, Session
from repro.chaos import InvariantChecker
from repro.workloads import LedgerWorkload

WRITE_RATES = (0.0, 0.05, 0.1, 0.2)
DURATION = 60.0
THINK = 0.1
PRELOAD = 60
TRIALS = 3


def build_ledger(write_rate, seed=7):
    """A 3-node fleet + installed workload on a fast replication cadence
    (100 ms agents), preloaded so every run re-reads the same keys."""
    fleet = FleetConfig(nodes=3).build()
    workload = LedgerWorkload(
        fleet, n_accounts=64, seed=seed, write_rate=write_rate,
        update_interval=0.1, update_delay=0.05, heartbeat_interval=0.1,
    ).install()
    fleet.run_for(3.0)
    workload.preload(PRELOAD)
    fleet.run_for(2.0)
    return fleet, workload


def drive_once(write_rate):
    """One seeded run; returns (ops/s wall, workload, checker)."""
    fleet, workload = build_ledger(write_rate)
    checker = InvariantChecker(fleet)
    t0 = time.perf_counter()
    workload.drive(DURATION, think_time=THINK, checker=checker,
                   raise_errors=True)
    wall = time.perf_counter() - t0
    workload.audit(checker)
    summary = workload.summary()
    ops = summary["reads"] + summary["writes"]
    return ops / wall, workload, checker


def test_read_your_writes_transition(bench_recorder):
    fleet, _ = build_ledger(0.0)
    session = Session("bench-writer")
    fleet.execute(
        "INSERT INTO ledger VALUES (9001, 0, 1, 42), (9001, 1, 2, -42)",
        session=session,
    )
    read = (
        "SELECT l.tid, l.leg, l.account, l.delta FROM ledger l "
        "WHERE l.tid = 9001 CURRENCY BOUND 600 SEC ON (l)"
    )
    first = fleet.execute(read, session=session)
    fleet.run_for(3.0)
    after = fleet.execute(read, session=session)

    bench_recorder(8)["ryw_transition"] = {
        "scenario": "strict ledger, 600 s bound: the session floor alone "
                    "decides the branch",
        "floors": dict(session.floors),
        "first_read_routing": first.routing,
        "first_read_rows": len(first.rows),
        "post_catchup_routing": after.routing,
        "post_catchup_rows": len(after.rows),
    }
    print(f"\n=== ryw transition: first read {first.routing}, "
          f"after catch-up {after.routing} ===")

    # The guard must serve the write remotely while the replica lags and
    # locally once replication has caught the session's floor up.
    assert (len(first.rows), first.routing) == (2, "remote")
    assert (len(after.rows), after.routing) == (2, "local")


def test_routing_split_vs_write_rate(bench_recorder):
    split = {}
    for rate in WRITE_RATES:
        _, workload, checker = drive_once(rate)
        assert checker.violations == []
        assert checker.ryw_checked == checker.ryw_satisfied
        summary = workload.summary()
        routed = summary["read_routing"]
        local_fraction = routed["local"] / max(1, sum(routed.values()))
        split[rate] = {
            "writes": summary["writes"],
            "reads": summary["reads"],
            "read_routing": routed,
            "local_read_fraction": round(local_fraction, 4),
        }
        print(f"\n=== write rate {rate:.0%}: {summary['writes']} writes, "
              f"{summary['reads']} reads, local {local_fraction:.1%} ===")

    bench_recorder(8)["routing_split"] = {
        "scenario": f"{DURATION:g}s sim, mean think {THINK:g}s, 3 nodes, "
                    f"64 accounts, {PRELOAD} preloaded transfers, "
                    "bounds [0, 2, 600] s",
        "by_write_rate": {f"{r:g}": v for r, v in split.items()},
    }

    # Fresh commits pin their re-reads remote until the agents apply
    # them: the local fraction falls monotonically-in-spirit — at least
    # strictly from the read-only split to the 20%-write split.
    assert split[0.2]["local_read_fraction"] < split[0.0]["local_read_fraction"]
    # And even at a 20% write rate most reads still serve locally.
    assert split[0.2]["local_read_fraction"] >= 0.4


def test_mixed_throughput_vs_read_only(bench_recorder):
    base_trials, mixed_trials = [], []
    for _ in range(TRIALS):  # interleaved, so machine drift hits both
        base_trials.append(drive_once(0.0)[0])
        mixed_trials.append(drive_once(0.1)[0])
    baseline = statistics.median(base_trials)
    mixed = statistics.median(mixed_trials)
    relative = mixed / baseline

    bench_recorder(8)["mixed_throughput"] = {
        "scenario": f"median of {TRIALS} interleaved trials, "
                    f"{DURATION:g}s sim at mean think {THINK:g}s",
        "read_only_ops_per_s": round(baseline, 1),
        "mixed_10pct_ops_per_s": round(mixed, 1),
        "mixed_over_read_only": round(relative, 4),
    }
    print(f"\n=== mixed 10% writes: {mixed:.0f} ops/s vs read-only "
          f"{baseline:.0f} ops/s ({relative:.2f}x) ===")

    # The write path must not tax the read path: the mixed stream
    # sustains at least 80% of the read-only throughput.
    assert relative >= 0.8, (
        f"mixed throughput {mixed:.0f} ops/s is only {relative:.0%} of the "
        f"read-only {baseline:.0f} ops/s"
    )
