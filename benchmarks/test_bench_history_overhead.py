"""Benchmark: history-recording overhead on the mixed ledger workload
(PR 9's tentpole budget).

The recorder's contract is "observability you can leave on in a run you
care about": commit observation is one truthiness check per commit,
per-read capture is gated on a single ``ctx.capture_reads`` boolean, and
the per-query record is one dict append — so throughput with recording
ON must stay within 5 % of recording OFF.

One experiment: the 10 %-write ledger mix on a 3-node fleet, recorder
off vs on, median of three interleaved trials (machine drift hits both
arms equally).  The ON arm also reports what the budget bought: record
counts by kind and a clean certification of the captured history.

Headline numbers land in ``benchmarks/BENCH_9.json``.

Run:  pytest benchmarks/test_bench_history_overhead.py -s
"""

import statistics
import time

from repro import FleetConfig
from repro.history import ConsistencyCertifier
from repro.workloads import LedgerWorkload

DURATION = 60.0
THINK = 0.1
PRELOAD = 60
WRITE_RATE = 0.1
TRIALS = 3
MAX_OVERHEAD = 0.05  # recording may cost at most 5% of throughput


def build_ledger(record_history, seed=7):
    """A 3-node ledger fleet on the fast replication cadence, preloaded
    so both arms re-read the same key distribution."""
    fleet = FleetConfig(nodes=3, record_history=record_history).build()
    workload = LedgerWorkload(
        fleet, n_accounts=64, seed=seed, write_rate=WRITE_RATE,
        update_interval=0.1, update_delay=0.05, heartbeat_interval=0.1,
    ).install()
    fleet.run_for(3.0)
    workload.preload(PRELOAD)
    fleet.run_for(2.0)
    return fleet, workload


def drive_once(record_history):
    """One seeded run; returns (ops/s wall, fleet)."""
    fleet, workload = build_ledger(record_history)
    t0 = time.perf_counter()
    workload.drive(DURATION, think_time=THINK, raise_errors=True)
    wall = time.perf_counter() - t0
    summary = workload.summary()
    ops = summary["reads"] + summary["writes"]
    return ops / wall, fleet


def test_recording_overhead_within_budget(bench_recorder):
    drive_once(False)  # untimed warm-up: imports, allocator, caches
    off_trials, on_trials = [], []
    recorded_fleet = None
    for _ in range(TRIALS):  # interleaved, so machine drift hits both
        off_trials.append(drive_once(False)[0])
        ops, recorded_fleet = drive_once(True)
        on_trials.append(ops)
    off = statistics.median(off_trials)
    on = statistics.median(on_trials)
    relative = on / off

    history = recorded_fleet.history.history
    certification = ConsistencyCertifier(history).certify()
    assert certification.ok, certification.anomalies

    bench_recorder(9)["recording_overhead"] = {
        "scenario": f"median of {TRIALS} interleaved trials, {DURATION:g}s "
                    f"sim of the {WRITE_RATE:.0%}-write ledger mix at mean "
                    f"think {THINK:g}s, 3 nodes",
        "recorder_off_ops_per_s": round(off, 1),
        "recorder_on_ops_per_s": round(on, 1),
        "on_over_off": round(relative, 4),
        "history_records": len(history),
        "records_by_kind": history.counts_by_kind(),
        "certified_anomalies": len(certification.anomalies),
    }
    print(f"\n=== recording on: {on:.0f} ops/s vs off {off:.0f} ops/s "
          f"({relative:.3f}x, {len(history)} records captured) ===")

    assert relative >= 1.0 - MAX_OVERHEAD, (
        f"recording costs {1 - relative:.1%} of throughput "
        f"(budget {MAX_OVERHEAD:.0%}): {on:.0f} vs {off:.0f} ops/s"
    )
