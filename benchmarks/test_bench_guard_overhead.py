"""Benchmark: Table 4.4 — the run-time overhead of currency guards.

For each of the three §4.3 queries —

* GQ1: single-row clustered-index lookup,
* GQ2: ~6-row indexed join fetch for one customer,
* GQ3: ~4% range scan (5975 rows at SF 1.0),

we time four plans, exactly as the paper did: the traditional local and
remote plans (no currency checking) and the guarded plan executed twice,
once with the local branch taken and once with the remote branch taken.
The reported overhead is guarded minus traditional, absolute and relative.

Expected *shape* (paper Table 4.4): the absolute overhead is small and
roughly constant; consequently the relative overhead is noticeable for the
tiny local queries (paper: 15% / 21%), small for the scan query (3.7%),
and small for all remote executions (< 5%) because remote execution time
dominates.

Run:  pytest benchmarks/test_bench_guard_overhead.py --benchmark-only -s
"""

import time

import pytest

from repro.engine.executor import ExecutionContext
from repro.workloads.queries import guard_query

#: iterations per measurement, keyed by expected execution weight
LIGHT_ITERS = 400
HEAVY_ITERS = 40

_report_rows = {}


def advance_until_stale(setup, bound, limit=200):
    """Advance simulated time until every region's staleness exceeds
    ``bound`` (so guards fail and remote branches run)."""
    for _ in range(limit):
        bounds = [agent.staleness_bound() or 0.0 for agent in setup.cache.agents.values()]
        if all(b > bound for b in bounds):
            return
        setup.cache.run_for(0.5)
    raise AssertionError("could not reach a stale state")


def advance_until_fresh(setup, bound, limit=200):
    for _ in range(limit):
        bounds = [agent.staleness_bound() or 1e9 for agent in setup.cache.agents.values()]
        if all(b < bound for b in bounds):
            return
        setup.cache.run_for(0.5)
    raise AssertionError("could not reach a fresh state")


def run_plan(cache, plan, iterations):
    """Average wall-clock execution time (s) and the row count."""
    root = plan.root()
    rows = 0
    # Warm-up (buffer pools / caches, as in the paper).
    for _ in range(3):
        ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
        result = cache.executor.execute(root, ctx=ctx, column_names=plan.column_names)
        rows = len(result.rows)
    start = time.perf_counter()
    for _ in range(iterations):
        ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
        cache.executor.execute(root, ctx=ctx, column_names=plan.column_names)
    elapsed = (time.perf_counter() - start) / iterations
    return elapsed, rows


def run_pair_interleaved(cache, plan_a, plan_b, iterations, batches=7):
    """Time two plans with interleaved executions, reporting the *median*
    per-batch average for each — robust against GC pauses and drift.
    Returns (time_a, time_b) in seconds."""
    root_a, root_b = plan_a.root(), plan_b.root()
    for root, plan in ((root_a, plan_a), (root_b, plan_b)):
        for _ in range(5):
            ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
            cache.executor.execute(root, ctx=ctx, column_names=plan.column_names)
    per_batch = max(iterations // batches, 1)
    means_a, means_b = [], []
    for _ in range(batches):
        total_a = total_b = 0.0
        for _ in range(per_batch):
            ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
            t0 = time.perf_counter()
            cache.executor.execute(root_a, ctx=ctx, column_names=plan_a.column_names)
            t1 = time.perf_counter()
            ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
            t2 = time.perf_counter()
            cache.executor.execute(root_b, ctx=ctx, column_names=plan_b.column_names)
            t3 = time.perf_counter()
            total_a += t1 - t0
            total_b += t3 - t2
        means_a.append(total_a / per_batch)
        means_b.append(total_b / per_batch)
    means_a.sort()
    means_b.sort()
    return means_a[len(means_a) // 2], means_b[len(means_b) // 2]


def plans_for(cache, name, scale_factor):
    """(local_plain, guarded, remote_plain) plans for one guard query."""
    base = guard_query(name, scale_factor)
    head, _, _ = base.partition(" CURRENCY")
    alias = "c" if "customer" in base else "o"
    local_plain = cache.optimize(f"{head} CURRENCY BOUND UNBOUNDED ON ({alias})")
    guarded = cache.optimize(base.replace("10 MIN", "10 SEC"))
    remote_plain = cache.optimize(head)
    assert "guarded" in guarded.summary(), (name, guarded.summary())
    assert local_plain.summary().startswith("scan"), (name, local_plain.summary())
    assert remote_plain.summary() == "remote", (name, remote_plain.summary())
    return local_plain, guarded, remote_plain


@pytest.mark.parametrize("name", ["gq1", "gq2", "gq3"])
def test_guard_overhead(execution_setup, benchmark, name):
    setup = execution_setup
    cache = setup.cache
    iters = LIGHT_ITERS if name in ("gq1", "gq2") else HEAVY_ITERS

    local_plain, guarded, remote_plain = plans_for(cache, name, setup.scale_factor)

    # --- local branch taken --------------------------------------------
    advance_until_fresh(setup, 10.0)
    _, n_rows = run_plan(cache, local_plain, 1)
    t_local_plain, t_guarded_local = benchmark.pedantic(
        lambda: run_pair_interleaved(cache, local_plain, guarded, iters),
        rounds=1,
        iterations=1,
    )
    ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
    cache.executor.execute(guarded.root(), ctx=ctx)
    assert ctx.branches and ctx.branches[0][1] == 0, "local branch expected"

    # --- remote branch taken -------------------------------------------
    advance_until_stale(setup, 10.0)
    t_remote_plain, t_guarded_remote = run_pair_interleaved(
        cache, remote_plain, guarded, max(iters // 5, 20)
    )
    ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
    cache.executor.execute(guarded.root(), ctx=ctx)
    assert ctx.branches and ctx.branches[0][1] == 1, "remote branch expected"

    local_abs = (t_guarded_local - t_local_plain) * 1e3
    local_rel = (t_guarded_local - t_local_plain) / t_local_plain * 100
    remote_abs = (t_guarded_remote - t_remote_plain) * 1e3
    remote_rel = (t_guarded_remote - t_remote_plain) / t_remote_plain * 100
    _report_rows[name] = (local_abs, local_rel, remote_abs, remote_rel, n_rows)

    # Shape assertions (very loose; micro-timing is noisy).
    assert abs(local_abs) < 5.0, "guard overhead should be well under 5ms"
    # Python micro-timings are far noisier than SQL Server's profiler;
    # the meaningful shape checks live in test_report_table_4_4.
    assert local_rel < 500.0
    assert remote_rel < 100.0


def test_registry_overhead_under_5_percent(execution_setup, benchmark):
    """The always-on metrics registry must cost < 5% on the guarded path.

    Times the gq3 guarded scan (the paper's representative execution
    query) with the cache's real MetricsRegistry attached, then with a
    NullRegistry swapped in, using the same interleaved-median harness
    as the Table 4.4 measurements.
    """
    from repro.obs import MetricsRegistry, NullRegistry

    setup = execution_setup
    cache = setup.cache
    advance_until_fresh(setup, 10.0)
    _, guarded, _ = plans_for(cache, "gq3", setup.scale_factor)

    previous = cache.metrics
    real = MetricsRegistry()
    null = NullRegistry()

    def measure(batches=9, iters=12):
        """Median per-batch mean for each registry, batches interleaved
        (same robustness trick as run_pair_interleaved)."""
        means_real, means_null = [], []
        for _ in range(batches):
            cache.set_metrics(real)
            t_r, _ = run_plan(cache, guarded, iters)
            cache.set_metrics(null)
            t_n, _ = run_plan(cache, guarded, iters)
            means_real.append(t_r)
            means_null.append(t_n)
        means_real.sort()
        means_null.sort()
        return means_real[len(means_real) // 2], means_null[len(means_null) // 2]

    try:
        t_real, t_null = benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        cache.set_metrics(previous)

    overhead = (t_real - t_null) / t_null * 100
    print(f"\nregistry overhead on gq3: real={t_real * 1e3:.4f}ms "
          f"null={t_null * 1e3:.4f}ms ({overhead:+.2f}%)")
    # The real registry did record the executions...
    assert real.snapshot()["queries_executed_total"] > 0
    # ...and costs less than 5% over the no-op registry.
    assert overhead < 5.0, f"metrics registry overhead {overhead:.2f}% >= 5%"


def test_report_table_4_4(execution_setup, benchmark):
    benchmark(lambda: None)
    print("\n\n=== Table 4.4: overhead of currency guards ===")
    print("(paper, local rel: Q1 15.3%, Q2 21.3%, Q3 3.7%; remote rel all < 5%)")
    header = f"{'query':6} {'local ms':>9} {'local %':>8} {'remote ms':>10} {'remote %':>9} {'# rows':>7}"
    print(header)
    for name in ("gq1", "gq2", "gq3"):
        if name not in _report_rows:
            continue
        la, lr, ra, rr, rows = _report_rows[name]
        print(f"{name:6} {la:9.4f} {lr:8.2f} {ra:10.4f} {rr:9.2f} {rows:7d}")
    if {"gq1", "gq3"} <= set(_report_rows):
        # The scan query's relative overhead must be far below the
        # point-lookup's (the paper's central observation).
        assert _report_rows["gq3"][1] < _report_rows["gq1"][1]
