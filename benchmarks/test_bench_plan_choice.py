"""Benchmark: Tables 4.1–4.3 and Figure 4.1 — optimizer plan choices.

For each query variant Q1–Q7 the benchmark times optimization and asserts
that the chosen plan matches the paper's rightmost column of Table 4.3:

====  =========================================================
Q1    plan 1 — whole query remote (selective join, default C&C)
Q2    plan 2 — local join of two remote base-table fetches
Q3    plan 1 — remote (consistency class spans two regions)
Q4    plan 4 — mixed: remote Customer + guarded orders_prj
Q5    plan 5 — local join of two guarded views
Q6    remote (back-end secondary index beats local scan, 53 rows)
Q7    guarded local view (5975-row range)
====  =========================================================

Run:  pytest benchmarks/test_bench_plan_choice.py --benchmark-only -s
"""

import pytest

from repro.engine import operators as ops
from repro.workloads.queries import plan_choice_query

EXPECTED = {
    "q1": "remote",
    "q2": "hashjoin(remote, remote)",
    "q3": "remote",
    "q4": "hashjoin(guarded(orders_prj), remote)",
    "q5": "hashjoin(guarded(orders_prj), guarded(cust_prj))",
    "q6": "remote",
    "q7": "guarded(cust_prj)",
}

_chosen = {}


@pytest.mark.parametrize("name", list(EXPECTED))
def test_plan_choice(paper_setup, benchmark, bench2_recorder, name):
    cache = paper_setup.cache
    sql = plan_choice_query(name)

    plan = benchmark(lambda: cache.optimize(sql))

    stats = benchmark.stats.stats
    bench2_recorder.setdefault("plan_choice_optimize", {})[name] = {
        "mean_us": stats.mean * 1e6,
        "ops_per_s": (1.0 / stats.mean) if stats.mean else None,
    }
    summary = plan.summary()
    _chosen[name] = summary
    assert summary == EXPECTED[name], f"{name}: expected {EXPECTED[name]}, got {summary}"

    # Figure 4.1's invariant: every local data access sits under a guard
    # (the unbounded case aside, which these queries never use).
    for op in plan.root().walk():
        if isinstance(op, (ops.SeqScan, ops.IndexSeek, ops.IndexRangeScan)):
            assert cache.catalog.has_matview(op.table.name)


def test_report_tables(paper_setup, benchmark):
    """Print Table 4.1 and the reproduced Table 4.3 plan column."""
    benchmark(lambda: None)
    print("\n\n=== Table 4.1: currency region settings ===")
    print(f"{'cid':5} {'interval':>8} {'delay':>6}  views")
    for cid, interval, delay, view in paper_setup.region_table():
        print(f"{cid:5} {interval:8.0f} {delay:6.0f}  {view}")
    print("\n=== Table 4.3 (plan column) — paper vs reproduction ===")
    print(f"{'query':6} {'paper plan':45} {'reproduced':45}")
    paper_names = {
        "q1": "plan 1: remote query",
        "q2": "plan 2: local join of two remote fetches",
        "q3": "plan 1: remote query (consistency)",
        "q4": "plan 4: mixed local/remote",
        "q5": "plan 5: both local, guarded",
        "q6": "remote (cost: back-end index)",
        "q7": "local view (cost: transfer volume)",
    }
    for name in EXPECTED:
        print(f"{name:6} {paper_names[name]:45} {_chosen.get(name, '?'):45}")
