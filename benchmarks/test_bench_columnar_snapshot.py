"""Benchmark: columnar engine throughput + plan-snapshot instantiation (PR 7).

Three measurements on the 2000-row replicated profile table:

* **scan, per engine** — the fused scan+filter+project returning 1600 of
  2000 rows, run under each of the three engines.  The acceptance bar is
  >= 10x the pre-PR-2 row engine (207.8 qps) on the columnar engine.
* **point_lookup latency, quiet** — 32 cached guarded point lookups,
  cycled, with a :class:`~repro.obs.metrics.NullRegistry` and the GC
  disabled.  Latency is sampled in batches of 32 queries per timer read
  (single-query samples on a shared 1-CPU box measure scheduler
  preemption, not the engine); the bar is p95 < 15 us.
* **snapshot instantiation** — rebuilding an executable plan from its
  serialized snapshot vs. a full parse+optimize of the same SQL; the bar
  is a >= 5x speedup (the point of shipping snapshots fleet-wide).

Everything lands in ``benchmarks/BENCH_7.json``, keyed per engine mode
where applicable.

Run:  pytest benchmarks/test_bench_columnar_snapshot.py -s
"""

import gc
import statistics
import time

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.engine.operators import ENGINES
from repro.obs.metrics import NullRegistry
from repro.plan import instantiate_snapshot, serialize_plan

#: Pre-PR-2 throughput of the row-at-a-time engine on this scan workload
#: (see benchmarks/test_bench_batch_engine.py); PR 7's bar is >= 10x it.
PRE_PR2_SCAN_QPS = 207.8
SCAN_SPEEDUP_FLOOR = 10.0

POINT_P95_CEILING_US = 15.0
SNAPSHOT_SPEEDUP_FLOOR = 5.0

N_ROWS = 2000
SCAN_QUERIES = 200
POINT_BATCH = 32  # queries per latency sample
POINT_SAMPLES = 400

POINT_SQLS = [
    f"SELECT p.id, p.score FROM profile p WHERE p.id = {k} "
    "CURRENCY BOUND 100 SEC ON (p)"
    for k in range(32)
]
SCAN_SQL = (
    "SELECT p.id, p.name, p.score FROM profile p WHERE p.score < 80 "
    "CURRENCY BOUND 100 SEC ON (p)"
)


def build_cache(engine=None):
    kwargs = {} if engine is None else {"engine": engine}
    backend = BackendServer(**kwargs)
    backend.create_table(
        "CREATE TABLE profile (id INT NOT NULL, name VARCHAR NOT NULL, "
        "score INT NOT NULL, PRIMARY KEY (id))"
    )
    for start in range(0, N_ROWS, 100):
        values = ", ".join(
            f"({i}, 'u{i}', {i % 100})" for i in range(start, start + 100)
        )
        backend.execute(f"INSERT INTO profile VALUES {values}")
    backend.refresh_statistics()
    cache = MTCache(backend, **kwargs)
    cache.create_region("r", 8.0, 2.0)
    cache.create_matview("profile_copy", "profile", ["id", "name", "score"],
                         region="r")
    cache.run_for(30.0)
    return cache


def _percentile(sorted_values, fraction):
    index = min(int(len(sorted_values) * fraction), len(sorted_values) - 1)
    return sorted_values[index]


def run_scan(cache, n_queries=SCAN_QUERIES):
    result = cache.execute(SCAN_SQL)  # warm the plan cache
    assert result.routing == "local"
    timer = time.perf_counter
    t0 = timer()
    for _ in range(n_queries):
        cache.execute(SCAN_SQL)
    elapsed = timer() - t0
    return {"qps": n_queries / elapsed, "queries": n_queries}


@pytest.mark.parametrize("engine", ENGINES)
def test_scan_throughput_per_engine(benchmark, bench7_recorder, engine):
    cache = build_cache(engine)
    stats = benchmark.pedantic(lambda: run_scan(cache), rounds=1, iterations=1)
    stats["speedup_vs_pre_pr2"] = stats["qps"] / PRE_PR2_SCAN_QPS
    bench7_recorder.setdefault("scan", {})[engine] = stats
    print(f"\n=== scan[{engine}]: {stats['qps']:.0f} qps "
          f"({stats['speedup_vs_pre_pr2']:.1f}x pre-PR-2) ===")
    if engine == "columnar":
        assert stats["speedup_vs_pre_pr2"] >= SCAN_SPEEDUP_FLOOR, (
            f"columnar scan {stats['qps']:.0f} qps is only "
            f"{stats['speedup_vs_pre_pr2']:.1f}x the pre-PR-2 baseline "
            f"of {PRE_PR2_SCAN_QPS} qps"
        )


def measure_point_latency(cache):
    """Quiet per-query latency: NullRegistry, GC off, batched sampling."""
    cache.set_metrics(NullRegistry())
    for sql in POINT_SQLS:
        result = cache.execute(sql)
        assert result.routing == "local"
        assert len(result.rows) == 1
    for i in range(1000):  # warm caches and code paths
        cache.execute(POINT_SQLS[i % len(POINT_SQLS)])
    timer = time.perf_counter
    samples = []
    gc.disable()
    try:
        for _ in range(POINT_SAMPLES):
            t0 = timer()
            for i in range(POINT_BATCH):
                cache.execute(POINT_SQLS[i])
            samples.append((timer() - t0) / POINT_BATCH)
    finally:
        gc.enable()
    samples.sort()
    return {
        "p50_us": _percentile(samples, 0.50) * 1e6,
        "p95_us": _percentile(samples, 0.95) * 1e6,
        "mean_us": statistics.mean(samples) * 1e6,
        "samples": POINT_SAMPLES,
        "queries_per_sample": POINT_BATCH,
    }


def test_point_lookup_latency_quiet(benchmark, bench7_recorder):
    cache = build_cache()  # default engine (columnar; tiny plans take the
    # materializing fast path automatically)
    stats = benchmark.pedantic(lambda: measure_point_latency(cache),
                               rounds=1, iterations=1)
    bench7_recorder.setdefault("point_lookup", {})["columnar"] = stats
    print(f"\n=== point_lookup quiet: p50 {stats['p50_us']:.1f}us, "
          f"p95 {stats['p95_us']:.1f}us, mean {stats['mean_us']:.1f}us ===")
    assert stats["p95_us"] < POINT_P95_CEILING_US, (
        f"point-lookup p95 {stats['p95_us']:.1f}us exceeds the "
        f"{POINT_P95_CEILING_US}us ceiling"
    )


def measure_snapshot_speedup(cache, n=300):
    sql = POINT_SQLS[7]
    cache.execute(sql)
    plan = cache.optimize(sql)
    snapshot = serialize_plan(plan, engine=cache.engine)
    timer = time.perf_counter

    t0 = timer()
    for _ in range(n):
        cache.optimize(sql, use_cache=False)
    t_optimize = (timer() - t0) / n

    t0 = timer()
    for _ in range(n):
        instantiate_snapshot(snapshot, cache)
    t_instantiate = (timer() - t0) / n

    replay = instantiate_snapshot(snapshot, cache)
    rows = cache._execute_plan(replay, sql_text=sql).rows
    assert rows == cache.execute(sql).rows, "snapshot replay must agree"
    return {
        "parse_optimize_us": t_optimize * 1e6,
        "instantiate_us": t_instantiate * 1e6,
        "speedup": t_optimize / t_instantiate,
        "iterations": n,
    }


def test_snapshot_instantiation_speedup(benchmark, bench7_recorder):
    cache = build_cache()
    stats = benchmark.pedantic(lambda: measure_snapshot_speedup(cache),
                               rounds=1, iterations=1)
    bench7_recorder["plan_snapshot"] = stats
    print(f"\n=== snapshot: instantiate {stats['instantiate_us']:.0f}us vs "
          f"parse+optimize {stats['parse_optimize_us']:.0f}us "
          f"({stats['speedup']:.1f}x) ===")
    assert stats["speedup"] >= SNAPSHOT_SPEEDUP_FLOOR, (
        f"snapshot instantiation is only {stats['speedup']:.1f}x faster "
        f"than parse+optimize (floor {SNAPSHOT_SPEEDUP_FLOOR}x)"
    )
