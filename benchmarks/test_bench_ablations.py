"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not from the paper's evaluation — these quantify why two of its design
decisions matter:

1. **Guard-probability-aware costing** (§3.2.4).  Costing a SwitchUnion
   with ``p·c_local + (1−p)·c_remote + c_guard`` vs. the naive ``p = 1``.
   With a bound barely above the region delay the guard rarely passes;
   the naive cost model still believes the local plan is nearly free and
   picks it, overestimating its value by orders of magnitude.

2. **Early consistency pruning** (§3.2.2's violation rule on partial
   plans).  Disabling it admits doomed partial plans into the DP table;
   the rule's benefit shows up as fewer candidates and less optimizer
   work on consistency-constrained multi-join queries.

Run:  pytest benchmarks/test_bench_ablations.py --benchmark-only -s
"""

import pytest

from repro.cache.mtcache import CachePlacement
from repro.optimizer.cost import guard_probability
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.query_info import analyze_select
from repro.sql.parser import parse
from repro.workloads.queries import plan_choice_query


def optimizer_variant(cache, probability_aware=True, early_pruning=True):
    placement = CachePlacement(cache, cache.cost_model, probability_aware=probability_aware)
    return Optimizer(placement, early_pruning=early_pruning)


def optimize_with(optimizer, cache, sql):
    return optimizer.optimize_info(analyze_select(parse(sql), cache.catalog))


class TestProbabilityAwareCosting:
    """Ablation 1: the p-term in SwitchUnion costing."""

    QUERY = (
        "SELECT c.c_custkey, c.c_name, c.c_acctbal FROM customer c "
        "WHERE c.c_acctbal BETWEEN 500 AND 938.2 CURRENCY BOUND {b} SEC ON (c)"
    )

    def test_cost_estimates_diverge_at_low_p(self, paper_setup, benchmark):
        cache = paper_setup.cache
        region = cache.catalog.region("cr1")  # f=15, d=5
        sql = self.QUERY.format(b=6)  # p = (6-5)/15 ~ 0.07
        aware = optimizer_variant(cache, probability_aware=True)
        naive = optimizer_variant(cache, probability_aware=False)

        plan_aware = benchmark(lambda: optimize_with(aware, cache, sql))
        plan_naive = optimize_with(naive, cache, sql)

        p = guard_probability(6, region.update_delay, region.update_interval)
        print("\n\n=== Ablation 1: guard-probability-aware costing ===")
        print(f"bound 6s on CR1 (f=15, d=5) -> p = {p:.3f}")
        print(f"{'model':12} {'chosen plan':40} {'est. cost':>12}")
        print(f"{'p-aware':12} {plan_aware.summary():40} {plan_aware.cost:12.0f}")
        print(f"{'naive p=1':12} {plan_naive.summary():40} {plan_naive.cost:12.0f}")

        # The guarded plan stays optimal here (its fallback costs the same
        # as the pure remote plan) but the naive model underestimates its
        # cost badly: it believes the cheap local branch always runs.
        assert plan_naive.summary() == "guarded(cust_prj)"
        assert plan_aware.cost > plan_naive.cost * 1.1

    JOIN_QUERY = (
        "SELECT c.c_custkey, c.c_name, o.o_orderkey, o.o_totalprice "
        "FROM customer c, orders o "
        "WHERE c.c_custkey = o.o_custkey AND c.c_custkey < 30001 "
        "CURRENCY BOUND {b} SEC ON (c), {b} SEC ON (o)"
    )

    def test_plan_flips_on_join_at_low_p(self, paper_setup, benchmark):
        """At p ~ 0.07 the guarded join's fallback is *two* expensive base-
        table fetches; the aware model ships the whole join instead, while
        the naive model still picks the all-local join."""
        cache = paper_setup.cache
        sql = self.JOIN_QUERY.format(b=6)
        aware = optimizer_variant(cache, probability_aware=True)
        naive = optimizer_variant(cache, probability_aware=False)
        plan_aware = benchmark(lambda: optimize_with(aware, cache, sql))
        plan_naive = optimize_with(naive, cache, sql)

        print("\n=== Ablation 1b: plan flip on the Q5-shaped join, bound 6s ===")
        print(f"{'p-aware':12} {plan_aware.summary():50} {plan_aware.cost:12.0f}")
        print(f"{'naive p=1':12} {plan_naive.summary():50} {plan_naive.cost:12.0f}")

        assert plan_naive.summary().count("guarded") == 2
        assert plan_aware.summary() != plan_naive.summary()
        assert "remote" in plan_aware.summary()

    def test_models_agree_at_high_p(self, paper_setup, benchmark):
        cache = paper_setup.cache
        sql = self.QUERY.format(b=600)  # p = 1
        aware = optimizer_variant(cache, probability_aware=True)
        naive = optimizer_variant(cache, probability_aware=False)
        plan_aware = benchmark(lambda: optimize_with(aware, cache, sql))
        plan_naive = optimize_with(naive, cache, sql)
        assert plan_aware.summary() == plan_naive.summary() == "guarded(cust_prj)"
        assert plan_aware.cost == pytest.approx(plan_naive.cost, rel=0.05)

    def test_expected_cost_tracks_reality_across_bounds(self, paper_setup, benchmark):
        """The aware model's cost is monotone non-increasing in the bound
        (looser bounds only help); the naive model is flat — it cannot see
        the difference at all."""
        cache = paper_setup.cache
        aware = optimizer_variant(cache, probability_aware=True)

        def sweep():
            return [
                optimize_with(aware, cache, self.QUERY.format(b=b)).cost
                for b in (6, 8, 12, 16, 20, 600)
            ]

        costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\n=== aware est. cost vs bound:", [f"{c:.0f}" for c in costs])
        assert all(a >= b - 1e-6 for a, b in zip(costs, costs[1:]))
        assert costs[0] > costs[-1] * 1.05  # looser bounds are cheaper


class TestEarlyPruning:
    """Ablation 2: the violation rule on partial plans."""

    def test_pruning_shrinks_search(self, paper_setup, benchmark):
        cache = paper_setup.cache
        sql = plan_choice_query("q3")  # single class across two regions
        pruned = optimizer_variant(cache, early_pruning=True)
        unpruned = optimizer_variant(cache, early_pruning=False)

        plan_pruned = benchmark(lambda: optimize_with(pruned, cache, sql))
        stats_pruned = dict(pruned.stats)
        plan_unpruned = optimize_with(unpruned, cache, sql)
        stats_unpruned = dict(unpruned.stats)

        print("\n\n=== Ablation 2: early consistency pruning (Q3) ===")
        print(f"{'variant':10} {'considered':>10} {'admitted':>9} {'pruned':>7} {'plan':>30}")
        print(
            f"{'early':10} {stats_pruned['considered']:10d} "
            f"{stats_pruned['admitted']:9d} {stats_pruned['pruned']:7d} "
            f"{plan_pruned.summary():>30}"
        )
        print(
            f"{'late':10} {stats_unpruned['considered']:10d} "
            f"{stats_unpruned['admitted']:9d} {stats_unpruned['pruned']:7d} "
            f"{plan_unpruned.summary():>30}"
        )

        # Same final plan either way (pruning is purely an optimization)...
        assert plan_pruned.summary() == plan_unpruned.summary() == "remote"
        # ...but early pruning discards candidates and shrinks the table.
        assert stats_pruned["pruned"] > 0
        assert stats_pruned["admitted"] < stats_unpruned["admitted"]

    def test_pruning_never_changes_answers(self, paper_setup, benchmark):
        cache = paper_setup.cache
        benchmark(lambda: None)
        for name in ("q1", "q2", "q3", "q4", "q5", "q6", "q7"):
            sql = plan_choice_query(name)
            with_pruning = optimize_with(optimizer_variant(cache), cache, sql)
            without = optimize_with(
                optimizer_variant(cache, early_pruning=False), cache, sql
            )
            assert with_pruning.summary() == without.summary(), name
            assert with_pruning.cost == pytest.approx(without.cost), name
