"""Benchmark: shard-primary failover under the mixed ledger workload
(PR 10's tentpole acceptance run).

One scripted scenario: a 3-node fleet over 2 back-end shards with one
log-shipping standby each runs the 10 %-write double-entry ledger; at
35 % of the run one shard primary crashes, the heartbeat failure
detector promotes its standby, and the workload keeps flowing.  The
acceptance bar: >= 99 % of queries inside the failover window are
served (fresh or explicitly degraded), zero invariant violations, and
zero certification anomalies over the recorded history.

A second, back-end-only section sweeps the detector's
``failure_timeout`` to chart what the promotion latency buys: the
latency is silence threshold + detection cadence, deterministic per
seed, so the sweep doubles as a regression fence on detection time.

Headline numbers land in ``benchmarks/BENCH_10.json``.

Run:  pytest benchmarks/test_bench_failover.py -s
"""

from repro.chaos import ChaosScheduler
from repro.chaos.env import build_ledger_fleet
from repro.shard import ShardedBackend

DURATION = 45.0
SEED = 7
MIN_SERVED = 0.99


def test_ledger_failover_meets_acceptance_bar(bench_recorder):
    fleet, workload = build_ledger_fleet(
        partitions=2, replicas=1, record_history=True,
    )
    chaos = ChaosScheduler(fleet, seed=SEED)
    shard = SEED % fleet.backend.partition_count
    chaos.backend_crash(shard, 0.35 * DURATION)
    report = chaos.run(DURATION, workload=workload)

    assert report.violations == []
    promotions = report.promotions()
    assert len(promotions) == 1
    promoted_shard, crashed_at, promoted_at, latency, epoch = promotions[0]
    assert promoted_shard == shard and epoch == 1

    served = report.served_fraction()
    assert served >= MIN_SERVED

    counts = {}
    for _, status in report.outcomes:
        counts[status] = counts.get(status, 0) + 1
    total = sum(counts.values())
    degraded_fraction = counts.get("degraded", 0) / total if total else 0.0

    certification = report.summary()["certification"]
    assert certification["anomalies"] == 0

    snap = fleet.metrics.snapshot()
    degraded_reads = sum(
        v for k, v in snap.items()
        if k.startswith("fleet_failover_degraded_total")
    )
    blocked_reads = sum(
        v for k, v in snap.items()
        if k.startswith("fleet_failover_blocked_total")
    )

    bench_recorder(10)["ledger_failover"] = {
        "seed": SEED,
        "duration_s": DURATION,
        "queries": total,
        "promotion_latency_s": round(latency, 6),
        "crashed_at_s": round(crashed_at, 6),
        "promoted_at_s": round(promoted_at, 6),
        "served_fraction_in_window": round(served, 6),
        "degraded_read_fraction": round(degraded_fraction, 6),
        "failover_degraded_reads": degraded_reads,
        "failover_blocked_reads": blocked_reads,
        "invariant_violations": len(report.violations),
        "certification_anomalies": certification["anomalies"],
    }
    print(
        f"\nfailover: promoted p{promoted_shard} in {latency:.2f}s, "
        f"served {served:.1%} in-window, "
        f"degraded {degraded_fraction:.1%} of {total} queries"
    )


def _promotion_latency(failure_timeout):
    backend = ShardedBackend(
        2, replicas=1, failure_timeout=failure_timeout,
    )
    backend.create_table(
        "CREATE TABLE kv (k INT NOT NULL, v INT NOT NULL, PRIMARY KEY (k))"
    )
    backend.execute(
        "INSERT INTO kv VALUES " + ", ".join(f"({i}, {i})" for i in range(32))
    )
    backend.scheduler.run_until(5.0)
    crashed_at = backend.crash_primary(0)
    backend.scheduler.run_until(crashed_at + failure_timeout + 5.0)
    assert len(backend.promotions) == 1
    return backend.promotions[0]["time"] - crashed_at


def test_detector_timeout_sweep(bench_recorder):
    sweep = {}
    for timeout in (0.75, 1.5, 3.0):
        latency = _promotion_latency(timeout)
        # Latency = heartbeat silence past ``timeout`` caught at the next
        # 0.25 s detector sweep: strictly ordered, near the timeout.
        assert timeout < latency <= timeout + 1.0
        sweep[f"{timeout:g}s"] = round(latency, 6)
    assert list(sweep.values()) == sorted(sweep.values())
    bench_recorder(10)["detector_timeout_sweep"] = sweep
    print(f"\ndetector sweep (timeout -> promotion latency): {sweep}")
