"""Benchmark: batch-at-a-time engine throughput (PR 2's tentpole).

Two MTCache workloads on a 2000-row replicated profile table, both served
entirely from guarded local views:

* **point_lookup** — 32 distinct cached point lookups on the clustered
  key, cycled; the mid-tier cache's bread-and-butter request.
* **scan** — a fused scan+filter+project returning 1600 of 2000 rows;
  the execution-bound shape the fused pipelines target.

Each workload reports qps and p50/p95 latency for the batch engine (the
default) and for the legacy row engine (``batch_size=1``), and asserts
the ≥2x speedup over the pre-PR row engine that this PR's acceptance
criteria demand.  Everything lands in ``benchmarks/BENCH_2.json``.

Run:  pytest benchmarks/test_bench_batch_engine.py -s
"""

import time

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache

#: Pre-PR throughput of the row-at-a-time engine on this exact workload
#: pair (same machine class, same table sizes), measured on the tree at
#: commit 45514d7 before the batch engine landed.  The acceptance bar is
#: >= 2x these numbers.
PRE_PR_BASELINE_QPS = {"point_lookup": 5821.0, "scan": 207.8}

N_ROWS = 2000
POINT_QUERIES = 3000
SCAN_QUERIES = 200


def build_cache(batch_size=None):
    kwargs = {} if batch_size is None else {"batch_size": batch_size}
    backend = BackendServer(**kwargs)
    backend.create_table(
        "CREATE TABLE profile (id INT NOT NULL, name VARCHAR NOT NULL, "
        "score INT NOT NULL, PRIMARY KEY (id))"
    )
    for start in range(0, N_ROWS, 100):
        values = ", ".join(
            f"({i}, 'u{i}', {i % 100})" for i in range(start, start + 100)
        )
        backend.execute(f"INSERT INTO profile VALUES {values}")
    backend.refresh_statistics()
    cache = MTCache(backend, **kwargs)
    cache.create_region("r", 8.0, 2.0)
    cache.create_matview("profile_copy", "profile", ["id", "name", "score"],
                         region="r")
    cache.run_for(30.0)
    return cache


def _percentile(sorted_values, fraction):
    index = min(int(len(sorted_values) * fraction), len(sorted_values) - 1)
    return sorted_values[index]


def run_workload(cache, sqls, n_queries):
    """Execute ``n_queries`` round-robin over ``sqls``; qps + latency."""
    for sql in sqls:  # warm the plan cache
        result = cache.execute(sql)
        assert result.routing == "local", "workload must be served locally"
    latencies = []
    timer = time.perf_counter
    t_start = timer()
    for i in range(n_queries):
        t0 = timer()
        cache.execute(sqls[i % len(sqls)])
        latencies.append(timer() - t0)
    elapsed = timer() - t_start
    latencies.sort()
    return {
        "qps": n_queries / elapsed,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p95_ms": _percentile(latencies, 0.95) * 1e3,
        "queries": n_queries,
    }


WORKLOADS = {
    "point_lookup": (
        [
            f"SELECT p.id, p.score FROM profile p WHERE p.id = {k} "
            "CURRENCY BOUND 100 SEC ON (p)"
            for k in range(32)
        ],
        POINT_QUERIES,
    ),
    "scan": (
        [
            "SELECT p.id, p.name, p.score FROM profile p WHERE p.score < 80 "
            "CURRENCY BOUND 100 SEC ON (p)"
        ],
        SCAN_QUERIES,
    ),
}


@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_batch_engine_throughput(benchmark, bench2_recorder, workload):
    sqls, n_queries = WORKLOADS[workload]
    batch_cache = build_cache()
    row_cache = build_cache(batch_size=1)

    batch = benchmark.pedantic(
        lambda: run_workload(batch_cache, sqls, n_queries), rounds=1, iterations=1
    )
    row = run_workload(row_cache, sqls, n_queries)

    baseline = PRE_PR_BASELINE_QPS[workload]
    speedup = batch["qps"] / baseline
    bench2_recorder.setdefault("workloads", {})[workload] = {
        "batch_engine": batch,
        "row_engine_batch_size_1": row,
        "pre_pr_baseline_qps": baseline,
        "speedup_vs_pre_pr": speedup,
    }

    print(f"\n=== {workload}: batch {batch['qps']:.0f} qps "
          f"(p50 {batch['p50_ms']:.3f}ms, p95 {batch['p95_ms']:.3f}ms) | "
          f"row {row['qps']:.0f} qps | pre-PR {baseline:.0f} qps | "
          f"speedup {speedup:.2f}x ===")

    # The PR's acceptance bar: >= 2x the pre-PR row engine.
    assert speedup >= 2.0, (
        f"{workload}: {batch['qps']:.0f} qps is only {speedup:.2f}x the "
        f"pre-PR baseline of {baseline:.0f} qps"
    )


def test_fused_pipelines_engage(benchmark, bench2_recorder):
    """The scan workload must actually run on the fused batch path."""
    cache = build_cache()
    sql = WORKLOADS["scan"][0][0]
    cache.execute(sql)
    result = benchmark.pedantic(lambda: cache.execute(sql), rounds=1, iterations=1)
    fused = list(result.context.fused_pipelines)
    assert any(label.startswith("SeqScan") or label.startswith("Project")
               for label in fused), fused
    assert cache.metrics.counter("engine_fused_pipelines_total").value > 0
    assert cache.metrics.counter("engine_batches_total").value > 0
    bench2_recorder["fused_pipeline_labels"] = sorted(set(fused))
