"""Benchmark: the run-time overhead of always-on query tracing.

Every query through ``MTCache.execute`` now gets a
:class:`~repro.obs.trace.TraceContext` — span tree, trace ring, event
log — when a real registry is attached, while a
:class:`~repro.obs.metrics.NullRegistry` keeps the entire path on the
falsy ``NULL_TRACE`` fast path.  This benchmark times the *full* execute
path (plan-cache hit + guard + scan) for the gq3 guarded range scan —
the paper's representative execution query — under both registries and
asserts the tracing + metrics machinery costs < 5%.

The headline numbers land in ``benchmarks/BENCH_4.json``.

Run:  pytest benchmarks/test_bench_trace_overhead.py --benchmark-only -s
"""

import time

from repro.obs import MetricsRegistry, NullRegistry
from repro.workloads.queries import guard_query


def advance_until_fresh(setup, bound, limit=200):
    """Advance simulated time until every region is fresher than
    ``bound`` (so the guards take the local branch)."""
    for _ in range(limit):
        bounds = [
            agent.staleness_bound() or 1e9
            for agent in setup.cache.agents.values()
        ]
        if all(b < bound for b in bounds):
            return
        setup.cache.run_for(0.5)
    raise AssertionError("could not reach a fresh state")


#: Interleaved batches; the median batch mean is reported (robust
#: against GC pauses and CPU-frequency drift).
BATCHES = 9
ITERS_PER_BATCH = 15
OVERHEAD_LIMIT_PCT = 5.0


def run_execute(cache, sql, iterations):
    """Average wall-clock seconds of one full ``cache.execute`` call."""
    start = time.perf_counter()
    for _ in range(iterations):
        cache.execute(sql)
    return (time.perf_counter() - start) / iterations


def test_trace_overhead_under_5_percent(execution_setup, benchmark,
                                        bench4_recorder):
    setup = execution_setup
    cache = setup.cache
    advance_until_fresh(setup, 10.0)
    sql = guard_query("gq3", setup.scale_factor).replace("10 MIN", "10 SEC")

    previous = cache.metrics
    real = MetricsRegistry()
    null = NullRegistry()

    def measure():
        # Warm both paths (plan cache, ring allocations) before timing.
        for registry in (real, null):
            cache.set_metrics(registry)
            run_execute(cache, sql, 5)
        means_real, means_null = [], []
        for _ in range(BATCHES):
            cache.set_metrics(real)
            means_real.append(run_execute(cache, sql, ITERS_PER_BATCH))
            cache.set_metrics(null)
            means_null.append(run_execute(cache, sql, ITERS_PER_BATCH))
        means_real.sort()
        means_null.sort()
        return means_real[len(means_real) // 2], means_null[len(means_null) // 2]

    try:
        t_real, t_null = benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        cache.set_metrics(previous)

    overhead = (t_real - t_null) / t_null * 100
    print(f"\ntracing overhead on gq3 execute: real={t_real * 1e3:.4f}ms "
          f"null={t_null * 1e3:.4f}ms ({overhead:+.2f}%)")

    # The traced path really did record trace trees and metrics...
    assert len(cache.traces) > 0
    trace = cache.traces.latest()
    assert trace.finished and any(
        span.name == "mtcache.execute" for span in trace.spans
    )
    assert real.snapshot()["queries_executed_total"] > 0
    # ...while the NullRegistry path stayed trace-free and allocation-light.
    assert null.snapshot() == {}

    bench4_recorder["trace_overhead_gq3"] = {
        "real_ms": round(t_real * 1e3, 4),
        "null_ms": round(t_null * 1e3, 4),
        "overhead_pct": round(overhead, 2),
        "limit_pct": OVERHEAD_LIMIT_PCT,
        "iterations": BATCHES * ITERS_PER_BATCH,
    }
    assert overhead < OVERHEAD_LIMIT_PCT, (
        f"tracing overhead {overhead:.2f}% >= {OVERHEAD_LIMIT_PCT}%"
    )
