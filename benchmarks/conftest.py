"""Shared fixtures for the paper-reproduction benchmarks.

Besides the environment fixtures, this conftest maintains the PR's
benchmark summary: tests that opt in via the ``bench2_recorder`` fixture
deposit their headline numbers (qps, p50/p95 latency, speedups) into a
shared dict, and at session end the dict is written to
``benchmarks/BENCH_2.json`` so the perf trajectory is recorded per PR.
"""

import json
import pathlib

import pytest

from repro.workloads.experiment import build_paper_setup

#: Accumulates {workload/section -> metrics} across the bench session.
_BENCH2 = {}


@pytest.fixture(scope="session")
def paper_setup():
    """The §4 environment with SF 1.0 statistics (plan-choice benches)."""
    return build_paper_setup(scale_factor=0.002, paper_scale_stats=True)


@pytest.fixture(scope="session")
def execution_setup():
    """A larger environment with *real* statistics for execution benches."""
    return build_paper_setup(scale_factor=0.01, paper_scale_stats=False)


@pytest.fixture(scope="session")
def bench2_recorder():
    """Mutable dict whose contents land in benchmarks/BENCH_2.json."""
    return _BENCH2


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH2:
        return
    path = pathlib.Path(__file__).resolve().parent / "BENCH_2.json"
    data = {}
    if path.exists():  # merge, so partial bench runs keep other sections
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data.update(_BENCH2)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
