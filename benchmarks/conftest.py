"""Shared fixtures for the paper-reproduction benchmarks.

Besides the environment fixtures, this conftest maintains the per-PR
benchmark summaries: tests that opt in via a ``bench_recorder(n)`` (or
legacy ``bench<n>_recorder``) fixture deposit their headline numbers
(qps, p50/p95 latency, speedups) into a shared dict, and at session end
each non-empty dict is merge-written to its ``benchmarks/BENCH_<n>.json``
so the perf trajectory is recorded per PR (BENCH_2: batch engine;
BENCH_3: cache fleet; BENCH_4: tracing overhead; BENCH_5: chaos
recovery; BENCH_6: sharded back-end scaling; BENCH_7: columnar engine +
plan snapshots, keyed per engine mode; BENCH_8: session write path +
ledger workload; BENCH_9: history-recording overhead; BENCH_10: shard
replica failover).
"""

import json
import pathlib

import pytest

from repro.workloads.experiment import build_paper_setup

#: Accumulates {workload/section -> metrics} per summary file.
_BENCH = {f"BENCH_{n}.json": {} for n in range(2, 11)}


def _recorder(n):
    return _BENCH[f"BENCH_{n}.json"]


@pytest.fixture(scope="session")
def paper_setup():
    """The §4 environment with SF 1.0 statistics (plan-choice benches)."""
    return build_paper_setup(scale_factor=0.002, paper_scale_stats=True)


@pytest.fixture(scope="session")
def execution_setup():
    """A larger environment with *real* statistics for execution benches."""
    return build_paper_setup(scale_factor=0.01, paper_scale_stats=False)


@pytest.fixture(scope="session")
def bench_recorder():
    """``bench_recorder(n)`` -> the mutable dict whose contents land in
    ``benchmarks/BENCH_<n>.json`` (merge-written at session end)."""
    return _recorder


@pytest.fixture(scope="session")
def bench2_recorder():
    """Mutable dict whose contents land in benchmarks/BENCH_2.json."""
    return _recorder(2)


@pytest.fixture(scope="session")
def bench3_recorder():
    """Mutable dict whose contents land in benchmarks/BENCH_3.json."""
    return _recorder(3)


@pytest.fixture(scope="session")
def bench4_recorder():
    """Mutable dict whose contents land in benchmarks/BENCH_4.json."""
    return _recorder(4)


@pytest.fixture(scope="session")
def bench5_recorder():
    """Mutable dict whose contents land in benchmarks/BENCH_5.json."""
    return _recorder(5)


@pytest.fixture(scope="session")
def bench6_recorder():
    """Mutable dict whose contents land in benchmarks/BENCH_6.json."""
    return _recorder(6)


@pytest.fixture(scope="session")
def bench7_recorder():
    """Mutable dict whose contents land in benchmarks/BENCH_7.json.

    Convention for PR 7: top-level sections keyed by workload, with
    per-engine-mode sub-dicts (``{"scan": {"columnar": {...}, ...}}``).
    """
    return _recorder(7)


def pytest_sessionfinish(session, exitstatus):
    for filename, recorded in _BENCH.items():
        if not recorded:
            continue
        path = pathlib.Path(__file__).resolve().parent / filename
        data = {}
        if path.exists():  # merge, so partial bench runs keep other sections
            try:
                data = json.loads(path.read_text())
            except ValueError:
                data = {}
        data.update(recorded)
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
