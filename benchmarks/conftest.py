"""Shared fixtures for the paper-reproduction benchmarks."""

import pytest

from repro.workloads.experiment import build_paper_setup


@pytest.fixture(scope="session")
def paper_setup():
    """The §4 environment with SF 1.0 statistics (plan-choice benches)."""
    return build_paper_setup(scale_factor=0.002, paper_scale_stats=True)


@pytest.fixture(scope="session")
def execution_setup():
    """A larger environment with *real* statistics for execution benches."""
    return build_paper_setup(scale_factor=0.01, paper_scale_stats=False)
