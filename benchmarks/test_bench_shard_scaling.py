"""Benchmark: sharded back-end QPS scaling (PR 6's tentpole).

Open-loop scaling experiment over :class:`~repro.shard.ShardedBackend`
at M ∈ {1, 2, 4} partitions:

* **calibration** — a few hundred *real* queries per topology (90%
  point lookups, 10% three-key IN probes) run through the full
  parse/route/execute path; the backend's per-shard busy ledger charges
  each sub-execution its measured service time, which yields a mean
  service time per query class and shard count.
* **open loop** — 1.2M session arrivals (``SHARD_BENCH_SESSIONS``
  scales this down for CI smoke runs) are drawn from a Zipf(s=1.1)
  popularity distribution over the key space, decorrelated from the key
  ordering with a Knuth multiplicative mix, routed with the *real*
  ``shard_of`` hash, and charged analytically to the owning shards'
  ledgers.  Shards drain in parallel, so the QPS denominator is the
  busiest shard's finish time (``simulated_makespan``), exactly like the
  fleet throughput bench.

Acceptance bar: M=4 sustains >= 1.7x the QPS of M=1 under the same
arrival stream — near-linear scaling lost only to the Zipf hot keys and
the multi-shard IN fan-out.  Headline numbers land in
``benchmarks/BENCH_6.json``.

Run:  pytest benchmarks/test_bench_shard_scaling.py -s
"""

import bisect
import os
import random

from repro.shard import ShardedBackend

N_ROWS = 4000
ZIPF_S = 1.1
#: Arrival stream size; override with SHARD_BENCH_SESSIONS for smoke runs.
N_SESSIONS = int(os.environ.get("SHARD_BENCH_SESSIONS", 1_200_000))
#: Real queries per topology used to calibrate service times.
N_CALIBRATION = 300
#: Fraction of sessions that are single-key point lookups (the rest are
#: three-key IN probes spanning shards).
POINT_FRACTION = 0.9
PARTITION_COUNTS = (1, 2, 4)


def build_backend(m):
    backend = ShardedBackend(m)
    backend.create_table(
        "CREATE TABLE profile (id INT NOT NULL, score INT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    backend.bulk_load("profile", [(i, i % 100) for i in range(N_ROWS)])
    backend.refresh_statistics()
    return backend


def zipf_cdf(n, s):
    """Cumulative popularity of ranks 1..n under Zipf(s)."""
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    return cdf


def sample_key(rng, cdf):
    """Zipf-ranked key, decorrelated from the key ordering so hot ranks
    spread across the hash space (Knuth multiplicative mix)."""
    rank = bisect.bisect_left(cdf, rng.random())
    return (rank * 2654435761) % N_ROWS


def session_stream(seed, n):
    """The deterministic arrival stream: (kind, keys) per session."""
    rng = random.Random(seed)
    cdf = zipf_cdf(N_ROWS, ZIPF_S)
    for _ in range(n):
        if rng.random() < POINT_FRACTION:
            yield "point", (sample_key(rng, cdf),)
        else:
            yield "in", tuple(sample_key(rng, cdf) for _ in range(3))


def point_sql(key):
    return f"SELECT p.id, p.score FROM profile p WHERE p.id = {key}"


def in_sql(keys):
    return (
        "SELECT p.id, p.score FROM profile p "
        f"WHERE p.id IN ({', '.join(str(k) for k in keys)})"
    )


def calibrate(backend, seed=23):
    """Run real queries; return mean service seconds per query class.

    The IN probe's cost is charged per *leg* (each contributing shard
    runs its subset scan concurrently), so its calibrated unit is
    seconds per shard-leg, not per statement.
    """
    backend.reset_load()
    legs = 0
    rng = random.Random(seed)
    cdf = zipf_cdf(N_ROWS, ZIPF_S)
    n_points = int(N_CALIBRATION * POINT_FRACTION)
    for _ in range(n_points):
        backend.execute(point_sql(sample_key(rng, cdf)))
    point_total = sum(backend.shard_load())
    backend.reset_load()
    for _ in range(N_CALIBRATION - n_points):
        keys = tuple(sample_key(rng, cdf) for _ in range(3))
        legs += len({backend.shard_of("profile", k) for k in keys})
        backend.execute(in_sql(keys))
    in_total = sum(backend.shard_load())
    return {
        "point_s": point_total / n_points,
        "in_leg_s": in_total / max(legs, 1),
    }


def open_loop(backend, service, n_sessions, seed=29):
    """Charge the whole arrival stream to the per-shard ledgers."""
    backend.reset_load()
    charge = backend._charge
    shard_of = backend.shard_of
    point_s = service["point_s"]
    in_leg_s = service["in_leg_s"]
    sessions = 0
    for kind, keys in session_stream(seed, n_sessions):
        sessions += 1
        if kind == "point":
            charge(shard_of("profile", keys[0]), point_s)
        else:
            for shard in {shard_of("profile", k) for k in keys}:
                charge(shard, in_leg_s)
    return sessions, backend.simulated_makespan()


def test_shard_scaling_qps(benchmark, bench6_recorder):
    backends = {m: build_backend(m) for m in PARTITION_COUNTS}

    def run_all():
        out = {}
        for m, backend in backends.items():
            service = calibrate(backend)
            sessions, makespan = open_loop(backend, service, N_SESSIONS)
            out[m] = {
                "service": service,
                "sessions": sessions,
                "makespan": makespan,
                "qps": sessions / makespan,
                "shard_load": backend.shard_load(),
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Sanity: the sharded topologies answer the same rows as M=1.
    probe = in_sql((1, 2, 3))
    want = sorted(backends[1].execute(probe).rows)
    for m in PARTITION_COUNTS[1:]:
        assert sorted(backends[m].execute(probe).rows) == want

    qps1 = results[1]["qps"]
    speedups = {m: results[m]["qps"] / qps1 for m in PARTITION_COUNTS}
    load4 = results[4]["shard_load"]
    balance = min(load4) / max(load4)

    bench6_recorder["shard_scaling"] = {
        "workload": (
            f"open loop, Zipf(s={ZIPF_S}) over {N_ROWS} keys, "
            f"{POINT_FRACTION:.0%} point lookups + "
            f"{1 - POINT_FRACTION:.0%} 3-key IN probes"
        ),
        "sessions": N_SESSIONS,
        "calibration_queries_per_topology": N_CALIBRATION,
        "topologies": {
            f"m{m}": {
                "qps": results[m]["qps"],
                "simulated_makespan_s": results[m]["makespan"],
                "service_point_us": results[m]["service"]["point_s"] * 1e6,
                "service_in_leg_us": results[m]["service"]["in_leg_s"] * 1e6,
                "speedup_vs_m1": speedups[m],
            }
            for m in PARTITION_COUNTS
        },
        "shard_load_balance_m4": balance,
        "speedup_m4_vs_m1": speedups[4],
    }

    print(
        "\n=== shard scaling: "
        + " | ".join(
            f"M={m} {results[m]['qps']:.0f} qps ({speedups[m]:.2f}x)"
            for m in PARTITION_COUNTS
        )
        + f" | M=4 balance {balance:.2f} ==="
    )

    # The PR's acceptance bar: near-linear scaling to 4 partitions.
    assert speedups[4] >= 1.7, (
        f"M=4 at {results[4]['qps']:.0f} qps is only {speedups[4]:.2f}x "
        f"the single partition's {qps1:.0f} qps"
    )
    assert speedups[2] >= 1.2
    assert balance > 0.25, f"hot keys collapsed onto one shard: {load4}"
