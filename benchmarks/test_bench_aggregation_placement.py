"""Benchmark: aggregation placement under currency constraints.

An extension experiment in the spirit of §4.1's cost-based decisions: for
an aggregation query over a replicated table, the optimizer chooses
between

* computing the aggregate **locally** over the guarded view (rows never
  leave the cache, but a failed guard falls back to fetching all matching
  base rows — far more bytes than the aggregated result), and
* shipping the **whole aggregate** to the back-end (a few rows cross the
  wire regardless of staleness).

Under the §3.2.4 expected-cost formula the fallback term dominates: any
appreciable fallback probability makes local aggregation a bad bet, so the
crossover sits exactly at ``B = d + f`` — the bound at which the guard is
*certain* to pass (p = 1).  Below it the aggregate ships to the back-end;
at and above it the cache computes it locally and saves the round trip.

Run:  pytest benchmarks/test_bench_aggregation_placement.py --benchmark-only -s
"""

import pytest

from repro.optimizer.cost import guard_probability
from repro.workloads.experiment import build_paper_setup
from repro.workloads.tpcd import apply_paper_scale_stats, customer_count

#: 3-row aggregate over ~2% of the Orders table.
AGG_SQL = (
    "SELECT o.o_orderstatus, COUNT(*) AS n, SUM(o.o_totalprice) AS total "
    "FROM orders o WHERE o.o_custkey < {k} GROUP BY o.o_orderstatus "
    "CURRENCY BOUND {b} SEC ON (o)"
)

#: orders_wide lives in CR2: f = 10, d = 5, so p = 1 first at B = 15.
CROSSOVER = 15.0
BOUNDS = [3, 6, 9, 12, 14, 14.5, 15, 20, 600]


@pytest.fixture(scope="module")
def setup():
    setup = build_paper_setup(scale_factor=0.002)
    # The default orders_prj lacks o_orderstatus; add a wider view so the
    # aggregate is locally computable.
    setup.cache.create_matview(
        "orders_wide",
        "orders",
        ["o_custkey", "o_orderkey", "o_totalprice", "o_orderstatus"],
        region="cr2",
    )
    apply_paper_scale_stats(setup.backend, setup.cache)
    setup.run_for(12)
    return setup


def agg_sql(setup, bound):
    k = max(2, int(customer_count(1.0) * 0.02))
    return AGG_SQL.format(k=k, b=bound)


def test_aggregation_placement_crossover(setup, benchmark):
    cache = setup.cache
    region = cache.catalog.region("cr2")

    def sweep():
        return [
            (bound, *_plan_of(cache, agg_sql(setup, bound)))
            for bound in BOUNDS
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n\n=== Aggregation placement vs currency bound (CR2: f=10, d=5) ===")
    print(f"{'bound':>6} {'p':>6} {'plan':40} {'est. cost':>12}")
    for bound, summary, cost in results:
        p = guard_probability(bound, region.update_delay, region.update_interval)
        print(f"{bound:6.1f} {p:6.2f} {summary:40} {cost:12.0f}")

    for bound, summary, _ in results:
        if bound < CROSSOVER:
            assert summary == "remote", (bound, summary)
        else:
            assert summary == "guarded(orders_wide)", (bound, summary)


def _plan_of(cache, sql):
    plan = cache.optimize(sql, use_cache=False)
    return plan.summary(), plan.cost


def test_local_aggregation_executes_correctly(setup, benchmark):
    cache = setup.cache
    backend = setup.backend
    sql = agg_sql(setup, 600)

    result = benchmark(lambda: cache.execute(sql))
    assert result.context.branches and result.context.branches[0][1] == 0

    expected = backend.execute(sql.partition(" CURRENCY")[0])
    assert sorted(result.rows) == sorted(expected.rows)


def test_remote_aggregation_executes_correctly(setup, benchmark):
    cache = setup.cache
    backend = setup.backend
    sql = agg_sql(setup, 3)

    result = benchmark(lambda: cache.execute(sql))
    assert result.plan.summary() == "remote"

    expected = backend.execute(sql.partition(" CURRENCY")[0])
    assert sorted(result.rows) == sorted(expected.rows)
