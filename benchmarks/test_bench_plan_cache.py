"""Benchmark: compiled-plan reuse (paper §3.2).

"Our approach is to enforce consistency constraints at optimization time
and at runtime enforce currency constraints.  This approach requires
re-optimization only if a view's consistency properties change."

The payoff is that repeated queries skip optimization entirely: the cached
dynamic plan stays valid across replication progress because the currency
guards re-decide local-vs-remote on every execution.  This bench measures
the end-to-end latency of a repeated guarded query with and without the
plan cache.

Run:  pytest benchmarks/test_bench_plan_cache.py --benchmark-only -s
"""

import time

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache

SQL = "SELECT k.id, k.v FROM kv k WHERE k.id = 17 CURRENCY BOUND 60 SEC ON (k)"
ITERS = 300


@pytest.fixture(scope="module")
def cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE kv (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    rows = ", ".join(f"({i}, {i})" for i in range(1, 201))
    backend.execute(f"INSERT INTO kv VALUES {rows}")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r", 10, 2, heartbeat_interval=1)
    cache.create_matview("kv_copy", "kv", ["id", "v"], region="r")
    cache.run_for(11)
    return cache


def timed_executions(cache, use_cache):
    start = time.perf_counter()
    for _ in range(ITERS):
        if use_cache:
            cache.execute(SQL)
        else:
            plan = cache.optimize(SQL, use_cache=False)
            from repro.engine.executor import ExecutionContext

            ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
            cache.executor.execute(plan.root(), ctx=ctx, column_names=plan.column_names)
    return (time.perf_counter() - start) / ITERS


def test_plan_cache_amortizes_optimization(cache, benchmark):
    cache.invalidate_plans()
    with_cache = benchmark.pedantic(
        lambda: timed_executions(cache, use_cache=True), rounds=1, iterations=1
    )
    without_cache = timed_executions(cache, use_cache=False)

    print("\n\n=== Plan-cache amortization (guarded point lookup) ===")
    print(f"re-optimizing every call : {without_cache * 1e6:9.1f} us/query")
    print(f"cached dynamic plan      : {with_cache * 1e6:9.1f} us/query")
    print(f"speedup                  : {without_cache / with_cache:9.1f}x")

    stats = cache.plan_cache_stats
    assert stats["hits"] >= ITERS - 1
    # Optimization dominates tiny queries; reuse must win decisively.
    assert with_cache * 3 < without_cache


def test_cached_plans_remain_guarded(cache, benchmark):
    """Correctness under reuse: the same plan object must keep switching
    branches with the replication cycle."""
    benchmark(lambda: None)
    cache.invalidate_plans()
    tight = "SELECT k.id FROM kv k CURRENCY BOUND 4 SEC ON (k)"
    seen = set()
    for _ in range(30):
        result = cache.execute(tight)
        seen.add(result.context.branches[0][1])
        cache.run_for(1.7)
    assert seen == {0, 1}  # both branches exercised by one cached plan
