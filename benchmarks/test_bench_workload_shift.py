"""Benchmark: Figure 4.2 — workload distribution between cache and back-end.

(a) fraction of queries served locally vs the currency bound B, for
    propagation delays d = 1, 5, 10 at refresh interval f = 100;
(b) fraction served locally vs the refresh interval f, for B = 10 and
    d = 1, 5, 8.

Each point is *measured* by executing a guarded query at start times spread
uniformly across the propagation cycle, and compared with the paper's
formula (1): p = clamp((B − d) / f, 0, 1).  The measured curve may sit
slightly below the analytic one — the heartbeat quantizes the staleness
bound upward by up to one beat — which is exactly the conservatism a
correct guard must have.

Run:  pytest benchmarks/test_bench_workload_shift.py --benchmark-only -s
"""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.optimizer.cost import guard_probability

HEARTBEAT = 0.5
TRIALS = 60


def build_cache(interval, delay):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE kv (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    rows = ", ".join(f"({i}, {i})" for i in range(1, 40))
    backend.execute(f"INSERT INTO kv VALUES {rows}")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r", interval, delay, heartbeat_interval=HEARTBEAT)
    cache.create_matview("kv_copy", "kv", ["id", "v"], region="r")
    cache.run_for(interval + delay + 2 * HEARTBEAT)
    return cache


def measure_local_fraction(cache, bound, interval):
    """Execute the guarded query TRIALS times, start times spread across
    propagation cycles; return the fraction served locally."""
    sql = f"SELECT k.id FROM kv k CURRENCY BOUND {bound} SEC ON (k)"
    plan = cache.optimize(sql)
    if plan.summary() == "remote":
        return 0.0  # compile-time pruning: bound below the region delay
    local = 0
    step = interval / TRIALS * 6.37  # irrational-ish stride across cycles
    from repro.engine.executor import ExecutionContext

    for _ in range(TRIALS):
        cache.run_for(step)
        ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
        result = cache.executor.execute(plan.root(), ctx=ctx, column_names=plan.column_names)
        if ctx.branches and ctx.branches[0][1] == 0:
            local += 1
    return local / TRIALS


FIG_A_DELAYS = [1.0, 5.0, 10.0]
FIG_A_INTERVAL = 100.0
FIG_A_BOUNDS = [0, 5, 10, 20, 40, 60, 80, 100, 120, 150]

FIG_B_BOUND = 10.0
FIG_B_DELAYS = [1.0, 5.0, 8.0]
FIG_B_INTERVALS = [1, 2, 5, 10, 20, 40, 80, 100]


@pytest.mark.parametrize("delay", FIG_A_DELAYS)
def test_figure_4_2a_vs_currency_bound(benchmark, delay):
    cache = build_cache(FIG_A_INTERVAL, delay)

    def run():
        return [
            measure_local_fraction(cache, bound, FIG_A_INTERVAL)
            for bound in FIG_A_BOUNDS
        ]

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    analytic = [guard_probability(b, delay, FIG_A_INTERVAL) for b in FIG_A_BOUNDS]

    print(f"\n\n=== Figure 4.2(a): % local vs bound (f={FIG_A_INTERVAL:g}, d={delay:g}) ===")
    print(f"{'B':>5} {'measured':>9} {'analytic':>9}")
    for bound, m, a in zip(FIG_A_BOUNDS, measured, analytic):
        print(f"{bound:5.0f} {m:9.2%} {a:9.2%}")

    slack = HEARTBEAT / FIG_A_INTERVAL + 0.12
    for bound, m, a in zip(FIG_A_BOUNDS, measured, analytic):
        # Never above the analytic curve beyond sampling noise; never below
        # it by more than heartbeat conservatism + sampling noise.
        assert m <= a + 0.12, (bound, m, a)
        assert m >= a - slack, (bound, m, a)
    # The shape: 0 below the delay, monotone, saturated at B >= d + f.
    assert measured[0] == 0.0
    assert measured[-1] == 1.0


@pytest.mark.parametrize("delay", FIG_B_DELAYS)
def test_figure_4_2b_vs_refresh_interval(benchmark, delay):
    def run():
        out = []
        for interval in FIG_B_INTERVALS:
            cache = build_cache(float(interval), delay)
            out.append(measure_local_fraction(cache, FIG_B_BOUND, float(interval)))
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    analytic = [guard_probability(FIG_B_BOUND, delay, float(f)) for f in FIG_B_INTERVALS]

    print(f"\n\n=== Figure 4.2(b): % local vs refresh interval (B={FIG_B_BOUND:g}, d={delay:g}) ===")
    print(f"{'f':>5} {'measured':>9} {'analytic':>9}")
    for interval, m, a in zip(FIG_B_INTERVALS, measured, analytic):
        print(f"{interval:5.0f} {m:9.2%} {a:9.2%}")

    for interval, m, a in zip(FIG_B_INTERVALS, measured, analytic):
        slack = HEARTBEAT / float(interval) + 0.15
        assert m <= a + 0.12, (interval, m, a)
        assert m >= a - slack, (interval, m, a)
    # Paper's observation: while f <= B - d the query always runs locally;
    # increasing f shifts work to the back-end, steeply at first.
    saturated = [m for f, m in zip(FIG_B_INTERVALS, measured) if f <= FIG_B_BOUND - delay - HEARTBEAT]
    assert all(m >= 0.85 for m in saturated)
    assert measured[-1] < measured[0] + 1e-9 or measured[0] == 1.0
