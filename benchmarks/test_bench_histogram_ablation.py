"""Ablation benchmark: equi-depth histograms vs uniform interpolation.

The paper's Q6/Q7 experiment hinges on cardinality estimates: the
optimizer sends the 53-row range to the back-end's index and keeps the
5,975-row range on the local view.  With *uniform* min/max interpolation
those estimates collapse on skewed data — a range over a dense value
region looks tiny, so the optimizer ships it to the back-end and ends up
transferring almost the whole table.  Equi-depth histograms restore the
estimate, and with it the plan.

Setup: a 20k-row table whose ``score`` column is 95% concentrated in
[0, 100] with a 5% tail out to 10,000; back-end has a secondary index on
``score``, the cache view does not (exactly the Q6/Q7 asymmetry).

Run:  pytest benchmarks/test_bench_histogram_ablation.py --benchmark-only -s
"""

import random

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache

ROWS = 20_000
DENSE_SQL = (
    "SELECT m.id, m.score FROM metrics m WHERE m.score BETWEEN 0 AND 100 "
    "CURRENCY BOUND 60 SEC ON (m)"
)
SPARSE_SQL = (
    "SELECT m.id, m.score FROM metrics m WHERE m.score BETWEEN 5000 AND 5400 "
    "CURRENCY BOUND 60 SEC ON (m)"
)


def build(strip_histograms):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE metrics (id INT NOT NULL, score FLOAT NOT NULL, PRIMARY KEY (id))"
    )
    rng = random.Random(99)
    batch = []
    for i in range(1, ROWS + 1):
        if rng.random() < 0.95:
            score = rng.uniform(0, 100)  # dense head
        else:
            score = rng.uniform(100, 10_000)  # long tail
        batch.append(f"({i}, {score:.2f})")
        if len(batch) >= 5000:
            backend.execute(f"INSERT INTO metrics VALUES {', '.join(batch)}")
            batch.clear()
    if batch:
        backend.execute(f"INSERT INTO metrics VALUES {', '.join(batch)}")
    backend.create_index("CREATE INDEX ix_score ON metrics (score)")
    backend.refresh_statistics()
    if strip_histograms:
        for entry in backend.catalog.tables():
            for stats in entry.stats.columns.values():
                stats.histogram = None
    cache = MTCache(backend)
    cache.create_region("r", 10, 2, heartbeat_interval=1)
    cache.create_matview("metrics_copy", "metrics", ["id", "score"], region="r")
    if strip_histograms:
        for view in cache.catalog.matviews():
            for stats in view.stats.columns.values():
                stats.histogram = None
    cache.run_for(11)
    return cache


def run_case(cache, sql):
    plan = cache.optimize(sql, use_cache=False)
    result = cache.execute(sql)
    shipped = sum(n for _, n in result.context.remote_queries)
    return plan.summary(), plan.est_rows, len(result.rows), shipped


def test_histogram_ablation(benchmark):
    def run():
        with_hist = build(strip_histograms=False)
        without = build(strip_histograms=True)
        return {
            ("hist", "dense"): run_case(with_hist, DENSE_SQL),
            ("uniform", "dense"): run_case(without, DENSE_SQL),
            ("hist", "sparse"): run_case(with_hist, SPARSE_SQL),
            ("uniform", "sparse"): run_case(without, SPARSE_SQL),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n\n=== Histogram ablation: skewed score column (95% in [0,100]) ===")
    print(f"{'stats':8} {'range':7} {'plan':25} {'est rows':>9} {'true rows':>10} {'shipped':>8}")
    for (stats, case), (summary, est, true, shipped) in sorted(results.items()):
        print(f"{stats:8} {case:7} {summary:25} {est:9.0f} {true:10d} {shipped:8d}")

    hist_dense = results[("hist", "dense")]
    unif_dense = results[("uniform", "dense")]
    hist_sparse = results[("hist", "sparse")]

    # Histograms estimate the dense range within ~30%; uniform is off by
    # an order of magnitude (it sees 1% of the domain, truth is ~95%).
    assert abs(hist_dense[1] - hist_dense[2]) <= 0.3 * hist_dense[2]
    assert unif_dense[1] < 0.15 * unif_dense[2]

    # The misestimate flips the plan: uniform ships the dense range to the
    # back-end (nearly the whole table over the wire); histograms keep it
    # local and ship nothing.
    assert hist_dense[0] == "guarded(metrics_copy)"
    assert hist_dense[3] == 0
    assert unif_dense[0] == "remote"
    assert unif_dense[3] == unif_dense[2] > 15_000

    # The genuinely selective tail range goes remote either way (back-end
    # index wins) — histograms don't just bias toward local plans.
    assert hist_sparse[0] == "remote"


def test_histogram_estimates_match_reality(benchmark):
    cache = build(strip_histograms=False)

    def estimates():
        out = []
        for lo, hi in ((0, 50), (0, 100), (200, 2000), (9000, 10000)):
            sql = (
                f"SELECT m.id FROM metrics m WHERE m.score BETWEEN {lo} AND {hi}"
            )
            _, est, _ = cache.backend.estimate(sql)
            true = len(cache.backend.execute(sql).rows)
            out.append((lo, hi, est, true))
        return out

    rows = benchmark.pedantic(estimates, rounds=1, iterations=1)
    print("\n=== estimate vs truth ===")
    for lo, hi, est, true in rows:
        print(f"  [{lo:5d}, {hi:5d}]  est={est:8.0f}  true={true:8d}")
        assert abs(est - true) <= max(0.35 * true, ROWS / 16)
