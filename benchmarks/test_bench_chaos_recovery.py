"""Benchmark: crash recovery and availability under a chaos schedule
(PR 5's tentpole).

One explicit 60 s-simulated fault schedule against the shared demo
fleet — two node crashes with scheduled restarts, one fleet-wide
back-end outage, one node partition, and one agent stall long enough to
trip standby failover — while a mixed-bound workload flows through the
front door and every delivered result is audited by the C&C invariant
checker.

Headline numbers land in ``benchmarks/BENCH_5.json``:

* per-crash **cold-restart recovery time** (crash → warmed-up-and-UP, in
  simulated seconds);
* the fraction of queries issued *inside a fault window* that were still
  served — fresh or explicitly degraded — with the acceptance bar at
  >= 95%;
* invariant-audit volume (results + views checked, violations found).

Run:  pytest benchmarks/test_bench_chaos_recovery.py -s
"""

from repro.chaos import ChaosScheduler, build_demo_fleet

DURATION = 60.0


def test_chaos_recovery_and_availability(benchmark, bench5_recorder):
    fleet = build_demo_fleet()
    chaos = ChaosScheduler(fleet, seed=11)
    # The ISSUE's required mix, placed explicitly so the windows are
    # documented: crashes recover mid-run, the stall outlasts the 2.5 s
    # failover threshold, and the outage hits while node1 is warming.
    chaos.crash("node0", at=8.0, restart_after=6.0)
    chaos.crash("node1", at=20.0, restart_after=8.0)
    chaos.stall(at=14.0, duration=10.0)          # trips standby promotion
    chaos.partition("node2", at=30.0, duration=5.0)
    chaos.outage(at=42.0, duration=5.0)

    report = benchmark.pedantic(
        lambda: chaos.run(DURATION), rounds=1, iterations=1
    )

    recoveries = report.recoveries()
    served = report.served_fraction()
    summary = report.summary()
    history = "\n".join(report.history_lines())

    bench5_recorder["chaos_recovery"] = {
        "scenario": "60s sim: 2 node crashes (+restarts), 10s agent stall "
                    "(failover), 5s partition, 5s back-end outage; "
                    "bounds [0, 2, 600] s",
        "seed": report.seed,
        "queries": summary["queries"],
        "outcomes": summary["outcomes"],
        "errors": summary["errors"],
        "invariant_violations": summary["invariant_violations"],
        "results_audited": summary["results_checked"],
        "recovery_times_s": {
            node: round(delta, 3) for node, _, _, delta in recoveries
        },
        "mean_recovery_s": round(
            sum(d for _, _, _, d in recoveries) / len(recoveries), 3
        ) if recoveries else None,
        "served_ok_fraction_in_fault_windows": round(served, 4),
    }

    print(f"\n=== chaos recovery: {summary['queries']} queries, "
          f"{summary['errors']} errors, "
          f"{summary['invariant_violations']} violations | recoveries "
          f"{[f'{n}:{d:.2f}s' for n, _, _, d in recoveries]} | "
          f"served-ok in fault windows {served:.1%} ===")

    # Acceptance: both crashed nodes came back (cold rebuild + warm-up)...
    assert len(recoveries) == 2
    assert {node for node, _, _, _ in recoveries} == {"node0", "node1"}
    # ...the stall really promoted a standby...
    assert "failover: promoted standby" in history
    # ...nothing escaped as an unhandled exception, nothing violated a
    # C&C invariant (bounds honored or explicitly waived, views
    # re-converged to the back-end)...
    assert summary["errors"] == 0
    assert report.violations == []
    # ...and availability during the fault windows held the bar.
    assert served >= 0.95, f"only {served:.1%} served during fault windows"
