"""Benchmark: back-end offload as currency requirements relax (paper §1).

The paper's core motivation for MTCache is reducing back-end load:
"Suppose we have a back-end database server that is overloaded.  To reduce
the query load, we replicate part of the database to other database
servers that act as caches."  This bench quantifies that effect with the
mixed-workload driver: a stream of guarded point lookups whose currency
bounds sweep from strict to relaxed, reporting how many queries (and how
many rows) still reach the back-end.

Expected shape: back-end load is total at bound 0, decreases monotonically
(up to sampling noise) as bounds relax, and vanishes once every request
tolerates a full propagation cycle — the load-centric view of Figure 4.2.

Run:  pytest benchmarks/test_bench_backend_offload.py --benchmark-only -s
"""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.workloads.driver import WorkloadDriver, point_lookup_factory

INTERVAL = 8.0
DELAY = 2.0
QUERIES = 80


def build_cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE profile (uid INT NOT NULL, score INT NOT NULL, PRIMARY KEY (uid))"
    )
    rows = ", ".join(f"({i}, {i % 100})" for i in range(1, 201))
    backend.execute(f"INSERT INTO profile VALUES {rows}")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r", INTERVAL, DELAY, heartbeat_interval=0.5)
    cache.create_matview("profile_copy", "profile", ["uid", "score"], region="r")
    cache.run_for(INTERVAL + 1)
    return cache


BOUNDS = [0, 3, 5, 7, 9, 12, 30]


def test_backend_offload(benchmark):
    def run():
        out = []
        for bound in BOUNDS:
            cache = build_cache()
            driver = WorkloadDriver(cache, seed=17)
            factory = point_lookup_factory("profile", "uid", (1, 200), alias="p")
            report = driver.run(factory, [bound], n_queries=QUERIES, think_time=0.9)
            out.append((bound, report))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n\n=== Back-end offload vs currency bound "
          f"(f={INTERVAL:g}, d={DELAY:g}, {QUERIES} lookups each) ===")
    print(f"{'bound':>6} {'local %':>8} {'backend queries':>16} {'rows shipped':>13}")
    for bound, report in results:
        print(
            f"{bound:6.0f} {report.local_fraction:8.1%} "
            f"{report.remote_queries:16d} {report.rows_shipped:13d}"
        )

    by_bound = {bound: report for bound, report in results}
    # Strict currency: everything still lands on the back-end.
    assert by_bound[0].remote_queries == QUERIES
    assert by_bound[0].local_fraction == 0.0
    # Fully relaxed: the back-end sees nothing.
    assert by_bound[30].remote_queries == 0
    assert by_bound[30].local_fraction == 1.0
    # Broad monotone decline of back-end load as bounds relax (allow small
    # sampling wiggles between adjacent points).
    loads = [by_bound[b].remote_queries for b in BOUNDS]
    assert all(b <= a + QUERIES * 0.15 for a, b in zip(loads, loads[1:]))
    assert loads[0] > loads[3] > loads[-1]
