"""Benchmark: cache-fleet throughput and availability (PR 3's tentpole).

Two experiments against one shared back-end, both under the workload
driver with simulated think time disabled (a closed loop):

* **throughput** — the same guarded point-lookup workload is routed
  through a 3-node fleet and a 1-node fleet; the simulated-capacity
  ledger (``simulated_makespan``) models the nodes truly running in
  parallel, and the acceptance bar is the 3-node fleet sustaining >= 2x
  the single cache's qps.
* **outage** — a 3-node fleet takes a mixed-bound workload while the
  back-end is unreachable for 2 simulated seconds and every distribution
  agent is stalled: loose bounds keep serving locally, strict bounds
  degrade per the nodes' fallback policy, remote-only queries ride the
  outage out via retry/backoff — and the run must finish with zero
  raised errors while the fleet metrics record the retries and breaker
  transitions.

Headline numbers land in ``benchmarks/BENCH_3.json``.

Run:  pytest benchmarks/test_bench_fleet.py -s
"""

from repro.cache.backend import BackendServer
from repro.fleet import CacheFleet
from repro.workloads.driver import WorkloadDriver, point_lookup_factory

N_ROWS = 500
N_QUERIES = 600


def build_fleet(n_nodes, **kwargs):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE profile (id INT NOT NULL, score INT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    for start in range(0, N_ROWS, 100):
        values = ", ".join(f"({i}, {i % 100})" for i in range(start, start + 100))
        backend.execute(f"INSERT INTO profile VALUES {values}")
    backend.refresh_statistics()
    fleet = CacheFleet(backend, n_nodes=n_nodes, **kwargs)
    fleet.create_region("r", 4.0, 1.0, heartbeat_interval=0.5)
    fleet.create_matview("profile_copy", "profile", ["id", "score"], region="r")
    fleet.run_for(6.0)
    return fleet


def drive(fleet, n_queries=N_QUERIES, bounds=(600,), think_time=0,
          raise_errors=True, seed=7):
    factory = point_lookup_factory("profile", "id", (0, N_ROWS - 1), alias="p")
    fleet.reset_load()
    report = WorkloadDriver(fleet, seed=seed).run(
        factory, list(bounds), n_queries, think_time=think_time,
        raise_errors=raise_errors,
    )
    return report, fleet.simulated_makespan()


def test_fleet_throughput_vs_single_cache(benchmark, bench3_recorder):
    triple = build_fleet(3)
    single = build_fleet(1)

    triple_report, triple_makespan = benchmark.pedantic(
        lambda: drive(triple), rounds=1, iterations=1
    )
    single_report, single_makespan = drive(single)

    assert triple_report.local_fraction == 1.0, "workload must stay local"
    assert single_report.local_fraction == 1.0

    triple_qps = N_QUERIES / triple_makespan
    single_qps = N_QUERIES / single_makespan
    speedup = triple_qps / single_qps
    bench3_recorder["throughput"] = {
        "workload": "guarded point lookups, closed loop, bound 600s",
        "queries": N_QUERIES,
        "fleet_3_nodes": {
            "simulated_makespan_s": triple_makespan,
            "qps": triple_qps,
            "per_node_queries": dict(sorted(triple_report.by_node.items())),
        },
        "single_cache": {
            "simulated_makespan_s": single_makespan,
            "qps": single_qps,
        },
        "speedup_vs_single": speedup,
    }

    print(f"\n=== fleet throughput: 3 nodes {triple_qps:.0f} qps "
          f"(makespan {triple_makespan:.3f}s) | single {single_qps:.0f} qps "
          f"(makespan {single_makespan:.3f}s) | speedup {speedup:.2f}x ===")

    # The PR's acceptance bar: >= 2x a single cache under the same driver.
    assert speedup >= 2.0, (
        f"3-node fleet at {triple_qps:.0f} qps is only {speedup:.2f}x the "
        f"single cache's {single_qps:.0f} qps"
    )


def test_fleet_rides_out_backend_outage(benchmark, bench3_recorder):
    fleet = build_fleet(3, reset_timeout=0.5)
    fleet.network.inject_outage(2.0)
    fleet.network.stall_agents(2.0)

    # Mixed bounds: 0 forces remote-only plans (retry through the outage),
    # 2 is tighter than the stalled regions (degrades per fallback
    # policy), 600 tolerates the lag (stays local).
    report, _ = benchmark.pedantic(
        lambda: drive(fleet, n_queries=60, bounds=(0, 2, 600),
                      think_time=0.25, raise_errors=False),
        rounds=1, iterations=1,
    )

    snap = report.metrics["fleet"]
    retries = sum(v for k, v in snap.items()
                  if k.startswith("fleet_remote_retries_total"))
    transitions = sum(v for k, v in snap.items()
                      if k.startswith("fleet_breaker_transitions_total"))
    degraded = sum(v for k, v in snap.items()
                   if k.startswith("fleet_degraded_total"))
    bench3_recorder["outage"] = {
        "scenario": "2s back-end outage + agent stall, 3 nodes, "
                    "bounds [0, 2, 600] s",
        "queries": report.queries,
        "errors": report.errors,
        "warnings": report.warnings,
        "local_fraction_bound_600": report.local_fraction_for(600),
        "retries": retries,
        "breaker_transitions": transitions,
        "degraded_queries": degraded,
    }

    print(f"\n=== outage: {report.queries} queries, {report.errors} errors, "
          f"{report.warnings} warnings, {retries} retries, "
          f"{transitions} breaker transitions, {degraded} degraded ===")

    # Acceptance: the mixed workload completes with zero raised errors...
    assert report.errors == 0
    assert report.queries == 60
    # ...loose bounds kept serving locally...
    assert report.local_fraction_for(600) == 1.0
    # ...and the fleet metrics recorded the retries and breaker activity
    # the remote-only queries generated while riding out the outage.
    assert retries > 0
    assert transitions > 0
