"""Benchmark: Table 4.5 — currency-guard overhead by execution phase.

The paper profiles the three phases of executing an already-optimized
plan — *setup* (instantiate the executable tree, bind resources), *run*
(produce rows) and *shutdown* — and attributes the guard overhead to each.
Our iterator executor has the same structure (open / drain / close), so we
measure per-phase times for the guarded and traditional local plans of
GQ1–GQ3 and report the deltas.

Expected shape (paper Table 4.5):

* the **setup** overhead is independent of the output size (a SwitchUnion
  and its selector are instantiated regardless of rows);
* the **run** overhead contains a fixed part (evaluating the guard
  predicate once) plus a per-row part, so it grows with the row count but
  *shrinks* relative to the query's own run time (under 4% for the ~6000
  row scan in the paper);
* **shutdown** overhead is tiny.

Run:  pytest benchmarks/test_bench_phase_overhead.py --benchmark-only -s
"""

import pytest

from repro.engine.executor import ExecutionContext
from repro.workloads.queries import guard_query

ITERS = {"gq1": 600, "gq2": 600, "gq3": 80}
_rows = {}


def measure_phases(cache, plan, iterations, batches=7):
    """Median-of-batches (setup, run, shutdown) averages, in seconds."""
    root = plan.root()
    for _ in range(5):
        ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
        cache.executor.execute(root, ctx=ctx, column_names=plan.column_names)
    per_batch = max(iterations // batches, 1)
    sums = []
    for _ in range(batches):
        setup = run = shutdown = 0.0
        rows = 0
        for _ in range(per_batch):
            ctx = ExecutionContext(clock=cache.clock, timeline=cache.session)
            result = cache.executor.execute(root, ctx=ctx, column_names=plan.column_names)
            setup += result.timings.setup
            run += result.timings.run
            shutdown += result.timings.shutdown
            rows = len(result.rows)
        sums.append((setup / per_batch, run / per_batch, shutdown / per_batch, rows))
    sums.sort(key=lambda t: t[0] + t[1] + t[2])
    return sums[len(sums) // 2]


def fresh_plans(setup, name):
    cache = setup.cache
    base = guard_query(name, setup.scale_factor)
    head, _, _ = base.partition(" CURRENCY")
    alias = "c" if "customer" in base else "o"
    plain = cache.optimize(f"{head} CURRENCY BOUND UNBOUNDED ON ({alias})")
    guarded = cache.optimize(base.replace("10 MIN", "45 SEC"))
    assert "guarded" in guarded.summary()
    return plain, guarded


def settle_fresh(setup, bound=40.0, limit=200):
    for _ in range(limit):
        bounds = [a.staleness_bound() or 1e9 for a in setup.cache.agents.values()]
        if all(b < bound for b in bounds):
            return
        setup.cache.run_for(0.5)
    raise AssertionError("never fresh")


@pytest.mark.parametrize("name", ["gq1", "gq2", "gq3"])
def test_phase_overhead(execution_setup, benchmark, name):
    setup = execution_setup
    cache = setup.cache
    plain, guarded = fresh_plans(setup, name)
    settle_fresh(setup)

    def run():
        p = measure_phases(cache, plain, ITERS[name])
        g = measure_phases(cache, guarded, ITERS[name])
        return p, g

    (p_setup, p_run, p_shut, rows), (g_setup, g_run, g_shut, _) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    _rows[name] = {
        "rows": rows,
        "setup": (g_setup - p_setup, p_setup),
        "run": (g_run - p_run, p_run),
        "shutdown": (g_shut - p_shut, p_shut),
    }
    # Sanity: phases measured, totals positive.
    assert p_setup >= 0 and p_run > 0
    assert g_setup >= 0 and g_run > 0


def test_report_table_4_5(execution_setup, benchmark):
    benchmark(lambda: None)
    print("\n\n=== Table 4.5: local currency-guard overhead by phase ===")
    print("(paper: setup overhead independent of output size; run overhead")
    print(" fixed + per-row, relatively small for the big scan; shutdown tiny)")
    print(f"{'query':6} {'rows':>6} | {'setup us':>9} {'setup %':>8} | "
          f"{'run us':>9} {'run %':>7} | {'shut us':>8}")
    for name in ("gq1", "gq2", "gq3"):
        if name not in _rows:
            continue
        entry = _rows[name]
        s_abs, s_base = entry["setup"]
        r_abs, r_base = entry["run"]
        d_abs, _ = entry["shutdown"]
        s_rel = s_abs / s_base * 100 if s_base else float("nan")
        r_rel = r_abs / r_base * 100 if r_base else float("nan")
        print(
            f"{name:6} {entry['rows']:6d} | {s_abs * 1e6:9.2f} {s_rel:8.1f} | "
            f"{r_abs * 1e6:9.2f} {r_rel:7.1f} | {d_abs * 1e6:8.2f}"
        )
    if {"gq1", "gq3"} <= set(_rows):
        # Run-phase *relative* overhead shrinks as the query grows.  The
        # bound is deliberately loose: at these µs scales, Python timing
        # noise can perturb individual runs (the paper's point — a fixed
        # guard cost amortized over more rows — still shows in the trend).
        r1 = _rows["gq1"]["run"][0] / _rows["gq1"]["run"][1]
        r3 = _rows["gq3"]["run"][0] / _rows["gq3"]["run"][1]
        assert r3 < max(r1, 0.6)
        # Setup overhead stays the same order of magnitude regardless of
        # output size (within generous noise bounds).
        s1 = abs(_rows["gq1"]["setup"][0])
        s3 = abs(_rows["gq3"]["setup"][0])
        assert s3 < max(s1 * 25, 60e-6)
