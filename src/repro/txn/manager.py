"""Transaction manager for the master database.

The appendix's model assigns each committing update transaction an integer
id — a timestamp — in increasing order, and defines the history ``H_n`` as
the composition of the first ``n`` transactions.  :class:`TransactionManager`
implements exactly that: transactions buffer row operations, and at commit
the manager assigns the next id, stamps every touched row's ``xtime``, and
appends the changes to the :class:`~repro.txn.log.ReplicationLog`.

The simulation is single-threaded, so Strict 2PL degenerates to serial
execution; conflict handling is therefore trivially serializable, which is
all the paper's model requires of the master.
"""

from repro.common.errors import StorageError, TransactionError
from repro.txn.log import LogRecord, Operation, ReplicationLog


class _PendingOp:
    __slots__ = ("op", "table", "pk", "values")

    def __init__(self, op, table, pk, values=None):
        self.op = op
        self.table = table
        self.pk = pk
        self.values = values


class Transaction:
    """A buffered update transaction against master tables."""

    def __init__(self, manager):
        self._manager = manager
        self._ops = []
        self.state = "active"
        self.txn_id = None
        self.commit_time = None

    def _require_active(self):
        if self.state != "active":
            raise TransactionError(f"transaction is {self.state}, not active")

    def insert(self, table_name, values):
        """Buffer an INSERT of ``values`` into ``table_name``."""
        self._require_active()
        table = self._manager._table(table_name)
        values = tuple(values)
        table.schema.validate_row(values)
        pk = self._manager._pk_of(table, values)
        self._ops.append(_PendingOp(Operation.INSERT, table.name, pk, values))

    def update(self, table_name, pk, values):
        """Buffer an UPDATE of the row with primary key ``pk``."""
        self._require_active()
        table = self._manager._table(table_name)
        values = tuple(values)
        table.schema.validate_row(values)
        self._ops.append(_PendingOp(Operation.UPDATE, table.name, tuple(pk), values))

    def delete(self, table_name, pk):
        """Buffer a DELETE of the row with primary key ``pk``."""
        self._require_active()
        table = self._manager._table(table_name)
        self._ops.append(_PendingOp(Operation.DELETE, table.name, tuple(pk)))

    def commit(self):
        """Apply all buffered operations atomically-in-order and log them."""
        self._require_active()
        self._manager._commit(self)
        return self.txn_id

    def abort(self):
        self._require_active()
        self._ops = []
        self.state = "aborted"


class TransactionManager:
    """Assigns commit timestamps and maintains the replication log."""

    def __init__(self, clock, tables=None):
        self.clock = clock
        self._tables = dict(tables or {})
        self.log = ReplicationLog()
        self._next_txn_id = 1
        self.committed = []  # list of (txn_id, commit_time) in order
        #: Commit observers (``callback(txn)`` after a successful commit);
        #: the history recorder registers here.  Kept as a plain list so
        #: the non-observed commit path pays one truthiness check.
        self.observers = []

    def register_table(self, table):
        self._tables[table.name] = table

    def _table(self, name):
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise TransactionError(f"unknown table: {name}") from None

    @staticmethod
    def _pk_of(table, values):
        ci = table.clustered_index()
        if ci is None:
            raise TransactionError(f"table {table.name} needs a primary key for replication")
        return ci.key_of(values)

    def begin(self):
        return Transaction(self)

    @property
    def last_txn_id(self):
        return self._next_txn_id - 1

    def _commit(self, txn):
        txn_id = self._next_txn_id
        commit_time = self.clock.now()
        for op in txn._ops:
            table = self._table(op.table)
            if op.op is Operation.INSERT:
                table.insert(op.values, xtime=txn_id, commit_time=commit_time)
                old = None
            elif op.op is Operation.UPDATE:
                rid = table.pk_lookup(op.pk)
                if rid is None:
                    raise StorageError(f"update: no row with pk {op.pk} in {table.name}")
                old = table.update(rid, op.values, xtime=txn_id, commit_time=commit_time)
            else:
                rid = table.pk_lookup(op.pk)
                if rid is None:
                    raise StorageError(f"delete: no row with pk {op.pk} in {table.name}")
                old = table.delete(rid, xtime=txn_id, commit_time=commit_time)
            self.log.append(
                LogRecord(
                    txn_id,
                    commit_time,
                    op.table,
                    op.op,
                    op.pk,
                    values=op.values,
                    old_values=old,
                )
            )
        self._next_txn_id += 1
        self.committed.append((txn_id, commit_time))
        txn.txn_id = txn_id
        txn.commit_time = commit_time
        txn.state = "committed"
        if self.observers:
            for observer in self.observers:
                observer(txn)

    def run(self, callback):
        """Run ``callback(txn)`` inside a new transaction and commit it.

        Aborts (without re-raising suppression) if the callback raises.
        """
        txn = self.begin()
        try:
            callback(txn)
        except Exception:
            txn.abort()
            raise
        txn.commit()
        return txn
