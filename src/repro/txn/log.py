"""The replication log.

Every committed write on the master database appends :class:`LogRecord`
entries in commit order.  The log serves two consumers:

* distribution agents (``repro.replication``) replay a prefix of it, one
  transaction at a time, to bring cached views forward — mirroring SQL
  Server's transactional replication; and
* the semantics checker (``repro.semantics``) replays prefixes to
  reconstruct the database snapshot ``H_n`` after any transaction ``T_n``.

Records identify rows by primary-key value, so replicas can apply them
without sharing row ids with the master heap.
"""

import enum


class Operation(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


class LogRecord:
    """One row-level change within a committed transaction."""

    __slots__ = ("txn_id", "commit_time", "table", "op", "pk", "values", "old_values", "seq")

    def __init__(self, txn_id, commit_time, table, op, pk, values=None, old_values=None, seq=0):
        self.txn_id = txn_id
        self.commit_time = commit_time
        self.table = table
        self.op = op
        self.pk = pk
        self.values = values
        self.old_values = old_values
        self.seq = seq

    def __repr__(self):
        return (
            f"LogRecord(txn={self.txn_id}, t={self.commit_time:.3f}, "
            f"{self.op.value} {self.table} pk={self.pk})"
        )


class ReplicationLog:
    """An append-only, globally ordered log of committed changes."""

    def __init__(self):
        self._records = []

    def append(self, record):
        record.seq = len(self._records)
        self._records.append(record)

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self):
        return self._records

    def records_for(self, table, after_txn=0, up_to_commit_time=None):
        """Yield records for ``table`` with txn_id > after_txn, optionally
        restricted to commit_time <= up_to_commit_time, in log order."""
        for record in self._records:
            if record.table != table:
                continue
            if record.txn_id <= after_txn:
                continue
            if up_to_commit_time is not None and record.commit_time > up_to_commit_time:
                continue
            yield record

    def last_txn_before(self, commit_time):
        """Return the id of the last transaction committed at or before
        ``commit_time`` (0 if none)."""
        last = 0
        for record in self._records:
            if record.commit_time <= commit_time:
                last = max(last, record.txn_id)
            else:
                break
        return last
