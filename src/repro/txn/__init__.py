"""Transactions: commit ordering, history and the replication log."""

from repro.txn.log import LogRecord, Operation, ReplicationLog
from repro.txn.manager import Transaction, TransactionManager

__all__ = [
    "LogRecord",
    "Operation",
    "ReplicationLog",
    "Transaction",
    "TransactionManager",
]
