"""Offline certification of a recorded history against the paper's
formal semantics.

Each check is independent and maps to a definition in the appendix
(executable in :mod:`repro.semantics`); all of them consume only the
recorded history — no live fleet required — so any saved JSONL can be
re-certified later:

* ``currency_bound`` — appendix B.2 / §2.2: for every query with a
  finite bound ``B``, the stalest snapshot it vouched for satisfies
  ``t_query − snapshot <= B`` unless the serve was *explicitly*
  degraded (a recorded warning — the fleet's availability-over-currency
  trade, which is announced, never silent).  Details carry the
  per-region sawtooth reconstruction (sample count, worst age).
* ``snapshot_consistency`` — §2.3: all local reads inside one declared
  consistency class come from one snapshot.  Scatter-gather legs are
  ordinary query records and are certified individually — the *merged*
  result is allowed to mix shard snapshots (per-shard C&C), the legs
  are not.
* ``delta_consistency`` — appendix's Δ-consistency distance: the
  transaction-time spread ``max − min`` over the applied-txn sync
  points of the copies one class read (computed with
  :func:`repro.semantics.delta_consistency_bound`); a class that read
  two copies at Δ > 0 is not one consistent snapshot.
* ``session_ryw`` — §2.4 session guarantees: a strict-table read served
  locally under a session must come from a replica that has applied the
  session's commit floor for every contributing source.
* ``monotonic_reads`` — §2.4: within one session, successive local
  reads of the same (node, region, shard) series never step backwards
  in snapshot time.  Node lifecycle/failover events reset the series
  (a rebuilt replica is a new copy in the appendix's sense), and a
  shard ``promotion`` event resets every series pinned to that shard
  (the promoted standby is a different physical copy) — but nothing
  else does.
* ``timeline`` — §2.3 TIMEORDERED: replays the recorded bracket with
  the watermark semantics of :class:`repro.cc.timeline.TimelineSession`
  — later reads use snapshots at or above the watermark, and remote
  reads advance it to query time.

Every check yields a :class:`Certificate`; violations are structured
:class:`Anomaly` records naming the offending query/transaction ids.
"""

from repro.semantics import delta_consistency_bound

__all__ = [
    "Anomaly",
    "Certificate",
    "CertificationReport",
    "ConsistencyCertifier",
    "CHECKS",
]

#: Check names, in report order.
CHECKS = (
    "currency_bound",
    "snapshot_consistency",
    "delta_consistency",
    "session_ryw",
    "monotonic_reads",
    "timeline",
)

#: Float-comparison slack, matching the invariant checker's.
_SLACK = 1e-6

#: Event kinds that invalidate a replica's continuity (the series reset
#: points of the monotonic-reads check).
_RESET_EVENTS = frozenset({"lifecycle", "failover"})


class Anomaly:
    """One concrete violation of one check, with the offending ids."""

    __slots__ = ("check", "message", "qid", "attrs")

    def __init__(self, check, message, qid=None, **attrs):
        self.check = check
        self.message = message
        self.qid = qid
        self.attrs = attrs

    def as_dict(self):
        out = {"check": self.check, "message": self.message}
        if self.qid is not None:
            out["qid"] = self.qid
        out.update(self.attrs)
        return out

    def __repr__(self):
        where = f" qid={self.qid}" if self.qid is not None else ""
        return f"Anomaly({self.check}{where}: {self.message})"


class Certificate:
    """One check's verdict over the whole history."""

    __slots__ = ("check", "checked", "anomalies", "details")

    def __init__(self, check, checked, anomalies, details=None):
        self.check = check
        self.checked = checked
        self.anomalies = anomalies
        self.details = details or {}

    @property
    def ok(self):
        return not self.anomalies

    def __repr__(self):
        verdict = "ok" if self.ok else f"{len(self.anomalies)} anomalies"
        return f"<Certificate {self.check}: checked={self.checked} {verdict}>"


class CertificationReport:
    """All certificates of one certification pass."""

    def __init__(self, certificates, history):
        self.certificates = certificates
        self.history = history

    @property
    def anomalies(self):
        return [a for c in self.certificates for a in c.anomalies]

    @property
    def ok(self):
        return all(c.ok for c in self.certificates)

    def certificate(self, check):
        for cert in self.certificates:
            if cert.check == check:
                return cert
        raise KeyError(f"no certificate for check {check!r}")

    def summary(self):
        """Deterministic scalar summary (safe to print / diff / JSON)."""
        return {
            "records": len(self.history),
            "anomalies": len(self.anomalies),
            "checks": {
                c.check: {"checked": c.checked, "anomalies": len(c.anomalies)}
                for c in self.certificates
            },
        }

    def __repr__(self):
        return (
            f"<CertificationReport {len(self.certificates)} checks, "
            f"{len(self.anomalies)} anomalies>"
        )


class ConsistencyCertifier:
    """Runs the formal checks over one recorded :class:`History`."""

    def __init__(self, history, slack=_SLACK):
        self.history = history
        self.slack = slack
        self._queries = history.queries()

    def certify(self, checks=None):
        """Run ``checks`` (default: all) and return the report."""
        names = CHECKS if checks is None else tuple(checks)
        certificates = []
        for name in names:
            if name not in CHECKS:
                raise KeyError(f"unknown certification check {name!r}")
            certificates.append(getattr(self, f"check_{name}")())
        return CertificationReport(certificates, self.history)

    # ------------------------------------------------------------------
    # Currency bounds (per-region sawtooth reconstruction)
    # ------------------------------------------------------------------
    def check_currency_bound(self):
        anomalies = []
        checked = 0
        regions = {}
        for q in self._queries:
            for read in q["reads"]:
                region = regions.setdefault(
                    read["region"], {"samples": 0, "max_age": 0.0}
                )
                region["samples"] += 1
                age = q["time"] - read["snapshot"]
                if age > region["max_age"]:
                    region["max_age"] = age
            bound = q["bound"]
            if bound is None or not q["snapshots"]:
                continue
            checked += 1
            # Query time is recorded at execution *start*, so intra-query
            # remote waits never inflate the measured staleness.
            staleness = q["time"] - min(q["snapshots"])
            if staleness > bound + self.slack and not q["warnings"]:
                anomalies.append(Anomaly(
                    "currency_bound",
                    f"query {q['qid']} on {q['node']} served a snapshot "
                    f"{staleness:.3f}s old against its {bound:g}s bound "
                    "without declaring degradation",
                    qid=q["qid"], staleness=round(staleness, 6), bound=bound,
                ))
        details = {
            "regions": {
                name: {
                    "samples": r["samples"],
                    "max_age": round(r["max_age"], 6),
                }
                for name, r in sorted(regions.items())
            },
        }
        return Certificate("currency_bound", checked, anomalies, details)

    # ------------------------------------------------------------------
    # Snapshot consistency within declared classes
    # ------------------------------------------------------------------
    def _class_groups(self, q):
        """The query's local reads grouped by declared consistency
        class (reads of undeclared tables form singleton groups)."""
        table_class = {}
        for i, tables in enumerate(q["classes"]):
            for table in tables:
                table_class[table] = i
        groups = {}
        for read in q["reads"]:
            key = table_class.get(read["table"], f"?{read['table']}")
            groups.setdefault(key, []).append(read)
        return groups

    def check_snapshot_consistency(self):
        anomalies = []
        checked = 0
        for q in self._queries:
            if not q["reads"]:
                continue
            checked += 1
            for key, group in sorted(
                self._class_groups(q).items(), key=lambda kv: str(kv[0])
            ):
                snapshots = sorted({r["snapshot"] for r in group})
                if len(snapshots) > 1:
                    views = sorted({r["view"] for r in group})
                    anomalies.append(Anomaly(
                        "snapshot_consistency",
                        f"query {q['qid']} on {q['node']} mixed "
                        f"{len(snapshots)} snapshots inside one consistency "
                        f"class ({', '.join(views)}): torn read",
                        qid=q["qid"],
                        spread=round(snapshots[-1] - snapshots[0], 6),
                        views=", ".join(views),
                    ))
        details = {"scatter_merges": len(self.history.by_kind("scatter"))}
        return Certificate(
            "snapshot_consistency", checked, anomalies, details
        )

    # ------------------------------------------------------------------
    # Δ-consistency distance in transaction time
    # ------------------------------------------------------------------
    def check_delta_consistency(self):
        anomalies = []
        checked = 0
        max_delta = 0
        for q in self._queries:
            if len(q["reads"]) < 2:
                continue
            for _, group in sorted(
                self._class_groups(q).items(), key=lambda kv: str(kv[0])
            ):
                if len(group) < 2:
                    continue
                per_source = {}
                for read in group:
                    for source, applied in read["sources"].items():
                        per_source.setdefault(source, []).append(applied)
                for source, points in sorted(per_source.items()):
                    if len(points) < 2:
                        continue
                    checked += 1
                    delta = delta_consistency_bound(points)
                    if delta > max_delta:
                        max_delta = delta
                    if delta > 0:
                        anomalies.append(Anomaly(
                            "delta_consistency",
                            f"query {q['qid']} read copies Δ={delta} "
                            f"transactions apart on source {source} inside "
                            "one consistency class",
                            qid=q["qid"], source=source, delta=delta,
                        ))
        return Certificate(
            "delta_consistency", checked, anomalies,
            {"max_delta": max_delta},
        )

    # ------------------------------------------------------------------
    # Session guarantees: read-your-writes
    # ------------------------------------------------------------------
    def check_session_ryw(self):
        anomalies = []
        checked = 0
        excused = 0
        for q in self._queries:
            floors = q["floors"]
            if not floors:
                continue
            for read in q["reads"]:
                if not read["strict"]:
                    continue
                relevant = [
                    source for source in read["sources"]
                    if floors.get(source, 0) > 0
                ]
                if not relevant:
                    continue
                checked += 1
                if q["warnings"]:
                    excused += 1  # declared-degraded serve
                    continue
                for source in relevant:
                    applied = read["sources"][source]
                    if applied < floors[source]:
                        anomalies.append(Anomaly(
                            "session_ryw",
                            f"query {q['qid']} on {q['node']} read "
                            f"{read['view']} locally although source "
                            f"{source} had applied txn {applied} < the "
                            f"session's commit floor {floors[source]}",
                            qid=q["qid"], view=read["view"], source=source,
                            applied=applied, floor=floors[source],
                            session=q["session"],
                        ))
        return Certificate(
            "session_ryw", checked, anomalies,
            {"excused_degraded": excused},
        )

    # ------------------------------------------------------------------
    # Session guarantees: monotonic reads
    # ------------------------------------------------------------------
    def check_monotonic_reads(self):
        anomalies = []
        checked = 0
        resets = 0
        promotions = 0
        #: (session, node, node epoch, shard epoch, region, shard)
        #: -> (last snapshot, last qid).
        series = {}
        epoch = {}  # node -> replica-continuity epoch
        shard_epochs = {}  # back-end shard -> promotion epoch
        for record in self.history:
            kind = record["kind"]
            if kind == "event" and record["event"] in _RESET_EVENTS:
                node = record["attrs"].get("node")
                if node is None:
                    epoch = {k: v + 1 for k, v in epoch.items()}
                else:
                    epoch[node] = epoch.get(node, 0) + 1
                resets += 1
                continue
            if kind == "event" and record["event"] == "promotion":
                # A promoted shard primary is a different physical copy:
                # its series restart, exactly like a node's lifecycle
                # epoch — and *only* promotions move shard epochs (a
                # backend_crash alone resets nothing).
                shard = record["attrs"].get("shard")
                if shard is not None:
                    shard_epochs[shard] = shard_epochs.get(shard, 0) + 1
                    promotions += 1
                continue
            if kind != "query" or record["session"] is None:
                continue
            node_epoch = epoch.get(record["node"], 0)
            for read in record["reads"]:
                # A pinned read continues across other shards' promotions;
                # an unpinned read touches every shard, so any promotion
                # restarts it (the sum moves with each).
                if read["shard"] is not None:
                    shard_epoch = shard_epochs.get(read["shard"], 0)
                else:
                    shard_epoch = sum(shard_epochs.values())
                key = (record["session"], record["node"], node_epoch,
                       shard_epoch, read["region"], read["shard"])
                last = series.get(key)
                checked += 1
                if last is not None:
                    snapshot, qid = last
                    if read["snapshot"] < snapshot - self.slack:
                        anomalies.append(Anomaly(
                            "monotonic_reads",
                            f"query {record['qid']} read {read['region']} at "
                            f"snapshot {read['snapshot']:g}, behind the "
                            f"{snapshot:g} already observed by query {qid} "
                            "in the same session",
                            qid=record["qid"], region=read["region"],
                            session=record["session"],
                            snapshot=read["snapshot"], previous=snapshot,
                        ))
                if last is None or read["snapshot"] > last[0]:
                    series[key] = (read["snapshot"], record["qid"])
        return Certificate(
            "monotonic_reads", checked, anomalies,
            {"series": len(series), "replica_resets": resets,
             "shard_promotions": promotions},
        )

    # ------------------------------------------------------------------
    # Timeline (TIMEORDERED) brackets
    # ------------------------------------------------------------------
    def check_timeline(self):
        anomalies = []
        checked = 0
        brackets = 0
        watermarks = {}  # node -> current bracket watermark
        for record in self.history:
            kind = record["kind"]
            if kind == "timeline":
                if record["event"] == "begin":
                    watermarks[record["node"]] = 0.0
                    brackets += 1
                else:
                    watermarks.pop(record["node"], None)
                continue
            if kind != "query" or record["node"] not in watermarks:
                continue
            watermark = watermarks[record["node"]]
            checked += 1
            for snapshot in record["snapshots"]:
                if snapshot < watermark - self.slack:
                    anomalies.append(Anomaly(
                        "timeline",
                        f"query {record['qid']} inside a TIMEORDERED bracket "
                        f"read snapshot {snapshot:g}, behind the bracket's "
                        f"watermark {watermark:g}",
                        qid=record["qid"], snapshot=snapshot,
                        watermark=watermark,
                    ))
                if snapshot > watermark:
                    watermark = snapshot
            if record["remote_queries"]:
                # Remote data is current as of query time: the watermark
                # advances to it (TimelineSession.observe semantics).
                if record["time"] > watermark:
                    watermark = record["time"]
            watermarks[record["node"]] = watermark
        return Certificate(
            "timeline", checked, anomalies, {"brackets": brackets}
        )
