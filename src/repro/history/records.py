"""The history record schema and its JSONL container.

A history is a flat, append-ordered list of plain dicts — one dict per
record, every record carrying a ``kind`` and a simulated timestamp.
Plain dicts (rather than classes) keep the capture hot path at one dict
literal per record and make the JSONL round trip trivial.

Record kinds (see DESIGN.md §13 for the field-by-field schema):

* ``commit`` — one committed update transaction on one replication
  source: ``{source, txn, time, tables, n_ops}``.  The appendix's
  ``H_n``: commits are recorded in commit order per source, so the
  certifier can reconstruct transaction time from them.
* ``query`` — one completed SELECT on one node: the normalized C&C
  constraint (``bound``, ``classes``), run-time ``routing``, the
  snapshot times vouched for (``snapshots``), the per-view local
  ``reads`` (region, pinned shard, snapshot, strictness, and the
  applied-txn progress of the contributing replication sources at guard
  time), SwitchUnion ``branches``, warning/remote counts, and the
  session name + commit floors it ran under.
* ``dml`` — one write through the cache tier: the per-source commit
  floor the back-end reported.
* ``scatter`` — one scatter-gather fan-out: the ``qid`` of each leg
  (legs are ordinary ``query`` records; the merged result is only as
  current as its stalest leg, per-shard C&C).
* ``timeline`` — a BEGIN/END TIMEORDERED bracket edge on one node.
* ``event`` — a lifecycle/fault/invariant event mirrored from the
  fleet's event log.

Serialization is canonical — ``json.dumps(..., sort_keys=True)`` with
compact separators, one record per line — so byte-identical histories
have identical SHA-256 digests, which is what the CI certify-smoke job
diffs across two runs of the same seed.
"""

import hashlib
import json

__all__ = ["History", "RECORD_KINDS", "canonical_line"]

#: Every record kind a recorder may append, in no particular order.
RECORD_KINDS = frozenset(
    {"commit", "query", "dml", "scatter", "timeline", "event"}
)


def canonical_line(record):
    """The canonical JSONL encoding of one record (sorted keys, compact
    separators) — the unit of the history digest."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class History:
    """An append-only sequence of run-history records."""

    def __init__(self, records=None):
        self.records = list(records) if records is not None else []

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append(self, record):
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def by_kind(self, kind):
        return [r for r in self.records if r["kind"] == kind]

    def commits(self, source=None):
        out = self.by_kind("commit")
        if source is not None:
            out = [r for r in out if r["source"] == source]
        return out

    def queries(self):
        return self.by_kind("query")

    def query(self, qid):
        for record in self.records:
            if record["kind"] == "query" and record["qid"] == qid:
                return record
        raise KeyError(f"no query record with qid {qid}")

    def counts_by_kind(self):
        out = {}
        for record in self.records:
            out[record["kind"]] = out.get(record["kind"], 0) + 1
        return out

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_jsonl(self):
        """The canonical JSON-lines serialization (trailing newline)."""
        if not self.records:
            return ""
        return "\n".join(canonical_line(r) for r in self.records) + "\n"

    def digest(self):
        """SHA-256 over the canonical JSONL — the run's fingerprint.
        Two runs of the same seeded schedule must produce the same
        digest (the repo's determinism contract, extended to histories).
        """
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()

    def dump(self, path):
        """Write the canonical JSONL to ``path``; returns the digest."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @classmethod
    def from_jsonl(cls, text):
        records = [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
        return cls(records)

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_jsonl(fh.read())

    def __repr__(self):
        counts = ", ".join(
            f"{kind}={n}" for kind, n in sorted(self.counts_by_kind().items())
        )
        return f"<History {len(self.records)} records ({counts})>"
