"""Run histories and formal consistency certification.

The chaos invariant checker audits results one at a time, as they are
delivered; it cannot see *cross-query* anomalies — a session whose reads
step backwards in snapshot time, a timeline bracket violated two queries
apart, Δ-consistency drift between the copies one consistency class
read.  Those are exactly the properties the paper's appendix defines
over a *history*, so this package records one:

* :class:`~repro.history.records.History` — an append-only,
  JSON-lines-serializable sequence of records: every transaction commit
  from every replication source (shard-precise ids), every query's
  local reads with region snapshot times and agent progress, session
  floors, DML commits, TIMEORDERED brackets, scatter-gather fan-outs,
  and lifecycle/fault events.  Seed-deterministic: the same seeded run
  produces byte-identical JSONL (and therefore the same
  :meth:`~repro.history.records.History.digest`).
* :class:`~repro.history.recorder.HistoryRecorder` — the low-overhead
  capture hook.  Off by default; enabled with ``record_history=`` on
  :class:`~repro.cache.mtcache.MTCache`,
  :class:`~repro.fleet.config.FleetConfig` and the chaos env builders.
* :class:`~repro.history.certify.ConsistencyCertifier` — offline checks
  implementing the appendix's formal semantics (currency bounds,
  snapshot consistency, Δ-consistency distance, session monotonic
  reads + read-your-writes, timeline order), each emitting a
  :class:`~repro.history.certify.Certificate` with structured
  :class:`~repro.history.certify.Anomaly` records.

``python -m repro.history`` records seeded chaos schedules and
certifies saved histories from the shell (see the README quickstart).
"""

from repro.history.certify import (
    Anomaly,
    Certificate,
    CertificationReport,
    ConsistencyCertifier,
)
from repro.history.records import RECORD_KINDS, History
from repro.history.recorder import HistoryRecorder
from repro.history.render import ascii_timeline, render_certificates

__all__ = [
    "Anomaly",
    "Certificate",
    "CertificationReport",
    "ConsistencyCertifier",
    "History",
    "HistoryRecorder",
    "RECORD_KINDS",
    "ascii_timeline",
    "render_certificates",
]
