"""ASCII rendering of histories and certification reports.

:func:`ascii_timeline` buckets a history onto one fixed-width time axis
with one lane per commit source, one per serving node, and one for
fault/lifecycle events — enough to see, in a terminal, where the faults
landed relative to the reads that absorbed them.  :func:`
render_certificates` prints a certification report, one check per line
plus the anomalies.  Both render from simulated timestamps only, so the
output is deterministic for a seeded run.
"""

__all__ = ["ascii_timeline", "render_certificates"]


def _bucket_char(n):
    if n <= 0:
        return "."
    if n < 10:
        return str(n)
    return "+"


def ascii_timeline(history, width=64):
    """Render ``history`` as lane-per-actor bucket counts; returns a
    list of lines."""
    records = [r for r in history if r.get("time") is not None]
    if not records:
        return ["(empty history)"]
    times = [r["time"] for r in records]
    t0, t1 = min(times), max(times)
    span = max(t1 - t0, 1e-9)
    per_col = span / width

    def bucket(t):
        return min(int((t - t0) / span * width), width - 1)

    lanes = {}  # (order, label) -> [count] * width
    flags = {}  # (order, label) -> {column: char override}

    def lane(order, label):
        key = (order, label)
        if key not in lanes:
            lanes[key] = [0] * width
            flags[key] = {}
        return lanes[key], flags[key]

    for r in records:
        kind = r["kind"]
        if kind == "commit":
            counts, _ = lane(0, f"commits {r['source']}")
            counts[bucket(r["time"])] += 1
        elif kind in ("query", "dml"):
            counts, over = lane(1, f"queries {r['node']}")
            col = bucket(r["time"])
            counts[col] += 1
            if kind == "query" and r["warnings"]:
                over[col] = "d"  # degraded serve in this bucket
        elif kind == "event":
            counts, over = lane(2, "events")
            col = bucket(r["time"])
            counts[col] += 1
            if r["severity"] in ("warning", "error"):
                over[col] = "!"

    lines = [
        f"t={t0:g}..{t1:g}s  ({width} cols, {per_col:.3g}s/col; "
        "digits=count, +=10+, d=degraded, !=fault)"
    ]
    label_width = max(len(label) for _, label in lanes)
    for (order, label) in sorted(lanes):
        counts = lanes[(order, label)]
        over = flags[(order, label)]
        row = "".join(
            over.get(i, _bucket_char(n)) for i, n in enumerate(counts)
        )
        lines.append(f"{label.ljust(label_width)} |{row}|")
    return lines


def render_certificates(report):
    """One line per certificate plus its anomalies; returns lines."""
    lines = []
    for cert in report.certificates:
        verdict = "ok  " if cert.ok else "FAIL"
        detail = ""
        if cert.details:
            detail = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(cert.details.items())
                if not isinstance(v, dict)
            )
        lines.append(
            f"[{verdict}] {cert.check}: checked={cert.checked} "
            f"anomalies={len(cert.anomalies)}{detail}".rstrip()
        )
        for anomaly in cert.anomalies:
            lines.append(f"       - {anomaly.message}")
    lines.append(
        f"certification: {len(report.anomalies)} anomalies over "
        f"{len(report.history)} records"
    )
    return lines
