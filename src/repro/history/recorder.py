"""The capture hook: turns a live run into a :class:`History`.

One :class:`HistoryRecorder` serves a whole deployment — a standalone
:class:`~repro.cache.mtcache.MTCache` creates its own when constructed
with ``record_history=True``; a :class:`~repro.fleet.fleet.CacheFleet`
creates one and shares it across every node, the back-end and the fleet
event log, so the history interleaves commits, queries and faults in
the order they actually happened on the simulated clock.

Capture cost is kept off the hot path three ways: recording is off by
default (``cache.history is None`` is the only per-query check), commit
observation is an empty-list check inside
:meth:`~repro.txn.manager.TransactionManager._commit`, and per-read
capture inside currency guards is gated on a single
``ctx.capture_reads`` boolean that only a recording cache sets.  The
overhead budget is <=5% on the mixed ledger workload
(``benchmarks/test_bench_history_overhead.py``).
"""

from repro.history.records import History

__all__ = ["HistoryRecorder"]

#: Event kinds mirrored from an attached event log into the history.
#: Fault injections, lifecycle transitions, failovers, breaker moves and
#: invariant violations are the run's *environmental* record; per-guard
#: chatter stays in the node registries (the query records already carry
#: the guard outcomes that matter).
EVENT_KINDS = frozenset({
    "outage", "partition", "agent_stall", "lifecycle",
    "failover", "breaker", "invariant", "certify",
    "backend_crash", "promotion",
})


def _jsonable(value):
    """Clamp an event attribute to the JSON-serializable scalars the
    canonical encoding accepts (repr() anything exotic)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class HistoryRecorder:
    """Appends structured records for one run into a :class:`History`."""

    def __init__(self, history=None):
        self.history = history if history is not None else History()
        self._next_qid = 1
        #: True while hooks should record (flip off to freeze a history
        #: mid-run, e.g. around benchmark warm-up).
        self.enabled = True

    def __len__(self):
        return len(self.history)

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach_backend(self, backend):
        """Observe every replication source's commit point.

        One observer per :meth:`~repro.common.backend.Backend.
        transaction_managers` entry, so a sharded back-end yields
        shard-precise ``commit`` records (source ``p0``/``p1``/...)
        exactly matching the commit floors DML reports.
        """
        for source, manager in backend.transaction_managers():
            manager.observers.append(self._commit_observer(source))
        return self

    def _commit_observer(self, source):
        def observe(txn):
            if not self.enabled:
                return
            tables = sorted({op.table for op in txn._ops})
            self.history.append({
                "kind": "commit",
                "source": source,
                "txn": txn.txn_id,
                "time": txn.commit_time,
                "tables": tables,
                "n_ops": len(txn._ops),
            })
        return observe

    def attach_events(self, registry):
        """Mirror an event log's fault/lifecycle records into the
        history (sets the log's sink; see :class:`~repro.obs.events.
        EventLog`)."""
        registry.events.sink = self._on_event
        return self

    def _on_event(self, event):
        if not self.enabled or event.kind not in EVENT_KINDS:
            return
        self.history.append({
            "kind": "event",
            "event": event.kind,
            "severity": event.severity,
            "message": event.message,
            "time": event.time,
            "attrs": {
                k: _jsonable(v) for k, v in sorted(event.attrs.items())
            },
        })

    # ------------------------------------------------------------------
    # Per-statement records (called by the cache/fleet hot paths)
    # ------------------------------------------------------------------
    def record_query(self, *, node, sql, time, bound, classes, routing,
                     snapshots, reads, branches, warnings, remote_queries,
                     session, floors, rows):
        """One completed SELECT; returns its ``qid`` (stable, 1-based,
        shared across the deployment so scatter legs can be referenced).
        """
        if not self.enabled:
            return None
        qid = self._next_qid
        self._next_qid += 1
        self.history.append({
            "kind": "query",
            "qid": qid,
            "node": node,
            "time": time,
            "sql": sql,
            "bound": bound,
            "classes": classes,
            "routing": routing,
            "snapshots": snapshots,
            "reads": reads,
            "branches": branches,
            "warnings": warnings,
            "remote_queries": remote_queries,
            "session": session,
            "floors": floors,
            "rows": rows,
        })
        return qid

    def record_dml(self, *, node, sql, time, table, rowcount, commits,
                   session):
        if not self.enabled:
            return None
        qid = self._next_qid
        self._next_qid += 1
        self.history.append({
            "kind": "dml",
            "qid": qid,
            "node": node,
            "time": time,
            "sql": sql,
            "table": table,
            "rowcount": rowcount,
            "commits": [[source, txn] for source, txn in commits],
            "session": session,
        })
        return qid

    def record_scatter(self, *, node, sql, time, legs, shards, rows):
        if not self.enabled:
            return None
        self.history.append({
            "kind": "scatter",
            "node": node,
            "time": time,
            "sql": sql,
            "legs": legs,
            "shards": shards,
            "rows": rows,
        })

    def record_timeline(self, *, node, event, time):
        if not self.enabled:
            return None
        self.history.append({
            "kind": "timeline",
            "node": node,
            "event": event,
            "time": time,
        })

    def __repr__(self):
        return f"<HistoryRecorder {len(self.history)} records>"
