"""Record and certify run histories from the shell.

    # record a seeded chaos schedule with history capture on, then
    # certify it (writes the JSONL, prints the digest + certificates):
    python -m repro.history record --workload ledger --seed 23 \\
        --duration 45 --out ledger.jsonl

    # re-certify a saved history offline:
    python -m repro.history certify ledger.jsonl

    # the run at a glance:
    python -m repro.history timeline ledger.jsonl

Output is deterministic for a seeded ``record`` run — the CI
certify-smoke job runs each schedule twice and diffs the bytes,
asserting identical digests and zero anomalies.  Exit status is 1 when
anomalies (or chaos invariant violations) were found.
"""

import argparse
import json
import sys

from repro.history.certify import ConsistencyCertifier
from repro.history.records import History
from repro.history.render import ascii_timeline, render_certificates


def _certify(history, *, timeline=False):
    report = ConsistencyCertifier(history).certify()
    if timeline:
        for line in ascii_timeline(history):
            print(line)
    for line in render_certificates(report):
        print(line)
    return report


def _cmd_record(args):
    from repro.chaos.env import build_demo_fleet, build_ledger_fleet
    from repro.chaos.scheduler import ChaosScheduler

    workload = None
    if args.workload == "ledger":
        fleet, workload = build_ledger_fleet(
            n_nodes=args.nodes, partitions=args.partitions,
            record_history=True,
        )
    else:
        fleet = build_demo_fleet(
            n_nodes=args.nodes, partitions=args.partitions,
            record_history=True,
        )
    chaos = ChaosScheduler(fleet, seed=args.seed)
    chaos.random_schedule(args.duration)
    report = chaos.run(args.duration, workload=workload)

    print(f"# history workload={args.workload} seed={args.seed} "
          f"duration={args.duration:g}s nodes={args.nodes} "
          f"partitions={args.partitions}")
    history = fleet.history.history
    cert = _certify(history, timeline=args.timeline)
    digest = history.dump(args.out) if args.out else history.digest()
    counts = " ".join(
        f"{kind}={n}" for kind, n in sorted(history.counts_by_kind().items())
    )
    print(f"records={len(history)} {counts}")
    print(f"digest={digest}")
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    return 1 if (cert.anomalies or report.violations) else 0


def _cmd_certify(args):
    history = History.load(args.history)
    report = _certify(history, timeline=args.timeline)
    print(f"records={len(history)} digest={history.digest()}")
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    return 1 if report.anomalies else 0


def _cmd_timeline(args):
    history = History.load(args.history)
    for line in ascii_timeline(history, width=args.width):
        print(line)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.history",
        description="record and certify seed-deterministic run histories",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="run a seeded chaos schedule with recording on"
    )
    record.add_argument("--seed", type=int, default=11)
    record.add_argument("--duration", type=float, default=45.0)
    record.add_argument("--nodes", type=int, default=3)
    record.add_argument("--partitions", type=int, default=1)
    record.add_argument("--workload", choices=("lookup", "ledger"),
                        default="lookup")
    record.add_argument("--out", help="write the history JSONL here")
    record.add_argument("--timeline", action="store_true",
                        help="print the ascii timeline too")
    record.set_defaults(fn=_cmd_record)

    certify = sub.add_parser("certify", help="certify a saved history")
    certify.add_argument("history", help="path to a history JSONL")
    certify.add_argument("--timeline", action="store_true")
    certify.set_defaults(fn=_cmd_certify)

    timeline = sub.add_parser("timeline", help="render the ascii timeline")
    timeline.add_argument("history")
    timeline.add_argument("--width", type=int, default=64)
    timeline.set_defaults(fn=_cmd_timeline)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
