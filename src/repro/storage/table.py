"""Heap tables.

A :class:`HeapTable` stores rows as tuples in insertion order, with a
monotonically growing row-id space and tombstones for deleted rows.  Each
live row carries an ``xtime`` — the commit timestamp (transaction id) of the
transaction that last modified it — which is the appendix's ``xtime(O, Hn)``
and the basis for all currency accounting.

Tables may have one clustered index (by convention the primary key) and any
number of secondary indexes; all are kept synchronized on every mutation.
"""

from repro.common.errors import CatalogError, StorageError
from repro.storage.index import Index


class RowVersion:
    """A live row plus its modification timestamp.

    ``xtime`` is the transaction id of the writer; ``commit_time`` the
    (simulated) wall-clock commit time of that transaction.
    """

    __slots__ = ("values", "xtime", "commit_time")

    def __init__(self, values, xtime, commit_time):
        self.values = values
        self.xtime = xtime
        self.commit_time = commit_time

    def __repr__(self):
        return f"RowVersion({self.values}, xtime={self.xtime})"


class HeapTable:
    """An in-memory heap of rows with synchronized indexes."""

    def __init__(self, name, schema, primary_key=None):
        self.name = name.lower()
        self.schema = schema
        self._rows = []  # rowid -> RowVersion | None (tombstone)
        self._live = 0
        #: Bumped on every successful mutation; cheap change detection for
        #: derived structures (the columnar engine's column store).
        self.mutation_count = 0
        self._column_store = None  # (mutation_count, ColumnBatch) cache
        self.indexes = {}
        self.primary_key = None
        if primary_key:
            self.primary_key = [c.lower() for c in primary_key]
            self.create_index(f"pk_{self.name}", self.primary_key, unique=True, clustered=True)

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(self, name, column_names, unique=False, clustered=False):
        """Create an index and populate it from existing rows."""
        name = name.lower()
        if name in self.indexes:
            raise CatalogError(f"index {name} already exists on {self.name}")
        if clustered and any(ix.clustered for ix in self.indexes.values()):
            raise CatalogError(f"table {self.name} already has a clustered index")
        positions = [self.schema.index_of(c) for c in column_names]
        index = Index(name, [c.lower() for c in column_names], positions, unique=unique, clustered=clustered)
        for rid, version in enumerate(self._rows):
            if version is not None:
                index.insert(version.values, rid)
        self.indexes[name] = index
        return index

    def drop_index(self, name):
        name = name.lower()
        if name not in self.indexes:
            raise CatalogError(f"no index {name} on {self.name}")
        del self.indexes[name]

    def clustered_index(self):
        """Return the clustered index, or None."""
        for ix in self.indexes.values():
            if ix.clustered:
                return ix
        return None

    def index_on(self, column_names):
        """Return an index whose key starts with ``column_names``, or None."""
        wanted = [c.lower() for c in column_names]
        for ix in self.indexes.values():
            if ix.column_names[: len(wanted)] == wanted:
                return ix
        return None

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, values, xtime=0, commit_time=0.0):
        """Insert a row; returns the new row id."""
        values = tuple(values)
        self.schema.validate_row(values)
        rid = len(self._rows)
        version = RowVersion(values, xtime, commit_time)
        # Insert into indexes first so a uniqueness violation leaves the
        # heap untouched.
        inserted = []
        try:
            for ix in self.indexes.values():
                ix.insert(values, rid)
                inserted.append(ix)
        except StorageError:
            for ix in inserted:
                ix.delete(values, rid)
            raise
        self._rows.append(version)
        self._live += 1
        self.mutation_count += 1
        return rid

    def delete(self, rid, xtime=0, commit_time=0.0):
        """Delete the row with id ``rid``; returns its former values."""
        version = self._get_live(rid)
        for ix in self.indexes.values():
            ix.delete(version.values, rid)
        self._rows[rid] = None
        self._live -= 1
        self.mutation_count += 1
        return version.values

    def update(self, rid, values, xtime=0, commit_time=0.0):
        """Replace the row with id ``rid``; returns the old values."""
        values = tuple(values)
        self.schema.validate_row(values)
        version = self._get_live(rid)
        old = version.values
        for ix in self.indexes.values():
            ix.delete(old, rid)
        inserted = []
        try:
            for ix in self.indexes.values():
                ix.insert(values, rid)
                inserted.append(ix)
        except StorageError:
            # Roll back: drop the new entries, restore the old ones.
            for ix in inserted:
                ix.delete(values, rid)
            for ix in self.indexes.values():
                ix.insert(old, rid)
            raise
        version.values = values
        version.xtime = xtime
        version.commit_time = commit_time
        self.mutation_count += 1
        return old

    def truncate(self):
        """Remove all rows."""
        self._rows = []
        self._live = 0
        self.mutation_count += 1
        for ix in self.indexes.values():
            ix.clear()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _get_live(self, rid):
        if rid < 0 or rid >= len(self._rows) or self._rows[rid] is None:
            raise StorageError(f"table {self.name}: no live row with id {rid}")
        return self._rows[rid]

    def row(self, rid):
        """Return the values of the live row ``rid``."""
        return self._get_live(rid).values

    def version(self, rid):
        """Return the RowVersion of the live row ``rid``."""
        return self._get_live(rid)

    def scan(self):
        """Yield (rid, values) for all live rows in heap order."""
        for rid, version in enumerate(self._rows):
            if version is not None:
                yield rid, version.values

    def first_values(self):
        """Values of the first live row, or None (currency guards probe
        single-row heartbeat tables on every query; this skips the
        generator machinery of :meth:`scan`)."""
        for version in self._rows:
            if version is not None:
                return version.values
        return None

    def scan_versions(self):
        """Yield (rid, RowVersion) for all live rows in heap order."""
        for rid, version in enumerate(self._rows):
            if version is not None:
                yield rid, version

    def find_by_key(self, index_name, key):
        """Yield row values matching ``key`` in the named index."""
        ix = self.indexes[index_name.lower()]
        for rid in ix.seek(key):
            yield self._rows[rid].values

    def pk_lookup(self, key):
        """Return the rid of the row with primary key ``key``, or None."""
        ci = self.clustered_index()
        if ci is None:
            raise CatalogError(f"table {self.name} has no primary key")
        for rid in ci.seek(key):
            return rid
        return None

    @property
    def row_count(self):
        return self._live

    def max_xtime(self):
        """Largest xtime among live rows (0 for an empty table)."""
        return max((v.xtime for _, v in self.scan_versions()), default=0)

    def __len__(self):
        return self._live

    def __repr__(self):
        return f"<HeapTable {self.name} rows={self._live} indexes={list(self.indexes)}>"
