"""Relational schemas.

A :class:`Schema` is an ordered list of :class:`Column` objects.  Rows are
plain tuples positionally aligned with the schema; the schema provides name
resolution (optionally qualified, e.g. ``c.c_custkey``), projection helpers
and value validation.
"""

import enum

from repro.common.errors import CatalogError, StorageError


class DataType(enum.Enum):
    """Supported column types.

    TIMESTAMP values are floats in simulated seconds — the same unit the
    clocks use — so currency arithmetic never needs conversions.
    """

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    TIMESTAMP = "timestamp"

    def validate(self, value):
        """Return True if ``value`` is acceptable for this type (None is
        handled by Column.nullable, not here)."""
        if self is DataType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is DataType.STRING:
            return isinstance(value, str)
        if self is DataType.BOOL:
            return isinstance(value, bool)
        if self is DataType.TIMESTAMP:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return False  # pragma: no cover - exhaustive enum


class Column:
    """A named, typed column."""

    __slots__ = ("name", "dtype", "nullable")

    def __init__(self, name, dtype, nullable=True):
        if not name:
            raise CatalogError("column name must be non-empty")
        self.name = name.lower()
        self.dtype = dtype
        self.nullable = nullable

    def __eq__(self, other):
        return (
            isinstance(other, Column)
            and self.name == other.name
            and self.dtype == other.dtype
            and self.nullable == other.nullable
        )

    def __hash__(self):
        return hash((self.name, self.dtype, self.nullable))

    def __repr__(self):
        null = "" if self.nullable else " NOT NULL"
        return f"Column({self.name} {self.dtype.value}{null})"


class Schema:
    """An ordered collection of columns with fast name lookup."""

    def __init__(self, columns):
        self.columns = list(columns)
        self._by_name = {}
        for i, col in enumerate(self.columns):
            if col.name in self._by_name:
                raise CatalogError(f"duplicate column name: {col.name}")
            self._by_name[col.name] = i

    def __len__(self):
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other):
        return isinstance(other, Schema) and self.columns == other.columns

    def names(self):
        """Return the column names in order."""
        return [c.name for c in self.columns]

    def has_column(self, name):
        return name.lower() in self._by_name

    def index_of(self, name):
        """Return the position of column ``name`` or raise CatalogError."""
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown column: {name!r} (have {self.names()})") from None

    def column(self, name):
        return self.columns[self.index_of(name)]

    def project(self, names):
        """Return a new Schema with just the named columns, in given order."""
        return Schema([self.column(n) for n in names])

    def validate_row(self, row):
        """Raise StorageError unless ``row`` conforms to this schema."""
        if len(row) != len(self.columns):
            raise StorageError(
                f"row arity {len(row)} does not match schema arity {len(self.columns)}"
            )
        for value, col in zip(row, self.columns):
            if value is None:
                if not col.nullable:
                    raise StorageError(f"column {col.name} is NOT NULL")
                continue
            if not col.dtype.validate(value):
                raise StorageError(
                    f"value {value!r} is not valid for column {col.name} ({col.dtype.value})"
                )

    def __repr__(self):
        return f"Schema({', '.join(self.names())})"
