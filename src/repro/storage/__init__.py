"""Storage layer: schemas, heap tables with row transaction timestamps,
and ordered secondary indexes."""

from repro.storage.schema import Column, DataType, Schema
from repro.storage.index import Index
from repro.storage.table import HeapTable, RowVersion

__all__ = [
    "Column",
    "DataType",
    "HeapTable",
    "Index",
    "RowVersion",
    "Schema",
]
