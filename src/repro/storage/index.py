"""Ordered indexes over heap tables.

An :class:`Index` maps key tuples (values of the indexed columns) to row ids
in the owning :class:`~repro.storage.table.HeapTable`.  Entries are kept in a
sorted list so both point lookups (bisect) and range scans are efficient —
the in-memory analogue of a B-tree.  A *clustered* index here only means the
optimizer treats the table as ordered by that key; the heap itself is not
physically reordered.
"""

import bisect

from repro.common.errors import StorageError

#: Sentinels that sort below/above every real value, used for open-ended
#: range scans over heterogeneous key tuples.
class _NegInf:
    def __lt__(self, other):
        return True

    def __gt__(self, other):
        return False

    def __repr__(self):
        return "-inf"


class _PosInf:
    def __lt__(self, other):
        return False

    def __gt__(self, other):
        return True

    def __repr__(self):
        return "+inf"


NEG_INF = _NegInf()
POS_INF = _PosInf()


class Index:
    """A sorted (key, rowid) index over a heap table."""

    def __init__(self, name, column_names, key_positions, unique=False, clustered=False):
        self.name = name
        self.column_names = list(column_names)
        self.key_positions = list(key_positions)
        self.unique = unique
        self.clustered = clustered
        # Parallel sorted arrays: _keys[i] corresponds to _rids[i].  Keys are
        # (key_tuple, rowid) pairs so duplicates stay ordered and removable.
        self._entries = []

    def __len__(self):
        return len(self._entries)

    def key_of(self, row):
        """Extract this index's key tuple from a full table row."""
        return tuple(row[p] for p in self.key_positions)

    def insert(self, row, rid):
        key = self.key_of(row)
        entry = (key, rid)
        pos = bisect.bisect_left(self._entries, entry)
        if self.unique:
            # Any entry with the same key (regardless of rid) is a violation.
            if pos < len(self._entries) and self._entries[pos][0] == key:
                raise StorageError(f"unique index {self.name}: duplicate key {key}")
            if pos > 0 and self._entries[pos - 1][0] == key:
                raise StorageError(f"unique index {self.name}: duplicate key {key}")
        self._entries.insert(pos, entry)

    def delete(self, row, rid):
        key = self.key_of(row)
        entry = (key, rid)
        pos = bisect.bisect_left(self._entries, entry)
        if pos >= len(self._entries) or self._entries[pos] != entry:
            raise StorageError(f"index {self.name}: missing entry {entry}")
        del self._entries[pos]

    def seek(self, key):
        """Yield row ids whose key equals ``key`` (a tuple)."""
        key = tuple(key)
        pos = bisect.bisect_left(self._entries, (key, -1))
        while pos < len(self._entries) and self._entries[pos][0] == key:
            yield self._entries[pos][1]
            pos += 1

    def seek_list(self, key):
        """Row ids whose key equals ``key``, as a list.

        Same contract as :meth:`seek` without the generator frame — the
        equality-seek hot path (guarded point lookups) materializes its
        handful of rids in one pass.
        """
        entries = self._entries
        n = len(entries)
        pos = bisect.bisect_left(entries, (key, -1))
        out = []
        while pos < n and entries[pos][0] == key:
            out.append(entries[pos][1])
            pos += 1
        return out

    def range(self, low=None, high=None, low_inclusive=True, high_inclusive=True):
        """Yield (key, rid) pairs with low <= key <= high, in key order.

        ``low``/``high`` are *prefix* tuples: a bound shorter than the full
        key matches on the prefix.  ``None`` means unbounded on that side.
        """
        n = len(self.key_positions)
        if low is None:
            start = 0
        else:
            low = tuple(low)
            if low_inclusive:
                # (padded_key,) sorts before any (padded_key, rid) entry, so
                # bisect_left lands on the first entry with key >= low.
                probe = (low + (NEG_INF,) * (n - len(low)),)
                start = bisect.bisect_left(self._entries, probe)
            else:
                # Pad with +inf so every key sharing the prefix sorts below
                # the probe; bisect_right lands just past the last of them.
                probe = (low + (POS_INF,) * (n - len(low)), POS_INF)
                start = bisect.bisect_right(self._entries, probe)
        for i in range(start, len(self._entries)):
            key, rid = self._entries[i]
            if high is not None:
                prefix = key[: len(high)]
                if high_inclusive:
                    if prefix > tuple(high):
                        break
                else:
                    if prefix >= tuple(high):
                        break
            yield key, rid

    def scan(self):
        """Yield all (key, rid) pairs in key order."""
        return iter(self._entries)

    def clear(self):
        self._entries = []

    def __repr__(self):
        kind = "clustered" if self.clustered else "secondary"
        uniq = " unique" if self.unique else ""
        return f"<Index {self.name} {kind}{uniq} on {self.column_names} ({len(self)} entries)>"
