"""End-to-end verification of delivered C&C guarantees.

After MTCache executes a query, the checker independently verifies the
paper's central promise: *the result is equivalent to evaluating the query
against snapshots of the base tables that satisfy the normalized C&C
constraint*.  It

1. determines, from the executed plan tree, which source (local view at
   which snapshot, or the back-end) supplied each input operand;
2. checks every currency bound against the source's actual snapshot age;
3. checks every consistency class: all its operands must come from the same
   snapshot; and
4. (deep mode) reconstructs those snapshots from the replication log,
   re-evaluates the query on them, and compares row multisets.

Property-based tests drive random workloads through MTCache and assert an
empty violation list — the strongest statement this reproduction makes.
"""

from collections import Counter

from repro.cache.backend import BackendServer
from repro.cc.constraint import constraint_from_select
from repro.engine import operators as ops
from repro.semantics.model import HistoryView
from repro.sql import ast


class Violation:
    """One detected breach of the query's C&C constraint."""

    def __init__(self, kind, message):
        self.kind = kind  # "currency" | "consistency" | "equivalence"
        self.message = message

    def __repr__(self):
        return f"Violation({self.kind}: {self.message})"


class SourceInfo:
    """Where one operand's data came from."""

    def __init__(self, alias, kind, sync_txn, snapshot_time):
        self.alias = alias
        self.kind = kind  # "view" | "remote"
        self.sync_txn = sync_txn
        self.snapshot_time = snapshot_time

    def __repr__(self):
        return f"SourceInfo({self.alias} <- {self.kind}@txn{self.sync_txn})"


class CheckReport:
    def __init__(self, sources, violations):
        self.sources = sources
        self.violations = violations

    @property
    def ok(self):
        return not self.violations

    def __repr__(self):
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return f"CheckReport({status}, sources={self.sources})"


class ResultChecker:
    """Validates MTCache results against the formal semantics."""

    def __init__(self, mtcache, deep=True):
        self.mtcache = mtcache
        self.backend = mtcache.backend
        self.deep = deep

    # ------------------------------------------------------------------
    def check(self, select, result, at_time=None):
        """Check one executed query; returns a CheckReport."""
        if isinstance(select, str):
            from repro.sql.parser import parse

            select = parse(select)
        at_time = at_time if at_time is not None else self.mtcache.clock.now()
        constraint, operands = constraint_from_select(select)
        sources = self._trace_sources(result)
        violations = []

        history = HistoryView(self.backend.txn_manager.log)
        latest_txn = self.backend.txn_manager.last_txn_id

        # Operands served remotely that the plan shipped wholesale may not
        # appear in the trace; they are current by construction.
        for alias in operands:
            if alias not in sources:
                sources[alias] = SourceInfo(alias, "remote", latest_txn, at_time)

        # ---- currency ------------------------------------------------
        for cc_tuple in constraint:
            for alias in cc_tuple.operands:
                source = sources.get(alias)
                if source is None:
                    continue
                staleness = 0.0 if source.kind == "remote" else max(
                    0.0, at_time - source.snapshot_time
                )
                if staleness > cc_tuple.bound + 1e-9:
                    violations.append(
                        Violation(
                            "currency",
                            f"{alias}: staleness {staleness:.3f}s exceeds bound "
                            f"{cc_tuple.bound:g}s",
                        )
                    )

        # ---- consistency ----------------------------------------------
        for cc_tuple in constraint:
            syncs = {
                sources[alias].sync_txn
                for alias in cc_tuple.operands
                if alias in sources
            }
            if len(syncs) > 1:
                violations.append(
                    Violation(
                        "consistency",
                        f"class {sorted(cc_tuple.operands)} spans snapshots {sorted(syncs)}",
                    )
                )

        # ---- equivalence ----------------------------------------------
        if self.deep and not violations:
            mismatch = self._check_equivalence(select, result, sources, history)
            if mismatch is not None:
                violations.append(Violation("equivalence", mismatch))

        return CheckReport(sources, violations)

    # ------------------------------------------------------------------
    # Source tracing
    # ------------------------------------------------------------------
    def _trace_sources(self, result):
        sources = {}
        root = result.plan.root() if result.plan is not None else None
        if root is None:
            return sources
        latest_txn = self.backend.txn_manager.last_txn_id
        now = self.mtcache.clock.now()
        self._walk_active(root, sources, latest_txn, now)
        return sources

    def _walk_active(self, op, sources, latest_txn, now):
        if isinstance(op, ops.SwitchUnion):
            # Only the chosen branch produced data.  ``chosen`` is reset on
            # close, so consult the recorded decision if needed.
            index = op.chosen if op.chosen is not None else self._last_choice(op)
            if index is not None:
                self._walk_active(op.inputs[index], sources, latest_txn, now)
            return
        if isinstance(op, ops.RemoteQuery):
            for col in op.output.columns:
                if col.qualifier:
                    sources[col.qualifier] = SourceInfo(col.qualifier, "remote", latest_txn, now)
            return
        if isinstance(op, (ops.SeqScan, ops.IndexSeek, ops.IndexRangeScan)):
            alias = op.output.columns[0].qualifier if op.output.columns else None
            view = self._view_for_table(op.table)
            if view is not None and alias is not None:
                sources[alias] = SourceInfo(
                    alias, "view", view.applied_txn, view.snapshot_time
                )
            elif alias is not None:
                sources[alias] = SourceInfo(alias, "remote", latest_txn, now)
            return
        for child in op.children():
            self._walk_active(child, sources, latest_txn, now)

    def _last_choice(self, op):
        return op.last_chosen

    def _view_for_table(self, table):
        for view in self.mtcache.catalog.matviews():
            if view.table is table:
                return view
        return None

    # ------------------------------------------------------------------
    # Deep equivalence
    # ------------------------------------------------------------------
    def _check_equivalence(self, select, result, sources, history):
        """Re-evaluate the query on reconstructed snapshots; compare rows.

        Only single-block queries over base tables are re-evaluated (the
        same subset the cost-based optimizer handles); anything else is
        skipped (returns None).
        """
        from_tables = []
        for item in select.from_items:
            if not isinstance(item, ast.FromTable):
                return None
            from_tables.append(item)
        scratch = BackendServer()
        for item in from_tables:
            source = sources.get(item.alias)
            if source is None:
                return None
            base_entry = self.backend.catalog.table(item.name)
            # Register the reconstruction under the *alias* so two aliases
            # of one table may carry different snapshots.
            entry = scratch.catalog.create_table(
                item.alias, base_entry.schema, primary_key=base_entry.table.primary_key
            )
            state = history.snapshot(item.name, up_to_txn=source.sync_txn)
            for row in state.values():
                entry.table.insert(row)
            entry.refresh_stats()

        rewritten = ast.Select(
            select.items,
            [ast.FromTable(item.alias, item.alias) for item in from_tables],
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            distinct=select.distinct,
            currency=None,
            limit=select.limit,
        )
        try:
            expected = scratch.execute(rewritten)
        except Exception as exc:  # pragma: no cover - unsupported rewrites
            return f"re-evaluation failed: {exc}"
        if select.limit is not None or select.order_by:
            # Row sets may legitimately differ under LIMIT without full
            # ordering; compare only cardinality.
            if len(expected.rows) != len(result.rows):
                return (
                    f"cardinality mismatch: expected {len(expected.rows)}, "
                    f"got {len(result.rows)}"
                )
            return None
        if Counter(expected.rows) != Counter(result.rows):
            missing = Counter(expected.rows) - Counter(result.rows)
            extra = Counter(result.rows) - Counter(expected.rows)
            return (
                f"result differs from snapshot evaluation "
                f"(missing={sum(missing.values())}, extra={sum(extra.values())})"
            )
        return None
