"""A randomized conformance harness for C&C guarantee checking.

Drives an MTCache with a random interleaving of back-end updates,
simulated-time advances and guarded queries, verifying **every** result
with the :class:`~repro.semantics.checker.ResultChecker`.  This is the
library form of the reproduction's strongest test: whatever the schedule,
results are equivalent to evaluating the query on snapshots satisfying the
normalized constraint.

Use it against your own cache topology::

    harness = ConformanceHarness(cache, tables=["kv"], seed=7)
    outcome = harness.run(steps=200)
    assert outcome.ok, outcome.failures
"""

import random

from repro.semantics.checker import ResultChecker


class ConformanceOutcome:
    """What a conformance run observed."""

    def __init__(self):
        self.steps = 0
        self.queries = 0
        self.updates = 0
        self.local_queries = 0
        self.failures = []  # (sql, violations)

    @property
    def ok(self):
        return not self.failures

    def __repr__(self):
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"ConformanceOutcome({status}, steps={self.steps}, "
            f"queries={self.queries}, updates={self.updates}, "
            f"local={self.local_queries})"
        )


class ConformanceHarness:
    """Randomized workload + per-query verification for one MTCache."""

    #: Currency bounds sampled for generated queries (seconds).
    DEFAULT_BOUNDS = (0, 1, 3, 8, 20, 120, 10_000)

    def __init__(self, cache, tables, seed=42, bounds=None, deep=True):
        self.cache = cache
        self.backend = cache.backend
        self.tables = list(tables)
        self.rng = random.Random(seed)
        self.bounds = list(bounds or self.DEFAULT_BOUNDS)
        self.checker = ResultChecker(cache, deep=deep)

    # ------------------------------------------------------------------
    # Step generators
    # ------------------------------------------------------------------
    def _random_update(self):
        table = self.rng.choice(self.tables)
        entry = self.backend.catalog.table(table)
        heap = entry.table
        rows = [values for _, values in heap.scan()]
        if not rows:
            return
        schema = entry.schema
        pk_columns = heap.primary_key
        victim = self.rng.choice(rows)
        # Update one non-key numeric column, if any.
        for i, col in enumerate(schema.columns):
            if col.name in pk_columns:
                continue
            if isinstance(victim[i], bool) or not isinstance(victim[i], (int, float)):
                continue
            pk_predicate = " AND ".join(
                f"{c} = {victim[schema.index_of(c)]!r}" for c in pk_columns
            )
            delta = self.rng.randint(1, 9)
            self.backend.execute(
                f"UPDATE {table} SET {col.name} = {col.name} + {delta} "
                f"WHERE {pk_predicate}"
            )
            return

    def _random_query_sql(self):
        table = self.rng.choice(self.tables)
        entry = self.backend.catalog.table(table)
        alias = "q"
        columns = ", ".join(f"{alias}.{c}" for c in entry.schema.names()[:3])
        bound = self.rng.choice(self.bounds)
        predicate = ""
        pk = entry.table.primary_key[0]
        if self.rng.random() < 0.5:
            stats = entry.stats.column(pk)
            if isinstance(stats.min, int) and isinstance(stats.max, int) and stats.max > stats.min:
                threshold = self.rng.randint(stats.min, stats.max)
                predicate = f" WHERE {alias}.{pk} < {threshold}"
        return (
            f"SELECT {columns} FROM {table} {alias}{predicate} "
            f"CURRENCY BOUND {bound} SEC ON ({alias})"
        )

    # ------------------------------------------------------------------
    def run(self, steps=100, max_advance=10.0):
        """Execute a random schedule; returns a ConformanceOutcome."""
        outcome = ConformanceOutcome()
        for _ in range(steps):
            outcome.steps += 1
            roll = self.rng.random()
            if roll < 0.3:
                self._random_update()
                outcome.updates += 1
            elif roll < 0.55:
                self.cache.run_for(self.rng.uniform(0.2, max_advance))
            else:
                sql = self._random_query_sql()
                result = self.cache.execute(sql)
                outcome.queries += 1
                if result.context.branches and all(
                    index == 0 for _, index in result.context.branches
                ):
                    outcome.local_queries += 1
                report = self.checker.check(sql, result)
                if not report.ok:
                    outcome.failures.append((sql, report.violations))
        return outcome
