"""Formal C&C semantics (paper appendix §8) and the end-to-end checker."""

from repro.semantics.model import (
    HistoryView,
    currency,
    delta_consistency_bound,
    distance,
    is_snapshot_consistent,
    stale_point,
    xtime,
)
from repro.semantics.checker import CheckReport, ResultChecker, Violation
from repro.semantics.groups import (
    GroupConsistencyChecker,
    GroupReport,
    group_delta,
    validity_interval,
)

__all__ = [
    "CheckReport",
    "GroupConsistencyChecker",
    "GroupReport",
    "HistoryView",
    "ResultChecker",
    "Violation",
    "group_delta",
    "validity_interval",
    "currency",
    "delta_consistency_bound",
    "distance",
    "is_snapshot_consistent",
    "stale_point",
    "xtime",
]
