"""Per-group consistency (appendix §8.6) made executable.

A currency clause may carry grouping columns — ``CURRENCY BOUND 10 MIN ON
(R) BY R.isbn`` — meaning rows of R *within the same isbn group* must come
from one snapshot, while different groups may come from different
snapshots.  With transactional replication (whole regions on one snapshot)
this is vacuous; with row-level refresh
(:class:`~repro.replication.row_refresh.RowRefreshAgent`) it is not, and
this module decides which granularities a view's current state satisfies:

* :func:`validity_interval` — the master-transaction interval over which a
  copy synchronized at some point remains identical to the master;
* :func:`group_delta` — the appendix's Δ-consistency bound of a set of
  copies (0 ⇔ snapshot consistent);
* :class:`GroupConsistencyChecker` — groups a view's rows by arbitrary
  columns and reports per-group Δ bounds.
"""

import itertools

from repro.semantics.model import HistoryView


def validity_interval(history, table, pk, sync_txn):
    """[lo, hi] — the copy equals the master's state for every snapshot
    ``H_m`` with ``lo <= m <= hi`` (hi is None when still current).

    ``lo`` is the last transaction modifying the object at or before the
    sync point; ``hi`` is the transaction *before* the next modification.
    """
    modifications = history.modifications_of(table, pk)
    lo = 0
    hi = None
    for txn in modifications:
        if txn <= sync_txn:
            lo = txn
        else:
            hi = txn - 1
            break
    return lo, hi


def intervals_intersect(intervals, last_txn):
    """Do all validity intervals share a common snapshot?"""
    lo = 0
    hi = last_txn
    for interval_lo, interval_hi in intervals:
        lo = max(lo, interval_lo)
        hi = min(hi, interval_hi if interval_hi is not None else last_txn)
    return lo <= hi


def group_delta(history, table, members):
    """Δ-consistency bound (in transaction time) of a set of copies.

    ``members`` is an iterable of ``(pk, sync_txn)``.  Two copies are at
    distance 0 exactly when their validity intervals intersect — i.e. some
    snapshot contains both; otherwise the distance is the transaction gap
    between the intervals.  The appendix defines distance through
    ``currency(A, H_m)``; in continuous time the two formulations agree,
    but the interval form is exact for discrete transaction ids (the
    measure-zero instant at which a copy "just became stale" matters
    there), and it preserves the appendix's key property:
    **Δ-bound 0 ⇔ snapshot consistent** (1-D Helly: pairwise-intersecting
    intervals share a common point).
    """
    members = list(members)
    last = history.last_txn
    intervals = []
    for pk, sync in members:
        lo, hi = validity_interval(history, table, pk, sync)
        intervals.append((lo, hi if hi is not None else last))
    delta = 0
    for (lo_a, hi_a), (lo_b, hi_b) in itertools.combinations(intervals, 2):
        if hi_a < lo_b:
            delta = max(delta, lo_b - hi_a)
        elif hi_b < lo_a:
            delta = max(delta, lo_a - hi_b)
    return delta


class GroupReport:
    """Per-group Δ bounds for one grouping of a view."""

    def __init__(self, by_columns, deltas):
        self.by_columns = tuple(by_columns)
        #: group key -> Δ bound (transaction time)
        self.deltas = deltas

    @property
    def max_delta(self):
        return max(self.deltas.values(), default=0)

    @property
    def consistent(self):
        """True when every group is snapshot consistent (Δ = 0)."""
        return self.max_delta == 0

    def inconsistent_groups(self):
        return sorted(k for k, d in self.deltas.items() if d > 0)

    def __repr__(self):
        return (
            f"GroupReport(by={list(self.by_columns)}, groups={len(self.deltas)}, "
            f"max_delta={self.max_delta})"
        )


class GroupConsistencyChecker:
    """Checks which consistency granularities a view's state satisfies."""

    def __init__(self, backend):
        self.backend = backend
        self.history = HistoryView(backend.txn_manager.log)

    def _members(self, view, sync_of):
        """(pk, group-key source values, sync_txn) per view row."""
        table = view.table
        ci = table.clustered_index()
        if ci is None:
            raise ValueError(f"view {view.name} has no primary key")
        out = []
        for rid, values in table.scan():
            pk = ci.key_of(values)
            sync = sync_of(pk)
            if sync is None:
                continue
            out.append((pk, values, sync.sync_txn))
        return out

    def check(self, view, sync_of, by_columns=None):
        """Report per-group Δ bounds.

        ``sync_of(pk)`` returns the RowSync for a view row (e.g.
        ``RowRefreshAgent.sync_of``).  ``by_columns=None`` checks the whole
        view as a single group (table-level consistency); otherwise rows
        are grouped on the named view columns.
        """
        members = self._members(view, sync_of)
        if by_columns is None:
            deltas = {
                (): group_delta(
                    self.history, view.base_table, [(pk, sync) for pk, _, sync in members]
                )
            }
            return GroupReport((), deltas)
        positions = [view.table.schema.index_of(c) for c in by_columns]
        groups = {}
        for pk, values, sync in members:
            key = tuple(values[p] for p in positions)
            groups.setdefault(key, []).append((pk, sync))
        deltas = {
            key: group_delta(self.history, view.base_table, group)
            for key, group in groups.items()
        }
        return GroupReport(by_columns, deltas)

    def finest_satisfied(self, view, sync_of, candidate_groupings):
        """Of the given groupings (coarsest first), return those whose
        every group is snapshot consistent right now."""
        satisfied = []
        for by_columns in candidate_groupings:
            report = self.check(view, sync_of, by_columns=by_columns)
            if report.consistent:
                satisfied.append(tuple(by_columns) if by_columns else ())
        return satisfied
