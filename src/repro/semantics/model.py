"""The appendix's database model, made executable.

The master database's committed history is exactly the replication log: a
sequence of row-level changes grouped into transactions ``T_1 … T_n`` with
monotonically increasing ids (timestamps).  :class:`HistoryView` replays a
prefix ``H_n`` to reconstruct the snapshot after any transaction, and the
module functions implement the appendix's definitions:

* ``xtime(O, H_n)`` — the id of the last transaction in ``H_n`` modifying
  object ``O`` (an object here is one row, identified by table + pk);
* ``stale_point(C, H_n)`` — the first transaction after a copy's sync point
  that modified the master (the moment the copy became stale);
* ``currency(C, H_n)`` — how long the copy has been stale;
* ``distance(A, B, H_n)`` and Δ-consistency for object sets.

Objects are identified as ``(table, pk)`` pairs; copies are described by
their sync transaction id (all changes up to that id applied).
"""

from repro.common.errors import ReproError


class HistoryView:
    """Replayable view over the replication log (the history ``H``)."""

    def __init__(self, log):
        self.log = log

    @property
    def last_txn(self):
        """n for the full history H_n."""
        last = 0
        for record in self.log.records:
            last = max(last, record.txn_id)
        return last

    def commit_time_of(self, txn_id):
        """Wall-clock commit time of transaction ``txn_id`` (None if no
        such transaction appears in the log)."""
        for record in self.log.records:
            if record.txn_id == txn_id:
                return record.commit_time
        return None

    def last_txn_at_or_before(self, time):
        """Largest txn id with commit_time <= ``time``."""
        last = 0
        for record in self.log.records:
            if record.commit_time <= time:
                last = max(last, record.txn_id)
            else:
                break
        return last

    def snapshot(self, table, up_to_txn=None):
        """Reconstruct ``{pk: row values}`` of one table after ``H_n``."""
        state = {}
        for record in self.log.records:
            if record.table != table:
                continue
            if up_to_txn is not None and record.txn_id > up_to_txn:
                break
            if record.values is None:
                state.pop(record.pk, None)
            else:
                state[record.pk] = record.values
        return state

    def modifications_of(self, table, pk):
        """All txn ids that modified object (table, pk), in order."""
        return [
            record.txn_id
            for record in self.log.records
            if record.table == table and record.pk == pk
        ]


def xtime(history, table, pk, up_to_txn=None):
    """xtime(O, H_n): last transaction modifying the object (0 if never)."""
    last = 0
    for txn_id in history.modifications_of(table, pk):
        if up_to_txn is not None and txn_id > up_to_txn:
            break
        last = txn_id
    return last


def stale_point(history, table, pk, sync_txn, up_to_txn=None):
    """stale(C, H_n) for a copy of (table, pk) synchronized at ``sync_txn``.

    Returns the id of the first transaction modifying the master after the
    sync point; if the copy is not stale, returns ``up_to_txn`` (i.e.
    ``xtime(T_n)``), per the appendix convention.
    """
    n = up_to_txn if up_to_txn is not None else history.last_txn
    for txn_id in history.modifications_of(table, pk):
        if sync_txn < txn_id <= n:
            return txn_id
    return n


def currency(history, table, pk, sync_txn, up_to_txn=None):
    """currency(C, H_n) = xtime(T_n) − stale(C, H_n), in *transaction time*.

    Zero when the copy is identical to the master.  To convert to wall
    time use ``HistoryView.commit_time_of``.
    """
    n = up_to_txn if up_to_txn is not None else history.last_txn
    return n - stale_point(history, table, pk, sync_txn, up_to_txn=n)


def wall_clock_currency(history, table, pk, sync_txn, at_time):
    """Staleness of a copy in wall-clock seconds at time ``at_time``.

    0 if the master has not been modified since the sync point; otherwise
    ``at_time − commit_time(stale point)``.
    """
    n = history.last_txn_at_or_before(at_time)
    sp = stale_point(history, table, pk, sync_txn, up_to_txn=n)
    if sp <= sync_txn or sp == 0:
        return 0.0
    modified_after_sync = any(
        sync_txn < txn_id <= n for txn_id in history.modifications_of(table, pk)
    )
    if not modified_after_sync:
        return 0.0
    commit = history.commit_time_of(sp)
    if commit is None:
        return 0.0
    return max(0.0, at_time - commit)


def is_snapshot_consistent(history, objects, up_to_txn):
    """Are the given copies all snapshot consistent w.r.t. ``H_n``?

    ``objects`` is an iterable of ``(table, pk, value, sync_txn)``; each
    copy's value must equal the object's value in the snapshot, which by
    construction holds when its sync point covers ``up_to_txn``'s state of
    that object.  We check values directly against the replayed snapshot.
    """
    by_table = {}
    for table, pk, value, _sync in objects:
        by_table.setdefault(table, []).append((pk, value))
    for table, pairs in by_table.items():
        state = history.snapshot(table, up_to_txn=up_to_txn)
        for pk, value in pairs:
            if state.get(pk) != value:
                return False
    return True


def distance(history, sync_a, sync_b):
    """distance(A, B, H_n) between two copies (appendix §8.5).

    With ``xtime(A) <= xtime(B) = T_m``, the distance is ``currency(A, H_m)``
    measured in transaction time: how far A lags the snapshot B is current
    in.  For table-level copies synchronized at txn ids this reduces to the
    count of intervening transactions.
    """
    lo, hi = sorted((sync_a, sync_b))
    return hi - lo


def delta_consistency_bound(sync_points):
    """Δ-consistency bound of a set of copies: the max pairwise distance,
    which for totally ordered sync points is max − min."""
    points = list(sync_points)
    if not points:
        raise ReproError("delta_consistency_bound of an empty set")
    return max(points) - min(points)
