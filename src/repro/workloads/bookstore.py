"""The online-bookstore schema of the paper's §2 (Books / Reviews / Sales).

Used by the examples and by tests exercising the currency-clause semantics
(E1–E4, Q1–Q3 of Figures 2.1/2.2).
"""

import random

BOOKS_DDL = """
CREATE TABLE books (
    isbn INT NOT NULL,
    title VARCHAR(40) NOT NULL,
    author VARCHAR(25) NOT NULL,
    price FLOAT NOT NULL,
    stock INT NOT NULL,
    PRIMARY KEY (isbn)
)
"""

REVIEWS_DDL = """
CREATE TABLE reviews (
    review_id INT NOT NULL,
    isbn INT NOT NULL,
    rating INT NOT NULL,
    reviewer VARCHAR(25) NOT NULL,
    PRIMARY KEY (review_id)
)
"""

SALES_DDL = """
CREATE TABLE sales (
    sale_id INT NOT NULL,
    isbn INT NOT NULL,
    year INT NOT NULL,
    amount FLOAT NOT NULL,
    PRIMARY KEY (sale_id)
)
"""


def load_bookstore(backend, n_books=200, seed=7):
    """Create and populate the bookstore tables through logged txns."""
    backend.create_table(BOOKS_DDL)
    backend.create_table(REVIEWS_DDL)
    backend.create_table(SALES_DDL)
    backend.create_index("CREATE INDEX idx_reviews_isbn ON reviews (isbn)")
    backend.create_index("CREATE INDEX idx_sales_isbn ON sales (isbn)")

    rng = random.Random(seed)

    def load_books(txn):
        for isbn in range(1, n_books + 1):
            txn.insert(
                "books",
                (
                    isbn,
                    f"Title #{isbn:05d}",
                    f"Author {1 + isbn % 37}",
                    round(rng.uniform(5.0, 120.0), 2),
                    rng.randint(0, 500),
                ),
            )

    def load_reviews(txn):
        review_id = 0
        for isbn in range(1, n_books + 1):
            for _ in range(rng.randint(0, 5)):
                review_id += 1
                txn.insert(
                    "reviews",
                    (review_id, isbn, rng.randint(1, 5), f"Reader {rng.randint(1, 99)}"),
                )

    def load_sales(txn):
        sale_id = 0
        for isbn in range(1, n_books + 1):
            for _ in range(rng.randint(0, 8)):
                sale_id += 1
                txn.insert(
                    "sales",
                    (
                        sale_id,
                        isbn,
                        rng.choice([2001, 2002, 2003]),
                        round(rng.uniform(5.0, 240.0), 2),
                    ),
                )

    backend.txn_manager.run(load_books)
    backend.txn_manager.run(load_reviews)
    backend.txn_manager.run(load_sales)
    backend.refresh_statistics()
    return backend
