"""TPC-D-style workload generator (the paper's §4 database).

The paper used a TPCD database at scale factor 1.0: Customer with 150,000
rows (clustered on ``c_custkey``, secondary index on ``c_acctbal``) and
Orders with 1,500,000 rows (clustered on ``(o_custkey, o_orderkey)``, 10
orders per customer on average).  A pure-Python engine cannot hold SF 1.0
comfortably, so:

* data is generated at a configurable ``scale_factor`` (default 0.01), with
  all value distributions scale-free; and
* :func:`apply_paper_scale_stats` installs *statistics describing SF 1.0*
  so optimization decisions — which depend only on statistics — reproduce
  the paper's exactly, regardless of how much data is physically loaded.
"""

import random

SF1_CUSTOMERS = 150_000
SF1_ORDERS = 1_500_000
ORDERS_PER_CUSTOMER = 10

ACCTBAL_MIN = -999.99
ACCTBAL_MAX = 9999.99
TOTALPRICE_MIN = 900.0
TOTALPRICE_MAX = 450_000.0
NATIONS = 25

CUSTOMER_DDL = """
CREATE TABLE customer (
    c_custkey INT NOT NULL,
    c_name VARCHAR(25) NOT NULL,
    c_nationkey INT NOT NULL,
    c_acctbal FLOAT NOT NULL,
    c_mktsegment VARCHAR(10) NOT NULL,
    PRIMARY KEY (c_custkey)
)
"""

ORDERS_DDL = """
CREATE TABLE orders (
    o_custkey INT NOT NULL,
    o_orderkey INT NOT NULL,
    o_totalprice FLOAT NOT NULL,
    o_orderstatus VARCHAR(1) NOT NULL,
    PRIMARY KEY (o_custkey, o_orderkey)
)
"""

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
STATUSES = ["F", "O", "P"]


def customer_count(scale_factor):
    return max(1, int(round(SF1_CUSTOMERS * scale_factor)))


def generate_customers(scale_factor, seed=42):
    """Yield customer rows for the given scale factor."""
    rng = random.Random(seed)
    for key in range(1, customer_count(scale_factor) + 1):
        yield (
            key,
            f"Customer#{key:09d}",
            rng.randrange(NATIONS),
            round(rng.uniform(ACCTBAL_MIN, ACCTBAL_MAX), 2),
            rng.choice(SEGMENTS),
        )


def generate_orders(scale_factor, seed=42, skew=0.0):
    """Yield order rows: ~10 per customer, keyed (custkey, orderkey).

    ``skew`` in [0, 1) concentrates order volume on low-key customers
    (skew 0 = uniform ~10 each; higher values give heavy hitters), for
    experiments where uniform statistics mispredict — e.g. the histogram
    ablation.
    """
    rng = random.Random(seed + 1)
    n_customers = customer_count(scale_factor)
    orderkey = 0
    for custkey in range(1, n_customers + 1):
        if skew > 0.0:
            # Exponentially decaying expected volume, mean preserved
            # approximately for small tables.
            weight = (1.0 - skew) + skew * (n_customers / (custkey + n_customers * 0.05))
            n = max(1, int(round(rng.gauss(ORDERS_PER_CUSTOMER * weight, 2.0))))
        else:
            # Vary per-customer order counts around the mean of 10.
            n = rng.randint(ORDERS_PER_CUSTOMER - 3, ORDERS_PER_CUSTOMER + 3)
        for _ in range(n):
            orderkey += 1
            yield (
                custkey,
                orderkey,
                round(rng.uniform(TOTALPRICE_MIN, TOTALPRICE_MAX), 2),
                rng.choice(STATUSES),
            )


def load_tpcd(backend, scale_factor=0.01, seed=42, batch_size=2000):
    """Create and populate the TPCD tables on a back-end server.

    All rows go through the transaction manager (in batches) so the
    replication log contains the full history — required both by the
    distribution agents and the semantics checker.
    """
    backend.create_table(CUSTOMER_DDL)
    backend.create_table(ORDERS_DDL)
    backend.create_index("CREATE INDEX idx_c_acctbal ON customer (c_acctbal)")

    def bulk_insert(table, rows):
        batch = []

        def flush():
            if not batch:
                return
            rows_now = list(batch)
            backend.txn_manager.run(
                lambda txn: [txn.insert(table, r) for r in rows_now]
            )
            batch.clear()

        for row in rows:
            batch.append(row)
            if len(batch) >= batch_size:
                flush()
        flush()

    bulk_insert("customer", generate_customers(scale_factor, seed))
    bulk_insert("orders", generate_orders(scale_factor, seed))
    backend.refresh_statistics()
    return backend


def apply_paper_scale_stats(backend, cache=None):
    """Install SF 1.0 statistics so plan choices match the paper's scale.

    The shadow statistics on the cache (and the view statistics) are scaled
    alongside.  Physical data is untouched.
    """
    from repro.catalog.statistics import ColumnStats, TableStats

    customer_stats = TableStats(
        row_count=SF1_CUSTOMERS,
        columns={
            "c_custkey": ColumnStats(min=1, max=SF1_CUSTOMERS, ndv=SF1_CUSTOMERS, avg_width=8),
            "c_name": ColumnStats(min="Customer#000000001", max="Customer#000150000",
                                  ndv=SF1_CUSTOMERS, avg_width=18),
            "c_nationkey": ColumnStats(min=0, max=NATIONS - 1, ndv=NATIONS, avg_width=8),
            "c_acctbal": ColumnStats(min=ACCTBAL_MIN, max=ACCTBAL_MAX,
                                     ndv=SF1_CUSTOMERS, avg_width=8),
            "c_mktsegment": ColumnStats(min="AUTOMOBILE", max="MACHINERY",
                                        ndv=len(SEGMENTS), avg_width=10),
        },
    )
    orders_stats = TableStats(
        row_count=SF1_ORDERS,
        columns={
            "o_custkey": ColumnStats(min=1, max=SF1_CUSTOMERS, ndv=SF1_CUSTOMERS, avg_width=8),
            "o_orderkey": ColumnStats(min=1, max=SF1_ORDERS, ndv=SF1_ORDERS, avg_width=8),
            "o_totalprice": ColumnStats(min=TOTALPRICE_MIN, max=TOTALPRICE_MAX,
                                        ndv=SF1_ORDERS, avg_width=8),
            "o_orderstatus": ColumnStats(min="F", max="P", ndv=len(STATUSES), avg_width=1),
        },
    )
    backend.catalog.table("customer").stats = customer_stats
    backend.catalog.table("orders").stats = orders_stats
    if cache is not None:
        cache.catalog.table("customer").stats = customer_stats
        cache.catalog.table("orders").stats = orders_stats
        for view in cache.catalog.matviews():
            base = {"customer": customer_stats, "orders": orders_stats}[view.base_table]
            view.stats = base.project(view.columns)
    return customer_stats, orders_stats
