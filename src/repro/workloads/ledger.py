"""A double-entry ledger workload: the write path's proving ground.

Every transfer is one atomic INSERT of two legs — ``+amount`` to one
account, ``-amount`` to another, sharing a transfer id — so two
invariants hold by construction on the back-end and must survive
replication, crashes and routing changes:

* **balance conservation** — the deltas always sum to zero (a torn
  transfer would break this);
* **read-your-writes** — the writing session, re-reading its own
  transfer through the cache tier, must see both legs.

The ``ledger`` table is declared *strict* (reads guard to the session's
commit floor regardless of the query's currency bound); ``accounts`` is
reference data and stays *relaxed* (reads obey the currency bound
alone).  The first primary-key column is the transfer id, so on a
sharded back-end both legs hash to the same partition and the session
floor only pins the partition the transfer actually touched.

:class:`LedgerWorkload` drives a seeded mixed read/write stream against
an :class:`~repro.cache.mtcache.MTCache` or a
:class:`~repro.fleet.fleet.CacheFleet`, audits every re-read through
:meth:`InvariantChecker.check_ryw <repro.chaos.invariants.InvariantChecker.check_ryw>`,
and offers :meth:`LedgerWorkload.audit` for the post-recovery
conservation check.  It plugs into
:meth:`ChaosScheduler.run(workload=...)
<repro.chaos.scheduler.ChaosScheduler.run>` in place of the default
point-lookup driver.
"""

import random

from repro.common.errors import ReproError
from repro.session import Session
from repro.workloads.driver import DriverReport

__all__ = ["LedgerWorkload"]

ACCOUNTS_DDL = (
    "CREATE TABLE accounts (id INT NOT NULL, grp INT NOT NULL, "
    "PRIMARY KEY (id))"
)
LEDGER_DDL = (
    "CREATE TABLE ledger (tid INT NOT NULL, leg INT NOT NULL, "
    "account INT NOT NULL, delta INT NOT NULL, PRIMARY KEY (tid, leg))"
)


class LedgerWorkload:
    """Seeded accounts + random transfers over a cache or a fleet.

    ``write_rate`` is the probability an operation is a transfer; every
    transfer is followed by an immediate read-your-writes re-read, and
    background reads mix strict ledger re-reads with relaxed account
    lookups.  All sampling comes from one ``random.Random(seed)`` on the
    simulated clock, so a (seed, schedule) pair is one exact history.
    """

    def __init__(self, target, *, n_accounts=64, seed=7, write_rate=0.1,
                 bounds=(0.0, 2.0, 600.0), region="ledger",
                 update_interval=0.25, update_delay=0.1,
                 heartbeat_interval=0.25):
        #: The target: an MTCache or (detected by ``router``) a CacheFleet.
        self.target = target
        self.is_fleet = hasattr(target, "router")
        self.n_accounts = n_accounts
        self.seed = seed
        self.write_rate = write_rate
        self.bounds = list(bounds)
        self.region = region
        self.update_interval = update_interval
        self.update_delay = update_delay
        self.heartbeat_interval = heartbeat_interval
        #: The writing client's read-your-writes session.  It lives
        #: *here* — client-side — so node crashes and routing changes
        #: cannot lose it; its token is portable across the fleet.
        self.session = Session(name="ledger-writer")
        self.committed = []  # transfer ids that committed on the back-end
        self.next_tid = 1
        self.writes = 0
        self.write_errors = 0
        self.reads = 0
        self.ryw_reads = 0
        self.read_routing = {"local": 0, "remote": 0, "mixed": 0}
        self.report = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def install(self):
        """Create the schema on the back-end, seed the accounts, and
        build the cache-side region/views with ``ledger`` declared
        strict.  Call once before :meth:`drive`."""
        backend = self.target.backend
        backend.create_table(ACCOUNTS_DDL)
        backend.create_table(LEDGER_DDL)
        rows = ", ".join(f"({i}, {i % 8})" for i in range(self.n_accounts))
        backend.execute(f"INSERT INTO accounts VALUES {rows}")
        backend.refresh_statistics()
        self.target.create_region(
            self.region, self.update_interval, self.update_delay,
            heartbeat_interval=self.heartbeat_interval,
        )
        self.target.create_matview(
            "ledger_copy", "ledger", ["tid", "leg", "account", "delta"],
            region=self.region,
        )
        self.target.create_matview(
            "accounts_copy", "accounts", ["id", "grp"], region=self.region,
        )
        self.target.declare_table_consistency("ledger", "strict")
        return self

    def preload(self, n_transfers):
        """Commit ``n_transfers`` through the front door before driving.

        Gives read-heavy runs a populated ledger to re-read, so a
        read-only baseline and a mixed run sample the same key
        distribution (benchmarks compare their throughput).  The
        transfers land in ``committed`` (the conservation audit counts
        them) and advance the session floor, but are not counted in the
        drive statistics.
        """
        rng = random.Random(self.seed + 1)
        for _ in range(n_transfers):
            tid = self.next_tid
            self.next_tid += 1
            src = rng.randrange(self.n_accounts)
            dst = (src + 1 + rng.randrange(self.n_accounts - 1)) \
                % self.n_accounts
            amount = rng.randint(1, 99)
            self._execute(
                f"INSERT INTO ledger VALUES "
                f"({tid}, 0, {src}, {amount}), ({tid}, 1, {dst}, -{amount})"
            )
            self.committed.append(tid)
        return self

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def drive(self, duration, *, think_time=0.2, on_result=None,
              on_error=None, checker=None, raise_errors=False):
        """Run ``duration`` simulated seconds of mixed operations.

        Matches the hook contract of
        :meth:`~repro.workloads.driver.WorkloadDriver.run`:
        ``on_result(bound, result)`` fires for every delivered read,
        ``on_error(bound, exc)`` for every swallowed fault, and
        ``checker.check_ryw`` audits each ledger re-read.  Returns a
        :class:`~repro.workloads.driver.DriverReport` over the reads.
        """
        rng = random.Random(self.seed)
        report = DriverReport()
        n_ops = max(1, int(duration / think_time)) if think_time else 1
        for _ in range(n_ops):
            if not self.committed or rng.random() < self.write_rate:
                self._transfer(rng, report, on_result, on_error, checker,
                               raise_errors)
            else:
                self._background_read(rng, report, on_result, on_error,
                                      checker, raise_errors)
            if think_time:
                self.target.run_for(rng.expovariate(1.0 / think_time))
        self.report = report
        return report

    def _execute(self, sql, bound=None):
        if self.is_fleet:
            return self.target.execute(sql, bound=bound, session=self.session)
        return self.target.execute(sql, session=self.session)

    def _transfer(self, rng, report, on_result, on_error, checker,
                  raise_errors):
        """One atomic two-leg transfer, then the read-your-writes
        re-read.  A failed INSERT never reached the back-end (the
        simulated network faults before invoking the call), so the
        transfer id is simply not committed."""
        tid = self.next_tid
        self.next_tid += 1
        src = rng.randrange(self.n_accounts)
        dst = (src + 1 + rng.randrange(self.n_accounts - 1)) % self.n_accounts
        amount = rng.randint(1, 99)
        sql = (
            f"INSERT INTO ledger VALUES "
            f"({tid}, 0, {src}, {amount}), ({tid}, 1, {dst}, -{amount})"
        )
        try:
            self._execute(sql)
        except ReproError as exc:
            if raise_errors:
                raise
            self.write_errors += 1
            report.record_error(None, exc)
            if on_error is not None:
                on_error(None, exc)
            return
        self.writes += 1
        self.committed.append(tid)
        # Immediately read the write back at the loosest bound, so the
        # session floor — not currency — decides local versus remote.
        self.ryw_reads += 1
        self._read_transfer(tid, max(self.bounds), report, on_result,
                            on_error, checker, raise_errors)

    def _background_read(self, rng, report, on_result, on_error, checker,
                         raise_errors):
        """A read op: mostly strict ledger re-reads of earlier transfers
        (still session-floored), sometimes a relaxed account lookup."""
        bound = rng.choice(self.bounds)
        if rng.random() < 0.3:
            key = rng.randrange(self.n_accounts)
            sql = (
                f"SELECT a.id, a.grp FROM accounts a WHERE a.id = {key} "
                f"CURRENCY BOUND {bound:g} SEC ON (a)"
            )
            self._run_read(sql, bound, report, on_result, on_error,
                           raise_errors)
            return
        tid = rng.choice(self.committed)
        self._read_transfer(tid, bound, report, on_result, on_error,
                            checker, raise_errors)

    def _read_transfer(self, tid, bound, report, on_result, on_error,
                       checker, raise_errors):
        sql = (
            f"SELECT l.tid, l.leg, l.account, l.delta FROM ledger l "
            f"WHERE l.tid = {tid} CURRENCY BOUND {bound:g} SEC ON (l)"
        )
        result = self._run_read(sql, bound, report, on_result, on_error,
                                raise_errors)
        if result is not None and checker is not None:
            # The session floor covers *all* its commits (application is
            # in transaction order), so every committed transfer must be
            # fully visible, not just the latest.
            checker.check_ryw(result, 2, tid=tid)
        return result

    def _run_read(self, sql, bound, report, on_result, on_error,
                  raise_errors):
        try:
            result = self._execute(sql, bound=bound)
        except ReproError as exc:
            if raise_errors:
                raise
            report.record_error(bound, exc)
            if on_error is not None:
                on_error(bound, exc)
            return None
        self.reads += 1
        routing = result.routing
        self.read_routing[routing] = self.read_routing.get(routing, 0) + 1
        report.record(bound, result)
        if on_result is not None:
            on_result(bound, result)
        return result

    # ------------------------------------------------------------------
    # Auditing & reporting
    # ------------------------------------------------------------------
    def audit(self, checker):
        """Post-recovery conservation audit: deltas sum to zero and the
        back-end holds exactly two legs per committed transfer."""
        return checker.check_ledger_conservation(
            table="ledger", expected_rows=2 * len(self.committed)
        )

    def summary(self):
        """Deterministic scalar summary (safe to print / diff / JSON)."""
        return {
            "accounts": self.n_accounts,
            "transfers_committed": len(self.committed),
            "writes": self.writes,
            "write_errors": self.write_errors,
            "reads": self.reads,
            "ryw_reads": self.ryw_reads,
            "read_routing": dict(sorted(self.read_routing.items())),
            "session_floors": dict(sorted(self.session.floors.items())),
        }

    def __repr__(self):
        return (
            f"<LedgerWorkload transfers={len(self.committed)} "
            f"reads={self.reads} errors={self.write_errors}>"
        )
