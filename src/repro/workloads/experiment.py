"""The §4 experimental setup: back-end + MTCache + the two local views.

Reproduces Table 4.1:

====  ========  =====  ==========
cid   interval  delay  views
====  ========  =====  ==========
CR1   15        5      cust_prj
CR2   10        5      orders_prj
====  ========  =====  ==========

``cust_prj(c_custkey, c_name, c_nationkey, c_acctbal)`` is clustered on
``c_custkey`` with *no* secondary indexes (the reason Q6 goes remote);
``orders_prj(o_custkey, o_orderkey, o_totalprice)`` is clustered on
``(o_custkey, o_orderkey)``.
"""

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.workloads.tpcd import apply_paper_scale_stats, load_tpcd

#: Table 4.1 settings.
REGION_SETTINGS = [
    ("cr1", 15.0, 5.0, "cust_prj"),
    ("cr2", 10.0, 5.0, "orders_prj"),
]

CUST_PRJ_COLUMNS = ["c_custkey", "c_name", "c_nationkey", "c_acctbal"]
ORDERS_PRJ_COLUMNS = ["o_custkey", "o_orderkey", "o_totalprice"]


class PaperSetup:
    """Handle on the assembled experiment environment."""

    def __init__(self, backend, cache, scale_factor):
        self.backend = backend
        self.cache = cache
        self.scale_factor = scale_factor

    @property
    def clock(self):
        return self.backend.clock

    def run_for(self, seconds):
        return self.backend.run_for(seconds)

    def region_table(self):
        """Rows of Table 4.1 for reporting."""
        out = []
        for cid, interval, delay, view in REGION_SETTINGS:
            region = self.cache.catalog.region(cid)
            out.append((region.cid, region.update_interval, region.update_delay, view))
        return out


def build_paper_setup(
    scale_factor=0.01,
    seed=42,
    heartbeat_interval=2.0,
    paper_scale_stats=True,
    settle=True,
    batch_size=None,
    engine=None,
):
    """Assemble the paper's experimental environment.

    ``paper_scale_stats=True`` installs SF 1.0 statistics so the optimizer
    reproduces the paper's plan choices even though less data is loaded.
    ``settle=True`` advances simulated time far enough for heartbeats to
    propagate, so currency guards can pass immediately.  ``batch_size``
    overrides the execution engine's chunk size on both servers
    (``1`` = legacy row engine); ``engine`` picks the execution engine
    explicitly (``"row"`` / ``"batch"`` / ``"columnar"``).
    """
    engine_kwargs = {} if batch_size is None else {"batch_size": batch_size}
    if engine is not None:
        engine_kwargs["engine"] = engine
    backend = BackendServer(**engine_kwargs)
    load_tpcd(backend, scale_factor=scale_factor, seed=seed)
    cache = MTCache(backend, **engine_kwargs)

    for cid, interval, delay, _view in REGION_SETTINGS:
        cache.create_region(cid, interval, delay, heartbeat_interval=heartbeat_interval)
    cache.create_matview("cust_prj", "customer", CUST_PRJ_COLUMNS, region="cr1")
    cache.create_matview("orders_prj", "orders", ORDERS_PRJ_COLUMNS, region="cr2")

    if paper_scale_stats:
        apply_paper_scale_stats(backend, cache)

    if settle:
        # One full propagation cycle of the slowest region: heartbeats have
        # beaten and both agents have propagated at least once.
        slowest = max(interval + delay for _, interval, delay, _ in REGION_SETTINGS)
        backend.run_for(slowest + heartbeat_interval)

    return PaperSetup(backend, cache, scale_factor)
