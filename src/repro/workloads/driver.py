"""A mixed-workload driver for MTCache experiments.

Executes a stream of queries against the cache with configurable currency
bounds and think times (simulated), collecting the load-split metrics the
paper's motivation talks about: how much work stays on the cache versus
how many queries — and how many rows — still hit the back-end server.
"""

import random


class DriverReport:
    """Aggregated outcome of one driver run."""

    def __init__(self):
        self.queries = 0
        self.local = 0
        self.remote_queries = 0
        self.rows_shipped = 0
        self.rows_returned = 0
        self.by_bound = {}  # bound -> [local, total]
        self.warnings = 0
        #: The cache's metrics-registry snapshot at end of run (parse /
        #: optimize / phase timings, guard outcomes, staleness gauges),
        #: alongside the routing aggregates above.
        self.metrics = {}

    @property
    def local_fraction(self):
        return self.local / self.queries if self.queries else 0.0

    def local_fraction_for(self, bound):
        local, total = self.by_bound.get(bound, (0, 0))
        return local / total if total else 0.0

    def record(self, bound, result):
        self.queries += 1
        self.rows_returned += len(result.rows)
        served_locally = bool(result.context.branches) and all(
            index == 0 for _, index in result.context.branches
        )
        if served_locally:
            self.local += 1
        self.remote_queries += len(result.context.remote_queries)
        self.rows_shipped += sum(n for _, n in result.context.remote_queries)
        local, total = self.by_bound.get(bound, (0, 0))
        self.by_bound[bound] = (local + (1 if served_locally else 0), total + 1)
        self.warnings += len(result.warnings)

    def __repr__(self):
        return (
            f"DriverReport(queries={self.queries}, local={self.local_fraction:.1%}, "
            f"remote_queries={self.remote_queries}, rows_shipped={self.rows_shipped})"
        )


class WorkloadDriver:
    """Runs query streams against an MTCache on the simulated clock."""

    def __init__(self, cache, seed=42):
        self.cache = cache
        self.rng = random.Random(seed)

    def run(self, query_factory, bounds, n_queries, think_time=1.0):
        """Execute ``n_queries`` queries.

        ``query_factory(rng, bound)`` returns SQL text for one request;
        ``bounds`` is a list of currency bounds sampled uniformly; between
        queries the simulated clock advances by an exponential think time
        with the given mean (so arrivals spread across propagation cycles).
        """
        report = DriverReport()
        for _ in range(n_queries):
            bound = self.rng.choice(bounds)
            sql = query_factory(self.rng, bound)
            result = self.cache.execute(sql)
            report.record(bound, result)
            self.cache.run_for(self.rng.expovariate(1.0 / think_time))
        report.metrics = self.cache.metrics.snapshot()
        return report


def point_lookup_factory(table, key_column, key_range, alias=None):
    """A query factory for guarded point lookups with a random key."""
    alias = alias or table[0]

    def factory(rng, bound):
        key = rng.randint(*key_range)
        return (
            f"SELECT {alias}.* FROM {table} {alias} "
            f"WHERE {alias}.{key_column} = {key} "
            f"CURRENCY BOUND {bound} SEC ON ({alias})"
        )

    return factory
