"""A mixed-workload driver for MTCache and cache-fleet experiments.

Executes a stream of queries against a single cache *or* a
:class:`~repro.fleet.fleet.CacheFleet` with configurable currency bounds
and think times (simulated), collecting the load-split metrics the
paper's motivation talks about: how much work stays on the cache versus
how many queries — and how many rows — still hit the back-end server.

When the target is a fleet, the driver additionally records which node
served each query, tolerates injected faults (``raise_errors=False``
turns raised errors into a counter instead of aborting the run), and
aggregates every node's metrics snapshot under node-labelled keys.
"""

import random

from repro.common.errors import ReproError


class DriverReport:
    """Aggregated outcome of one driver run."""

    def __init__(self):
        self.queries = 0
        self.local = 0
        self.remote_queries = 0
        self.rows_shipped = 0
        self.rows_returned = 0
        self.by_bound = {}  # bound -> [local, total]
        self.by_node = {}  # node name -> queries served (fleet runs only)
        self.warnings = 0
        #: Errors swallowed by ``raise_errors=False`` (fault-injection runs).
        self.errors = 0
        #: Trace ids of the most recent traced queries (bounded ring);
        #: look them up in ``fleet.traces`` / ``cache.traces``.
        self.trace_ids = []
        #: Recent structured events across the target's registries at end
        #: of run (guard fallbacks, breaker transitions, faults, ...).
        self.events = []
        #: Metrics snapshot(s) at end of run.  Driving a single cache this
        #: is the cache registry's flat snapshot; driving a fleet it maps
        #: node-labelled keys — ``"fleet"`` plus one key per node name —
        #: to that registry's snapshot, so no node's counters are lost.
        self.metrics = {}

    @property
    def local_fraction(self):
        return self.local / self.queries if self.queries else 0.0

    def local_fraction_for(self, bound):
        local, total = self.by_bound.get(bound, (0, 0))
        return local / total if total else 0.0

    def record(self, bound, result):
        self.queries += 1
        self.rows_returned += len(result.rows)
        served_locally = bool(result.context.branches) and all(
            index == 0 for _, index in result.context.branches
        )
        if served_locally:
            self.local += 1
        self.remote_queries += len(result.context.remote_queries)
        self.rows_shipped += sum(n for _, n in result.context.remote_queries)
        local, total = self.by_bound.get(bound, (0, 0))
        self.by_bound[bound] = (local + (1 if served_locally else 0), total + 1)
        node = getattr(result, "node", None)
        if node is not None:
            self.by_node[node] = self.by_node.get(node, 0) + 1
        trace_id = getattr(result, "trace_id", None)
        if trace_id is not None:
            self.trace_ids.append(trace_id)
            if len(self.trace_ids) > 64:
                del self.trace_ids[:-64]
        self.warnings += len(result.warnings)

    def record_error(self, bound, exc):
        self.errors += 1
        local, total = self.by_bound.get(bound, (0, 0))
        self.by_bound[bound] = (local, total + 1)

    def __repr__(self):
        return (
            f"DriverReport(queries={self.queries}, local={self.local_fraction:.1%}, "
            f"remote_queries={self.remote_queries}, rows_shipped={self.rows_shipped}, "
            f"errors={self.errors})"
        )


class WorkloadDriver:
    """Runs query streams against an MTCache or a CacheFleet on the
    simulated clock."""

    def __init__(self, cache, seed=42):
        #: The target: anything with ``execute`` and ``run_for``.  A fleet
        #: (detected by its ``router`` attribute) is driven through its
        #: front door, with the sampled bound passed as a routing hint.
        self.cache = cache
        self.rng = random.Random(seed)

    def run(self, query_factory, bounds, n_queries, think_time=1.0,
            raise_errors=True, on_result=None, on_error=None):
        """Execute ``n_queries`` queries.

        ``query_factory(rng, bound)`` returns SQL text for one request;
        ``bounds`` is a list of currency bounds sampled uniformly; between
        queries the simulated clock advances by an exponential think time
        with the given mean (``think_time=0`` disables think time — a
        closed loop saturating the target).  ``raise_errors=False``
        records raised :class:`~repro.common.errors.ReproError` subtypes
        (currency violations, network failures) in ``report.errors``
        instead of aborting, which is what fault-injection runs want.

        ``on_result(bound, result)`` / ``on_error(bound, exc)`` are
        per-query observer hooks — the chaos harness uses them to audit
        every delivered result against its declared bound and to
        timestamp each outcome on the simulated clock.
        """
        report = DriverReport()
        is_fleet = hasattr(self.cache, "router")
        for _ in range(n_queries):
            bound = self.rng.choice(bounds)
            sql = query_factory(self.rng, bound)
            try:
                if is_fleet:
                    result = self.cache.execute(sql, bound=bound)
                else:
                    result = self.cache.execute(sql)
            except ReproError as exc:
                if raise_errors:
                    raise
                report.record_error(bound, exc)
                if on_error is not None:
                    on_error(bound, exc)
            else:
                report.record(bound, result)
                if on_result is not None:
                    on_result(bound, result)
            if think_time:
                self.cache.run_for(self.rng.expovariate(1.0 / think_time))
        report.metrics = self._metrics_snapshot()
        report.events = self._recent_events()
        return report

    def _metrics_snapshot(self):
        """Node-labelled snapshots for a fleet, a flat snapshot otherwise.

        Without the fleet path, driving N nodes would silently keep only
        the last node's registry; ``CacheFleet.snapshot_metrics`` returns
        every node's snapshot keyed by node name (plus ``"fleet"``).
        """
        if hasattr(self.cache, "snapshot_metrics"):
            return self.cache.snapshot_metrics()
        return self.cache.metrics.snapshot()

    def _recent_events(self, n=50):
        """Recent events across the target's registries, oldest first."""
        logs = []
        if hasattr(self.cache, "nodes"):  # fleet
            logs.append(self.cache.metrics.events)
            logs.extend(node.metrics.events for node in self.cache.nodes)
        else:
            logs.append(self.cache.metrics.events)
        events = [event for log in logs for event in log.recent(n)]
        events.sort(key=lambda e: e.time if e.time is not None else -1.0)
        return events[-n:]


def point_lookup_factory(table, key_column, key_range, alias=None):
    """A query factory for guarded point lookups with a random key."""
    alias = alias or table[0]

    def factory(rng, bound):
        key = rng.randint(*key_range)
        return (
            f"SELECT {alias}.* FROM {table} {alias} "
            f"WHERE {alias}.{key_column} = {key} "
            f"CURRENCY BOUND {bound} SEC ON ({alias})"
        )

    return factory
