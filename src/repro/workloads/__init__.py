"""Workloads: TPC-D-style data, the bookstore schema from §2, the paper's
experiment queries, the full experimental setup of §4, and the
double-entry ledger mixed read/write workload."""

from repro.workloads.bookstore import load_bookstore
from repro.workloads.driver import DriverReport, WorkloadDriver, point_lookup_factory
from repro.workloads.experiment import PaperSetup, build_paper_setup
from repro.workloads.ledger import LedgerWorkload
from repro.workloads.queries import (
    GUARD_QUERIES,
    PLAN_CHOICE_QUERIES,
    guard_query,
    plan_choice_query,
)
from repro.workloads.tpcd import apply_paper_scale_stats, load_tpcd

__all__ = [
    "DriverReport",
    "GUARD_QUERIES",
    "LedgerWorkload",
    "PLAN_CHOICE_QUERIES",
    "PaperSetup",
    "WorkloadDriver",
    "apply_paper_scale_stats",
    "build_paper_setup",
    "guard_query",
    "load_bookstore",
    "load_tpcd",
    "plan_choice_query",
    "point_lookup_factory",
]
