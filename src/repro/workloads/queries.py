"""The paper's experiment queries (§4, Tables 4.2–4.4).

Two query schemas parameterize the plan-choice experiments:

* **S1** — the Customer ⋈ Orders join with a key-range predicate ``$K`` and
  a varying currency clause (queries Q1–Q5 of Table 4.3);
* **S2** — the Customer range query on ``c_acctbal`` between ``$A`` and
  ``$B`` (queries Q6–Q7).

The §4.3 guard-overhead experiments use three further queries (Table 4.4):
a one-row PK lookup, a ~6-row indexed join, and a ~4% range scan.

``$K``/``$A``/``$B`` are expressed as *fractions* so the same query shapes
work at any scale factor; the concrete values below reproduce the paper's
selectivities at SF 1.0 (e.g. Q6's 53 rows, Q7's 5975 rows).
"""

from repro.workloads.tpcd import (
    ACCTBAL_MAX,
    ACCTBAL_MIN,
    SF1_CUSTOMERS,
    customer_count,
)

S1_TEMPLATE = (
    "SELECT c.c_custkey, c.c_name, o.o_orderkey, o.o_totalprice "
    "FROM customer c, orders o "
    "WHERE c.c_custkey = o.o_custkey AND c.c_custkey < {k}{currency}"
)

S2_TEMPLATE = (
    "SELECT c.c_custkey, c.c_name, c.c_acctbal "
    "FROM customer c "
    "WHERE c.c_acctbal BETWEEN {a} AND {b}{currency}"
)


def _k_for(fraction, scale_factor=1.0):
    """Key threshold selecting ``fraction`` of the customers."""
    return max(2, int(round(customer_count(scale_factor) * fraction)) + 1)


def _acctbal_range(fraction, origin=500.0):
    """An acctbal interval covering ``fraction`` of the domain."""
    width = (ACCTBAL_MAX - ACCTBAL_MIN) * fraction
    return origin, round(origin + width, 2)


#: Selectivity of Q6's range: 53 of 150,000 rows in the paper.
Q6_FRACTION = 53 / SF1_CUSTOMERS
#: Selectivity of Q7's range: 5,975 of 150,000 rows in the paper.
Q7_FRACTION = 5975 / SF1_CUSTOMERS


def plan_choice_query(name, scale_factor=1.0):
    """Build one of Q1..Q7 (Table 4.3) as SQL text.

    ``scale_factor`` only affects the concrete ``$K``/``$A``/``$B`` values
    so predicates keep the paper's selectivities on smaller databases.
    """
    name = name.lower()
    if name == "q1":
        # Highly selective join, no currency clause (default: current,
        # consistent) -> plan 1, everything remote.
        return S1_TEMPLATE.format(k=_k_for(0.001, scale_factor), currency="")
    if name == "q2":
        # Unselective join, no currency clause -> plan 2: two remote
        # fetches joined locally (join result ~ 1.7x the sources).
        return S1_TEMPLATE.format(k=_k_for(1.0, scale_factor), currency="")
    if name == "q3":
        # Bounds satisfied but single consistency class; the two views live
        # in different regions -> remote (plan 1).
        return S1_TEMPLATE.format(
            k=_k_for(0.2, scale_factor),
            currency=" CURRENCY BOUND 10 MIN ON (c, o)",
        )
    if name == "q4":
        # Consistency relaxed; Customer's bound (1 sec) is below CR1's
        # 5-sec delay -> mixed plan: remote Customer + guarded orders_prj.
        return S1_TEMPLATE.format(
            k=_k_for(0.2, scale_factor),
            currency=" CURRENCY BOUND 1 SEC ON (c), 10 MIN ON (o)",
        )
    if name == "q5":
        # Both bounds satisfiable, classes separate -> both local (plan 5).
        return S1_TEMPLATE.format(
            k=_k_for(0.2, scale_factor),
            currency=" CURRENCY BOUND 10 MIN ON (c), 10 MIN ON (o)",
        )
    if name == "q6":
        # 53-row range: the back-end's secondary index on c_acctbal beats
        # scanning the whole local view -> remote, purely on cost.
        a, b = _acctbal_range(Q6_FRACTION)
        return S2_TEMPLATE.format(a=a, b=b, currency=" CURRENCY BOUND 10 MIN ON (c)")
    if name == "q7":
        # 5975-row range: shipping the rows costs more than the local scan
        # -> guarded local view.
        a, b = _acctbal_range(Q7_FRACTION)
        return S2_TEMPLATE.format(a=a, b=b, currency=" CURRENCY BOUND 10 MIN ON (c)")
    raise ValueError(f"unknown plan-choice query: {name}")


#: Query name -> the plan the paper's optimizer chose (Table 4.3 rightmost
#: column), expressed as our plan-summary signatures.
PLAN_CHOICE_QUERIES = {
    "q1": "remote",
    "q2": "hashjoin(remote, remote)",
    "q3": "remote",
    "q4": "mixed",  # hash join of a remote fetch and a guarded view
    "q5": "local",  # hash join of two guarded views
    "q6": "remote",
    "q7": "guarded(cust_prj)",
}


def guard_query(name, scale_factor=1.0, custkey=None):
    """Queries of Table 4.4 (guard-overhead experiments)."""
    name = name.lower()
    key = custkey if custkey is not None else max(1, customer_count(scale_factor) // 2)
    if name == "gq1":
        # Single-row clustered-index lookup.
        return (
            "SELECT c.c_custkey, c.c_name, c.c_acctbal FROM customer c "
            f"WHERE c.c_custkey = {key} CURRENCY BOUND 10 MIN ON (c)"
        )
    if name == "gq2":
        # ~6-row indexed nested-loop join for one customer.
        return (
            "SELECT o.o_orderkey, o.o_totalprice FROM orders o "
            f"WHERE o.o_custkey = {key} CURRENCY BOUND 10 MIN ON (o)"
        )
    if name == "gq3":
        # ~4% range scan (5975 rows in the paper).
        a, b = _acctbal_range(Q7_FRACTION)
        return (
            "SELECT c.c_custkey, c.c_name, c.c_acctbal FROM customer c "
            f"WHERE c.c_acctbal BETWEEN {a} AND {b} CURRENCY BOUND 10 MIN ON (c)"
        )
    raise ValueError(f"unknown guard query: {name}")


GUARD_QUERIES = ["gq1", "gq2", "gq3"]
