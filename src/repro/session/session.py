"""Read-your-writes sessions and their portable tokens.

A :class:`Session` is client-side state: it never lives on a cache node,
so it survives node crashes, restarts and routing changes by
construction.  The cache tier only ever *reads* it (currency guards
compare floors against agent progress) and *advances* it (the DML path
stamps the commit's transaction id); tokens serialize to plain dicts for
transport between processes.
"""

__all__ = ["Session", "SessionToken"]


class SessionToken:
    """A portable per-replication-source commit floor.

    ``floors`` maps a replication-source name (``"backend"`` for an
    unsharded back-end, ``"p<i>"`` per partition of a sharded one) to the
    highest transaction id this session's writes committed there.  A read
    that must see the session's own writes is satisfiable from a local
    replica only when the replica's agent for that source has applied at
    least the floor transaction.
    """

    __slots__ = ("floors",)

    def __init__(self, floors=None):
        self.floors = dict(floors or {})

    def merge(self, other):
        """The pointwise maximum of two tokens (new token; inputs kept).

        Merging is how tokens compose: a client that talked to two
        routers combines their tokens and keeps both guarantees.
        """
        floors = dict(self.floors)
        for source, txn in other.floors.items():
            if txn > floors.get(source, 0):
                floors[source] = txn
        return SessionToken(floors)

    def as_dict(self):
        """JSON-ready representation (plain ``{source: txn_id}``)."""
        return dict(self.floors)

    @classmethod
    def from_dict(cls, data):
        return cls({str(k): int(v) for k, v in (data or {}).items()})

    def __bool__(self):
        return bool(self.floors)

    def __eq__(self, other):
        return isinstance(other, SessionToken) and self.floors == other.floors

    def __repr__(self):
        floors = ", ".join(f"{s}>={t}" for s, t in sorted(self.floors.items()))
        return f"<SessionToken {floors or 'empty'}>"


class Session:
    """One client's read-your-writes context.

    Pass it to ``execute(sql, session=...)`` on an
    :class:`~repro.cache.mtcache.MTCache`, a
    :class:`~repro.fleet.fleet.CacheFleet` or its router:

    * DML advances the session — the cache stamps the commit floor with
      the transaction id the back-end reports per replication source;
    * reads of *strict* tables consult the floor — the currency guard
      serves locally only once the region's agents have applied the
      session's own commits, falling back to the back-end otherwise.

    The session object is the token's home: ``session.token`` snapshots
    the current floors for transport, ``Session.from_token`` (or
    :meth:`observe_token`) resumes them elsewhere.
    """

    __slots__ = ("name", "floors", "writes")

    def __init__(self, name="session", token=None):
        self.name = name
        self.floors = dict(token.floors) if token is not None else {}
        #: Number of DML statements this session has committed.
        self.writes = 0

    @classmethod
    def from_token(cls, token, name="session"):
        """Resume a session from a (possibly deserialized) token."""
        if isinstance(token, dict):
            token = SessionToken.from_dict(token)
        return cls(name=name, token=token)

    # ------------------------------------------------------------------
    # Advancing (the cache's DML path calls this)
    # ------------------------------------------------------------------
    def observe_commit(self, commits):
        """Raise the floors with one commit's ``(source, txn_id)`` pairs."""
        self.writes += 1
        for source, txn_id in commits:
            if txn_id > self.floors.get(source, 0):
                self.floors[source] = txn_id

    def observe_token(self, token):
        """Merge another token's guarantees into this session."""
        if isinstance(token, dict):
            token = SessionToken.from_dict(token)
        for source, txn_id in token.floors.items():
            if txn_id > self.floors.get(source, 0):
                self.floors[source] = txn_id

    # ------------------------------------------------------------------
    # Reading (currency guards call this)
    # ------------------------------------------------------------------
    def floor_for(self, source):
        """The commit floor for one replication source (0: no writes
        there — any replica state satisfies the session)."""
        return self.floors.get(source, 0)

    def covers(self, source, applied):
        """Does ``applied`` transactions of progress on ``source``
        satisfy this session's floor there?

        This is the one comparison read-your-writes reduces to — for a
        cache agent's ``applied_txn``, and equally for a just-promoted
        shard primary's applied progress: a floor read during a failover
        window must block until the promotion covers it.
        """
        return (applied or 0) >= self.floor_for(source)

    @property
    def token(self):
        """A portable snapshot of the current floors."""
        return SessionToken(self.floors)

    def __repr__(self):
        floors = ", ".join(f"{s}>={t}" for s, t in sorted(self.floors.items()))
        return f"<Session {self.name} writes={self.writes} {floors or 'no floors'}>"
