"""Session guarantees over the cache tier: read-your-writes tokens.

The paper's C&C model relaxes *currency* — a query may read data up to B
seconds stale — but says nothing about a client that just wrote.  This
package adds the missing session layer: a :class:`Session` travels with a
client's statements, observes the transaction id of every commit its DML
produced, and carries that knowledge as a portable
:class:`SessionToken` — a per-replication-source commit floor ("my reads
must see my own commit >= txn T").  Currency guards on *strict* tables
compare the floor against their region's replication progress and fall
back to the back-end exactly when the local replica has not yet applied
the session's own writes.

Floors are keyed by replication-source *name* — ``"backend"`` on a
single server, ``"p0"``/``"p1"``/... per partition on a sharded one —
the same names agent checkpoint keys embed (``cid#p<shard>``), so a
token is meaningful on every fleet node and composes with sharding: a
write that only touched partition 1 never forces partition 0 reads
remote.
"""

from repro.session.session import Session, SessionToken

__all__ = ["Session", "SessionToken"]
