"""Physical operators.

Every operator follows the classic iterator protocol, split into explicit
phases so the executor can time them (the paper's Table 4.5 profiles
*setup plan*, *run plan* and *shutdown plan*):

* ``open(ctx, outer_env=None)`` — bind resources, evaluate SwitchUnion
  selectors, issue remote queries;
* ``rows()`` — a generator producing result tuples;
* ``close()`` — release state.

Operators expose ``output`` — a :class:`~repro.engine.expressions.RowBinding`
describing their result columns — which parent operators use to compile
expressions at plan-build time.
"""

from repro.common.errors import ExecutionError
from repro.engine.expressions import make_env


class PhysicalOperator:
    """Base class for all physical operators."""

    #: RowBinding of the produced rows; set by subclasses.
    output = None

    def open(self, ctx, outer_env=None):
        raise NotImplementedError

    def rows(self):
        raise NotImplementedError

    def close(self):
        pass

    # -- introspection -------------------------------------------------
    def children(self):
        return ()

    def explain(self, depth=0):
        """Render the operator tree as an indented string."""
        line = "  " * depth + self.describe()
        parts = [line]
        for child in self.children():
            parts.append(child.explain(depth + 1))
        return "\n".join(parts)

    def describe(self):
        return type(self).__name__

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


class SeqScan(PhysicalOperator):
    """Full scan of a heap table (base table or local materialized view)."""

    def __init__(self, table, output, predicate=None):
        self.table = table
        self.output = output
        self.predicate = predicate  # compiled fn(env) or None
        self._outer_env = None

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env

    def rows(self):
        predicate = self.predicate
        outer = self._outer_env
        if predicate is None:
            for _, values in self.table.scan():
                yield values
        else:
            for _, values in self.table.scan():
                if predicate(make_env(values, outer)) is True:
                    yield values

    def describe(self):
        return f"SeqScan({self.table.name})"


class IndexSeek(PhysicalOperator):
    """Point lookup: equality on an index key prefix, optional residual."""

    def __init__(self, table, index, key_fns, output, predicate=None):
        self.table = table
        self.index = index
        self.key_fns = list(key_fns)  # fn(env of outer) -> key component
        self.output = output
        self.predicate = predicate
        self._outer_env = None

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env

    def rows(self):
        outer = self._outer_env
        env = make_env((), outer)
        key = tuple(fn(env) for fn in self.key_fns)
        if len(key) == len(self.index.key_positions):
            rid_iter = self.index.seek(key)
        else:
            rid_iter = (rid for _, rid in self.index.range(low=key, high=key))
        for rid in rid_iter:
            values = self.table.row(rid)
            if self.predicate is None or self.predicate(make_env(values, outer)) is True:
                yield values

    def describe(self):
        return f"IndexSeek({self.table.name}.{self.index.name})"


class IndexRangeScan(PhysicalOperator):
    """Range scan low <= key <= high over an index prefix."""

    def __init__(
        self,
        table,
        index,
        output,
        low=None,
        high=None,
        low_inclusive=True,
        high_inclusive=True,
        predicate=None,
    ):
        self.table = table
        self.index = index
        self.output = output
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.predicate = predicate
        self._outer_env = None

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env

    def rows(self):
        outer = self._outer_env
        for _, rid in self.index.range(
            low=self.low,
            high=self.high,
            low_inclusive=self.low_inclusive,
            high_inclusive=self.high_inclusive,
        ):
            values = self.table.row(rid)
            if self.predicate is None or self.predicate(make_env(values, outer)) is True:
                yield values

    def describe(self):
        return (
            f"IndexRangeScan({self.table.name}.{self.index.name} "
            f"[{self.low}..{self.high}])"
        )


class Filter(PhysicalOperator):
    def __init__(self, child, predicate, output=None):
        self.child = child
        self.predicate = predicate
        self.output = output or child.output
        self._outer_env = None

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.child.open(ctx, outer_env)

    def rows(self):
        predicate = self.predicate
        outer = self._outer_env
        for row in self.child.rows():
            if predicate(make_env(row, outer)) is True:
                yield row

    def close(self):
        self.child.close()

    def describe(self):
        return "Filter"


class Project(PhysicalOperator):
    def __init__(self, child, exprs, output):
        self.child = child
        self.exprs = list(exprs)  # compiled fns
        self.output = output
        self._outer_env = None

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.child.open(ctx, outer_env)

    def rows(self):
        exprs = self.exprs
        outer = self._outer_env
        for row in self.child.rows():
            env = make_env(row, outer)
            yield tuple(fn(env) for fn in exprs)

    def close(self):
        self.child.close()

    def describe(self):
        return f"Project({self.output.columns})"


class HashJoin(PhysicalOperator):
    """Equality hash join; the right child is the build side."""

    def __init__(self, left, right, left_key_fns, right_key_fns, output, residual=None):
        self.left = left
        self.right = right
        self.left_key_fns = list(left_key_fns)
        self.right_key_fns = list(right_key_fns)
        self.output = output
        self.residual = residual
        self._outer_env = None
        self._hash_table = None

    def children(self):
        return (self.left, self.right)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.left.open(ctx, outer_env)
        self.right.open(ctx, outer_env)
        self._hash_table = {}
        for row in self.right.rows():
            env = make_env(row, outer_env)
            key = tuple(fn(env) for fn in self.right_key_fns)
            if any(k is None for k in key):
                continue
            self._hash_table.setdefault(key, []).append(row)

    def rows(self):
        outer = self._outer_env
        table = self._hash_table
        residual = self.residual
        for left_row in self.left.rows():
            env = make_env(left_row, outer)
            key = tuple(fn(env) for fn in self.left_key_fns)
            if any(k is None for k in key):
                continue
            for right_row in table.get(key, ()):
                combined = left_row + right_row
                if residual is None or residual(make_env(combined, outer)) is True:
                    yield combined

    def close(self):
        self._hash_table = None
        self.left.close()
        self.right.close()

    def describe(self):
        return "HashJoin"


class MergeJoin(PhysicalOperator):
    """Equality merge join; both children must deliver key-sorted rows."""

    def __init__(self, left, right, left_key_fns, right_key_fns, output, residual=None):
        self.left = left
        self.right = right
        self.left_key_fns = list(left_key_fns)
        self.right_key_fns = list(right_key_fns)
        self.output = output
        self.residual = residual
        self._outer_env = None

    def children(self):
        return (self.left, self.right)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.left.open(ctx, outer_env)
        self.right.open(ctx, outer_env)

    def _key(self, fns, row):
        env = make_env(row, self._outer_env)
        return tuple(fn(env) for fn in fns)

    def rows(self):
        outer = self._outer_env
        residual = self.residual
        left_iter = iter(self.left.rows())
        right_iter = iter(self.right.rows())
        left_row = next(left_iter, None)
        right_row = next(right_iter, None)
        while left_row is not None and right_row is not None:
            lk = self._key(self.left_key_fns, left_row)
            rk = self._key(self.right_key_fns, right_row)
            if None in lk or lk < rk:
                left_row = next(left_iter, None)
            elif None in rk or rk < lk:
                right_row = next(right_iter, None)
            else:
                # Gather the full duplicate block on the right.
                block = [right_row]
                right_row = next(right_iter, None)
                while right_row is not None and self._key(self.right_key_fns, right_row) == lk:
                    block.append(right_row)
                    right_row = next(right_iter, None)
                while left_row is not None and self._key(self.left_key_fns, left_row) == lk:
                    for r in block:
                        combined = left_row + r
                        if residual is None or residual(make_env(combined, outer)) is True:
                            yield combined
                    left_row = next(left_iter, None)

    def close(self):
        self.left.close()
        self.right.close()

    def describe(self):
        return "MergeJoin"


class HashSemiJoin(PhysicalOperator):
    """Semi join: emit each left row with at least one key match on the
    right (SQL ``x IN (SELECT …)`` semantics for non-null keys).

    Output rows are the *left* rows unchanged — the right side only
    filters.  Null keys never match, per SQL's three-valued IN.
    """

    def __init__(self, left, right, left_key_fns, right_key_fns, output=None):
        self.left = left
        self.right = right
        self.left_key_fns = list(left_key_fns)
        self.right_key_fns = list(right_key_fns)
        self.output = output or left.output
        self._outer_env = None
        self._keys = None

    def children(self):
        return (self.left, self.right)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.left.open(ctx, outer_env)
        self.right.open(ctx, outer_env)
        self._keys = set()
        for row in self.right.rows():
            env = make_env(row, outer_env)
            key = tuple(fn(env) for fn in self.right_key_fns)
            if any(k is None for k in key):
                continue
            self._keys.add(key)

    def rows(self):
        keys = self._keys
        outer = self._outer_env
        for row in self.left.rows():
            env = make_env(row, outer)
            key = tuple(fn(env) for fn in self.left_key_fns)
            if any(k is None for k in key):
                continue
            if key in keys:
                yield row

    def close(self):
        self._keys = None
        self.left.close()
        self.right.close()

    def describe(self):
        return "HashSemiJoin"


class HashAntiJoin(PhysicalOperator):
    """Anti join: emit each left row with *no* key match on the right —
    SQL ``x NOT IN (SELECT …)`` semantics, including the NULL trap: if the
    right side produced any NULL key, no row qualifies (the comparison is
    unknown for every row), and left rows with NULL keys never qualify.
    """

    def __init__(self, left, right, left_key_fns, right_key_fns, output=None):
        self.left = left
        self.right = right
        self.left_key_fns = list(left_key_fns)
        self.right_key_fns = list(right_key_fns)
        self.output = output or left.output
        self._outer_env = None
        self._keys = None
        self._right_had_null = False

    def children(self):
        return (self.left, self.right)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.left.open(ctx, outer_env)
        self.right.open(ctx, outer_env)
        self._keys = set()
        self._right_had_null = False
        for row in self.right.rows():
            env = make_env(row, outer_env)
            key = tuple(fn(env) for fn in self.right_key_fns)
            if any(k is None for k in key):
                self._right_had_null = True
            else:
                self._keys.add(key)

    def rows(self):
        if self._right_had_null:
            return
        keys = self._keys
        outer = self._outer_env
        for row in self.left.rows():
            env = make_env(row, outer)
            key = tuple(fn(env) for fn in self.left_key_fns)
            if any(k is None for k in key):
                continue
            if key not in keys:
                yield row

    def close(self):
        self._keys = None
        self.left.close()
        self.right.close()

    def describe(self):
        return "HashAntiJoin"


class IndexNLJoin(PhysicalOperator):
    """Index nested-loops join: for each outer row, seek the inner index.

    The inner side is an operator subtree (usually an IndexSeek) whose key
    functions reference the outer row through the correlated environment.
    """

    def __init__(self, outer, inner, output, residual=None):
        self.outer = outer
        self.inner = inner
        self.output = output
        self.residual = residual
        self._ctx = None
        self._outer_env = None

    def children(self):
        return (self.outer, self.inner)

    def open(self, ctx, outer_env=None):
        self._ctx = ctx
        self._outer_env = outer_env
        self.outer.open(ctx, outer_env)

    def rows(self):
        ctx = self._ctx
        residual = self.residual
        for outer_row in self.outer.rows():
            env = make_env(outer_row, self._outer_env)
            self.inner.open(ctx, env)
            try:
                for inner_row in self.inner.rows():
                    combined = outer_row + inner_row
                    if residual is None or residual(make_env(combined, self._outer_env)) is True:
                        yield combined
            finally:
                self.inner.close()

    def close(self):
        self.outer.close()

    def describe(self):
        return "IndexNLJoin"


class Sort(PhysicalOperator):
    """Full in-memory sort."""

    def __init__(self, child, key_fns, descending, output=None):
        self.child = child
        self.key_fns = list(key_fns)
        self.descending = list(descending)
        self.output = output or child.output
        self._outer_env = None

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.child.open(ctx, outer_env)

    def rows(self):
        outer = self._outer_env

        def sort_key(row):
            env = make_env(row, outer)
            return tuple(fn(env) for fn in self.key_fns)

        buffered = list(self.child.rows())
        # Stable multi-key sort with mixed ASC/DESC: sort by each key from
        # the least significant to the most significant.
        for pos in range(len(self.key_fns) - 1, -1, -1):
            fn = self.key_fns[pos]
            desc = self.descending[pos]

            def one_key(row, fn=fn):
                env = make_env(row, outer)
                v = fn(env)
                # Sort NULLs first (before any value).
                return (v is not None, v)

            buffered.sort(key=one_key, reverse=desc)
        return iter(buffered)

    def close(self):
        self.child.close()

    def describe(self):
        return "Sort"


class _Accumulator:
    """State for one aggregate function over one group."""

    __slots__ = ("func", "count", "total", "best", "seen")

    def __init__(self, func):
        self.func = func
        self.count = 0
        self.total = None
        self.best = None
        self.seen = False

    def add(self, value):
        if self.func == "count":
            # COUNT(expr) counts non-null; COUNT(*) is passed a sentinel.
            if value is not None:
                self.count += 1
            return
        if value is None:
            return
        self.seen = True
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
            self.count += 1
        elif self.func == "min":
            self.best = value if self.best is None else min(self.best, value)
        elif self.func == "max":
            self.best = value if self.best is None else max(self.best, value)

    def result(self):
        if self.func == "count":
            return self.count
        if not self.seen:
            return None
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count
        return self.best


class AggregateSpec:
    """One aggregate in the select list: func name + argument evaluator.

    ``arg_fn`` is None for COUNT(*).
    """

    __slots__ = ("func", "arg_fn")

    def __init__(self, func, arg_fn=None):
        self.func = func
        self.arg_fn = arg_fn


class HashAggregate(PhysicalOperator):
    """Hash grouping with the standard SQL aggregates.

    Output rows are ``group_values + aggregate_values``.  With no grouping
    expressions a single row is produced even for empty input (SQL scalar
    aggregate semantics).
    """

    def __init__(self, child, group_fns, agg_specs, output, having=None):
        self.child = child
        self.group_fns = list(group_fns)
        self.agg_specs = list(agg_specs)
        self.output = output
        self.having = having
        self._outer_env = None

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.child.open(ctx, outer_env)

    def rows(self):
        outer = self._outer_env
        groups = {}
        for row in self.child.rows():
            env = make_env(row, outer)
            key = tuple(fn(env) for fn in self.group_fns)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(s.func) for s in self.agg_specs]
                groups[key] = accs
            for spec, acc in zip(self.agg_specs, accs):
                value = 1 if spec.arg_fn is None else spec.arg_fn(env)
                acc.add(value)
        if not groups and not self.group_fns:
            groups[()] = [_Accumulator(s.func) for s in self.agg_specs]
        having = self.having
        for key, accs in groups.items():
            out = key + tuple(acc.result() for acc in accs)
            if having is None or having(make_env(out, outer)) is True:
                yield out

    def close(self):
        self.child.close()

    def describe(self):
        names = [s.func for s in self.agg_specs]
        return f"HashAggregate(groups={len(self.group_fns)}, aggs={names})"


class Distinct(PhysicalOperator):
    def __init__(self, child):
        self.child = child
        self.output = child.output

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self.child.open(ctx, outer_env)

    def rows(self):
        seen = set()
        for row in self.child.rows():
            if row not in seen:
                seen.add(row)
                yield row

    def close(self):
        self.child.close()

    def describe(self):
        return "Distinct"


class Limit(PhysicalOperator):
    def __init__(self, child, limit):
        self.child = child
        self.limit = limit
        self.output = child.output

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self.child.open(ctx, outer_env)

    def rows(self):
        remaining = self.limit
        if remaining <= 0:
            return
        for row in self.child.rows():
            yield row
            remaining -= 1
            if remaining == 0:
                return

    def close(self):
        self.child.close()

    def describe(self):
        return f"Limit({self.limit})"


class Materialized(PhysicalOperator):
    """A buffered row set used as a plan source (derived tables, tests)."""

    def __init__(self, rows, output):
        self._rows = list(rows)
        self.output = output

    def open(self, ctx, outer_env=None):
        pass

    def rows(self):
        return iter(self._rows)

    def describe(self):
        return f"Materialized({len(self._rows)} rows)"


class SwitchUnion(PhysicalOperator):
    """The paper's SwitchUnion: N inputs plus a selector expression.

    At open time the selector picks exactly one input; the others are never
    touched.  MTCache uses two-input SwitchUnions whose selector is a
    *currency guard* over the local heartbeat table: input 0 is the local
    (view) branch, input 1 the remote fallback.
    """

    def __init__(self, inputs, selector, output, label=""):
        if not inputs:
            raise ExecutionError("SwitchUnion needs at least one input")
        self.inputs = list(inputs)
        self.selector = selector  # fn(ctx) -> int in [0, len(inputs))
        self.output = output
        self.label = label
        self.chosen = None
        #: The most recent selector decision; survives close() so callers
        #: (e.g. the semantics checker) can inspect which branch ran.
        self.last_chosen = None

    def children(self):
        return tuple(self.inputs)

    def open(self, ctx, outer_env=None):
        index = self.selector(ctx)
        if not 0 <= index < len(self.inputs):
            raise ExecutionError(f"SwitchUnion selector returned {index}")
        self.chosen = index
        self.last_chosen = index
        ctx.record_branch(self.label or "switchunion", index)
        self.inputs[index].open(ctx, outer_env)

    def rows(self):
        return self.inputs[self.chosen].rows()

    def close(self):
        if self.chosen is not None:
            self.inputs[self.chosen].close()
            self.chosen = None

    def describe(self):
        return f"SwitchUnion({self.label})"


class RemoteQuery(PhysicalOperator):
    """Ship a SQL query to the back-end server and stream its result.

    ``remote_executor`` is a callable ``(sql) -> (rows, n_cols)`` provided
    by the cache's connection to the back-end.  The query is issued during
    ``open`` (binding phase), mirroring the paper's observation that remote
    binding makes plan setup more expensive.
    """

    def __init__(self, sql, output, remote_executor):
        self.sql = sql
        self.output = output
        self.remote_executor = remote_executor
        self._buffered = None

    def open(self, ctx, outer_env=None):
        rows = self.remote_executor(self.sql)
        self._buffered = rows
        ctx.record_remote_query(self.sql, len(rows))

    def rows(self):
        return iter(self._buffered)

    def close(self):
        self._buffered = None

    def describe(self):
        return f"RemoteQuery({self.sql})"
