"""Physical operators.

Every operator follows the classic iterator protocol, split into explicit
phases so the executor can time them (the paper's Table 4.5 profiles
*setup plan*, *run plan* and *shutdown plan*):

* ``open(ctx, outer_env=None)`` — bind resources, evaluate SwitchUnion
  selectors, issue remote queries;
* ``rows()`` — a generator producing result tuples (row-at-a-time);
* ``batches(size)`` — a generator producing *chunks* (lists of tuples,
  target size ~256), the batch-at-a-time protocol the executor drives;
* ``close()`` — release state.

Batch execution is the primary path: operators that can, exchange chunks
and evaluate expressions in *row mode* (position-resolved closures over
bare tuples, no per-row environment allocation — see
:mod:`repro.engine.expressions`).  The scan operators fuse scan + filter
into a single loop when the predicate is non-correlated, and
:class:`Project` collapses to tuple re-ordering when every output is a
plain column.  ``rows()`` remains fully supported on every operator — the
correlated paths (IndexNLJoin inners, subquery runners) and the
``batch_size=1`` debugging mode still speak it; the base class bridges
each protocol to the other so the two engines always agree.

Operators expose ``output`` — a :class:`~repro.engine.expressions.RowBinding`
describing their result columns — which parent operators use to compile
expressions at plan-build time.
"""

from itertools import islice
from operator import itemgetter

from repro.common.errors import ExecutionError
from repro.engine.columnar import ColumnBatch, column_store
from repro.engine.expressions import make_env, row_fn_of, row_fns_of
from repro.engine.ir import selection_fn

#: Target chunk size of the batch protocol.  Large enough to amortize
#: per-batch dispatch, small enough to stay cache-resident.
DEFAULT_BATCH_SIZE = 256

#: The three execution engines, by exchange format: row tuples, row-tuple
#: chunks, and :class:`~repro.engine.columnar.ColumnBatch`.
ENGINES = ("row", "batch", "columnar")

#: Shared rowless environment for evaluating uncorrelated key expressions
#: (expressions only ever read an env, so one instance serves all opens).
_EMPTY_ENV = make_env(())


def coerce_batch_size(value):
    """Validate a batch-size knob: an integer >= 1 (1 = legacy row path)."""
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValueError(
            f"invalid batch_size: {value!r} (expected an integer >= 1; "
            f"1 selects the legacy row-at-a-time engine)"
        )
    return value


def coerce_engine(engine, batch_size=DEFAULT_BATCH_SIZE):
    """Resolve the engine knob: None picks columnar (or row when
    ``batch_size=1``); an explicit name is validated, with ``batch_size=1``
    always forcing the row engine (a 1-row batch is just a slower row)."""
    if engine is None:
        return "row" if batch_size == 1 else "columnar"
    name = str(engine).lower()
    if name not in ENGINES:
        raise ValueError(
            f"invalid engine: {engine!r} (expected one of: {', '.join(ENGINES)})"
        )
    return "row" if batch_size == 1 else name


class PhysicalOperator:
    """Base class for all physical operators."""

    #: RowBinding of the produced rows; set by subclasses.
    output = None

    #: Plan-time estimates stamped by the optimizer (Candidate.operator()
    #: and the finishing builds) for EXPLAIN ANALYZE's estimate-vs-actual
    #: comparison; None on trees built outside the optimizer.
    est_rows = None
    est_cost = None

    def open(self, ctx, outer_env=None):
        raise NotImplementedError

    def rows(self):
        raise NotImplementedError

    def batches(self, size=DEFAULT_BATCH_SIZE):
        """Produce result rows in chunks (lists) of up to ``size`` rows.

        Compatibility default: chunk the ``rows()`` stream.  Batch-native
        operators override this with chunk-at-a-time pipelines.
        """
        it = iter(self.rows())
        while True:
            chunk = list(islice(it, size))
            if not chunk:
                return
            yield chunk

    def col_batches(self, size=DEFAULT_BATCH_SIZE):
        """Produce result rows as :class:`ColumnBatch`es.

        Compatibility default: columnarize the ``batches()`` chunks (each
        batch remembers its source rows, so a downstream ``to_rows()`` is
        free).  Columnar-native operators — scans, filters, positional
        projections — override this with per-column pipelines.
        """
        width = len(self.output) if self.output is not None else 0
        for chunk in self.batches(size):
            yield ColumnBatch.from_rows(chunk, width)

    def all_rows(self, size=DEFAULT_BATCH_SIZE):
        """Materialize the whole result as one list of row tuples.

        The executor drives this instead of ``batches()`` when the plan's
        estimated cardinality is tiny (guarded point lookups — the cache's
        hottest request): one list in, one list out, zero generator frames
        on the hot path.  The default drains ``batches()``; operators on
        the point-lookup spine override it with direct list builds.
        """
        out = []
        for chunk in self.batches(size):
            out.extend(chunk)
        return out

    def close(self):
        pass

    # -- helpers for batch-native subclasses ---------------------------
    #: Cached describe() string used as the fused-pipeline label; built on
    #: first use so reused operator trees pay the formatting only once.
    _fused_label = None

    def _record_fused(self, ctx):
        if ctx is not None:
            label = self._fused_label
            if label is None:
                label = self._fused_label = self.describe()
            ctx.record_fused(label)

    # -- introspection -------------------------------------------------
    def children(self):
        return ()

    def explain(self, depth=0):
        """Render the operator tree as an indented string."""
        line = "  " * depth + self.describe()
        parts = [line]
        for child in self.children():
            parts.append(child.explain(depth + 1))
        return "\n".join(parts)

    def describe(self):
        return type(self).__name__

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


def _chunked(iterable, size):
    """Yield lists of up to ``size`` items."""
    it = iter(iterable)
    while True:
        chunk = list(islice(it, size))
        if not chunk:
            return
        yield chunk


class SeqScan(PhysicalOperator):
    """Full scan of a heap table (base table or local materialized view).

    In batch mode the scan and its predicate fuse into one loop: when the
    predicate is non-correlated it runs in row mode over the stored tuples
    directly, so a filtered scan allocates nothing per row.
    """

    def __init__(self, table, output, predicate=None):
        self.table = table
        self.output = output
        self.predicate = predicate  # compiled fn(env) or None
        self._outer_env = None
        self._ctx = None

    def open(self, ctx, outer_env=None):
        self._ctx = ctx
        self._outer_env = outer_env

    def rows(self):
        predicate = self.predicate
        outer = self._outer_env
        if predicate is None:
            for _, values in self.table.scan():
                yield values
            return
        row_pred = row_fn_of(predicate)
        if row_pred is not None:
            for _, values in self.table.scan():
                if row_pred(values) is True:
                    yield values
        else:
            for _, values in self.table.scan():
                if predicate(make_env(values, outer)) is True:
                    yield values

    def batches(self, size=DEFAULT_BATCH_SIZE):
        predicate = self.predicate
        scan = self.table.scan()
        if predicate is None:
            self._record_fused(self._ctx)
            for chunk in _chunked(scan, size):
                yield [values for _, values in chunk]
            return
        row_pred = row_fn_of(predicate)
        if row_pred is not None:
            # Fused scan+filter: one comprehension per chunk, no envs.
            self._record_fused(self._ctx)
            for chunk in _chunked(scan, size):
                out = [values for _, values in chunk if row_pred(values) is True]
                if out:
                    yield out
            return
        outer = self._outer_env
        for chunk in _chunked(scan, size):
            out = [
                values
                for _, values in chunk
                if predicate(make_env(values, outer)) is True
            ]
            if out:
                yield out

    def col_batches(self, size=DEFAULT_BATCH_SIZE):
        """Zero-copy columnar scan: one batch referencing the table's
        column store, with the (IR-compiled) predicate collapsed into a
        selection vector.  Predicates without a columnar kernel fall back
        to the row pipeline."""
        predicate = self.predicate
        store = column_store(self.table)
        if predicate is None:
            self._record_fused(self._ctx)
            return [store] if store.length else []
        sel_fn = selection_fn(getattr(predicate, "ir", None))
        if sel_fn is None:
            return PhysicalOperator.col_batches(self, size)
        self._record_fused(self._ctx)
        if not store.length:
            return []
        sel = sel_fn(store.columns, None, store.length)
        if not sel:
            return []
        return [ColumnBatch(store.columns, store.length, sel)]

    def describe(self):
        return f"SeqScan({self.table.name})"


class IndexSeek(PhysicalOperator):
    """Point lookup: equality on an index key prefix, optional residual.

    Key evaluation is hoisted to ``open()`` — the key cannot change within
    one execution, so re-deriving it per ``rows()`` call (as the row engine
    once did) only burned allocations on the hottest lookup path.
    """

    def __init__(self, table, index, key_fns, output, predicate=None):
        self.table = table
        self.index = index
        self.key_fns = list(key_fns)  # fn(env of outer) -> key component
        self.output = output
        self.predicate = predicate
        self._outer_env = None
        self._ctx = None
        self._key = None
        # Single-component keys (the common point lookup) skip the
        # key-tuple genexpr at open().
        self._single_key_fn = self.key_fns[0] if len(self.key_fns) == 1 else None

    def open(self, ctx, outer_env=None):
        self._ctx = ctx
        self._outer_env = outer_env
        env = _EMPTY_ENV if outer_env is None else make_env((), outer_env)
        single = self._single_key_fn
        if single is not None:
            self._key = (single(env),)
        else:
            self._key = tuple([fn(env) for fn in self.key_fns])

    def _rid_iter(self):
        key = self._key
        if len(key) == len(self.index.key_positions):
            return self.index.seek(key)
        return (rid for _, rid in self.index.range(low=key, high=key))

    def _rid_list(self):
        key = self._key
        index = self.index
        if len(key) == len(index.key_positions):
            return index.seek_list(key)
        return [rid for _, rid in index.range(low=key, high=key)]

    def rows(self):
        predicate = self.predicate
        outer = self._outer_env
        table_row = self.table.row
        if predicate is None:
            for rid in self._rid_iter():
                yield table_row(rid)
            return
        row_pred = row_fn_of(predicate)
        if row_pred is not None:
            for rid in self._rid_iter():
                values = table_row(rid)
                if row_pred(values) is True:
                    yield values
        else:
            for rid in self._rid_iter():
                values = table_row(rid)
                if predicate(make_env(values, outer)) is True:
                    yield values

    def batches(self, size=DEFAULT_BATCH_SIZE):
        # Equality-seek result sets are small (bounded by one key's
        # duplicates), so materialize the whole fused lookup at once —
        # the hottest batch pipeline there is (guarded point lookups).
        predicate = self.predicate
        table_row = self.table.row
        if predicate is None:
            self._record_fused(self._ctx)
            out = [table_row(rid) for rid in self._rid_iter()]
        else:
            row_pred = row_fn_of(predicate)
            if row_pred is None:
                yield from _chunked(self.rows(), size)
                return
            self._record_fused(self._ctx)
            out = [
                values
                for values in map(table_row, self._rid_iter())
                if row_pred(values) is True
            ]
        for start in range(0, len(out), size):
            yield out[start:start + size]

    def all_rows(self, size=DEFAULT_BATCH_SIZE):
        predicate = self.predicate
        table_row = self.table.row
        if predicate is None:
            self._record_fused(self._ctx)
            return list(map(table_row, self._rid_list()))
        row_pred = row_fn_of(predicate)
        if row_pred is None:
            return list(self.rows())
        self._record_fused(self._ctx)
        return [
            values
            for values in map(table_row, self._rid_list())
            if row_pred(values) is True
        ]

    def describe(self):
        return f"IndexSeek({self.table.name}.{self.index.name})"


class IndexRangeScan(PhysicalOperator):
    """Range scan low <= key <= high over an index prefix."""

    def __init__(
        self,
        table,
        index,
        output,
        low=None,
        high=None,
        low_inclusive=True,
        high_inclusive=True,
        predicate=None,
    ):
        self.table = table
        self.index = index
        self.output = output
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.predicate = predicate
        self._outer_env = None
        self._ctx = None

    def open(self, ctx, outer_env=None):
        self._ctx = ctx
        self._outer_env = outer_env

    def _range(self):
        return self.index.range(
            low=self.low,
            high=self.high,
            low_inclusive=self.low_inclusive,
            high_inclusive=self.high_inclusive,
        )

    def rows(self):
        predicate = self.predicate
        outer = self._outer_env
        table_row = self.table.row
        if predicate is None:
            for _, rid in self._range():
                yield table_row(rid)
            return
        row_pred = row_fn_of(predicate)
        if row_pred is not None:
            for _, rid in self._range():
                values = table_row(rid)
                if row_pred(values) is True:
                    yield values
        else:
            for _, rid in self._range():
                values = table_row(rid)
                if predicate(make_env(values, outer)) is True:
                    yield values

    def batches(self, size=DEFAULT_BATCH_SIZE):
        predicate = self.predicate
        table_row = self.table.row
        if predicate is None:
            self._record_fused(self._ctx)
            for chunk in _chunked(self._range(), size):
                yield [table_row(rid) for _, rid in chunk]
            return
        row_pred = row_fn_of(predicate)
        if row_pred is not None:
            self._record_fused(self._ctx)
            for chunk in _chunked(self._range(), size):
                out = [
                    values
                    for values in (table_row(rid) for _, rid in chunk)
                    if row_pred(values) is True
                ]
                if out:
                    yield out
            return
        yield from _chunked(self.rows(), size)

    def describe(self):
        return (
            f"IndexRangeScan({self.table.name}.{self.index.name} "
            f"[{self.low}..{self.high}])"
        )


class Filter(PhysicalOperator):
    def __init__(self, child, predicate, output=None):
        self.child = child
        self.predicate = predicate
        self.output = output or child.output
        self._outer_env = None
        self._ctx = None

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self._ctx = ctx
        self._outer_env = outer_env
        self.child.open(ctx, outer_env)

    def rows(self):
        predicate = self.predicate
        row_pred = row_fn_of(predicate)
        if row_pred is not None:
            for row in self.child.rows():
                if row_pred(row) is True:
                    yield row
            return
        outer = self._outer_env
        for row in self.child.rows():
            if predicate(make_env(row, outer)) is True:
                yield row

    def batches(self, size=DEFAULT_BATCH_SIZE):
        predicate = self.predicate
        row_pred = row_fn_of(predicate)
        if row_pred is not None:
            self._record_fused(self._ctx)
            for chunk in self.child.batches(size):
                out = [row for row in chunk if row_pred(row) is True]
                if out:
                    yield out
            return
        outer = self._outer_env
        for chunk in self.child.batches(size):
            out = [row for row in chunk if predicate(make_env(row, outer)) is True]
            if out:
                yield out

    def all_rows(self, size=DEFAULT_BATCH_SIZE):
        predicate = self.predicate
        row_pred = row_fn_of(predicate)
        if row_pred is not None:
            self._record_fused(self._ctx)
            return [
                row for row in self.child.all_rows(size) if row_pred(row) is True
            ]
        outer = self._outer_env
        return [
            row
            for row in self.child.all_rows(size)
            if predicate(make_env(row, outer)) is True
        ]

    def col_batches(self, size=DEFAULT_BATCH_SIZE):
        """Columnar filter: shrink the selection vector in place (no row
        materialization).  Predicates without a columnar kernel apply
        their row form to the live rows of each incoming batch."""
        sel_fn = selection_fn(getattr(self.predicate, "ir", None))
        if sel_fn is not None:
            self._record_fused(self._ctx)
            for batch in self.child.col_batches(size):
                sel = sel_fn(batch.columns, batch.sel, batch.length)
                if sel:
                    yield ColumnBatch(batch.columns, batch.length, sel)
            return
        row_pred = row_fn_of(self.predicate)
        if row_pred is not None:
            width = len(self.output)
            for batch in self.child.col_batches(size):
                out = [row for row in batch.to_rows() if row_pred(row) is True]
                if out:
                    yield ColumnBatch.from_rows(out, width)
            return
        yield from PhysicalOperator.col_batches(self, size)

    def close(self):
        self.child.close()

    def describe(self):
        return "Filter"


class Project(PhysicalOperator):
    """Projection.

    Batch fast paths, in decreasing order of specialization: when every
    output expression is a plain local column the projection is pure tuple
    re-ordering; when all expressions are row-mode it evaluates them over
    the bare tuples; otherwise it falls back to per-row environments.
    """

    def __init__(self, child, exprs, output):
        self.child = child
        self.exprs = list(exprs)  # compiled fns
        self.output = output
        self._outer_env = None
        self._ctx = None
        self._row_exprs = row_fns_of(self.exprs)
        positions = [getattr(fn, "column_pos", None) for fn in self.exprs]
        self._positions = positions if all(p is not None for p in positions) else None
        # C-speed row picker for the positional case: itemgetter builds the
        # output tuple without a per-row generator frame (the all_rows fast
        # path maps it straight over the child's materialized list).
        if self._positions is None:
            self._picker = None
        elif len(self._positions) == 1:
            pos = self._positions[0]
            self._picker = lambda row, _p=pos: (row[_p],)
        else:
            self._picker = itemgetter(*self._positions)

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self._ctx = ctx
        self._outer_env = outer_env
        self.child.open(ctx, outer_env)

    def rows(self):
        row_exprs = self._row_exprs
        if row_exprs is not None:
            for row in self.child.rows():
                yield tuple(fn(row) for fn in row_exprs)
            return
        exprs = self.exprs
        outer = self._outer_env
        for row in self.child.rows():
            env = make_env(row, outer)
            yield tuple(fn(env) for fn in exprs)

    def batches(self, size=DEFAULT_BATCH_SIZE):
        positions = self._positions
        if positions is not None:
            self._record_fused(self._ctx)
            for chunk in self.child.batches(size):
                yield [tuple(row[p] for p in positions) for row in chunk]
            return
        row_exprs = self._row_exprs
        if row_exprs is not None:
            self._record_fused(self._ctx)
            for chunk in self.child.batches(size):
                yield [tuple(fn(row) for fn in row_exprs) for row in chunk]
            return
        exprs = self.exprs
        outer = self._outer_env
        for chunk in self.child.batches(size):
            out = []
            for row in chunk:
                env = make_env(row, outer)
                out.append(tuple(fn(env) for fn in exprs))
            yield out

    def col_batches(self, size=DEFAULT_BATCH_SIZE):
        """Columnar projection: pure column picking when every output is
        a plain column reference — no per-row work at all."""
        positions = self._positions
        if positions is None:
            yield from PhysicalOperator.col_batches(self, size)
            return
        self._record_fused(self._ctx)
        for batch in self.child.col_batches(size):
            yield batch.take(positions)

    def all_rows(self, size=DEFAULT_BATCH_SIZE):
        picker = self._picker
        if picker is not None:
            self._record_fused(self._ctx)
            return list(map(picker, self.child.all_rows(size)))
        row_exprs = self._row_exprs
        if row_exprs is not None:
            self._record_fused(self._ctx)
            return [
                tuple(fn(row) for fn in row_exprs)
                for row in self.child.all_rows(size)
            ]
        exprs = self.exprs
        outer = self._outer_env
        return [
            tuple(fn(make_env(row, outer)) for fn in exprs)
            for row in self.child.all_rows(size)
        ]

    def close(self):
        self.child.close()

    def describe(self):
        return f"Project({self.output.columns})"


def _key_of(fns, row_fns, row, outer):
    """Join/group key for one row: row mode when available, env otherwise."""
    if row_fns is not None:
        return tuple(fn(row) for fn in row_fns)
    env = make_env(row, outer)
    return tuple(fn(env) for fn in fns)


def _key_positions(key_fns):
    """Column positions when every key is a bare column ref, else None —
    the precondition for building/probing a hash join on key columns."""
    positions = [getattr(fn, "column_pos", None) for fn in key_fns]
    if positions and all(p is not None for p in positions):
        return positions
    return None


class HashJoin(PhysicalOperator):
    """Equality hash join; the right child is the build side."""

    def __init__(self, left, right, left_key_fns, right_key_fns, output, residual=None):
        self.left = left
        self.right = right
        self.left_key_fns = list(left_key_fns)
        self.right_key_fns = list(right_key_fns)
        self.output = output
        self.residual = residual
        self._outer_env = None
        self._hash_table = None

    def children(self):
        return (self.left, self.right)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.left.open(ctx, outer_env)
        self.right.open(ctx, outer_env)
        self._hash_table = table = {}
        key_fns = self.right_key_fns
        positions = _key_positions(key_fns)
        if positions is not None and getattr(ctx, "engine", None) == "columnar":
            # Columnar build: the join keys come straight off the key
            # columns (one zip over column buffers per batch), rows
            # materialize once for the output side.
            for batch in self.right.col_batches():
                keys = zip(*[batch.column_values(p) for p in positions])
                for row, key in zip(batch.to_rows(), keys):
                    if None in key:
                        continue
                    table.setdefault(key, []).append(row)
            return
        row_keys = row_fns_of(key_fns)
        for chunk in self.right.batches():
            for row in chunk:
                key = _key_of(key_fns, row_keys, row, outer_env)
                if any(k is None for k in key):
                    continue
                table.setdefault(key, []).append(row)

    def _probe(self, left_rows):
        outer = self._outer_env
        table = self._hash_table
        residual = self.residual
        row_residual = None if residual is None else row_fn_of(residual)
        key_fns = self.left_key_fns
        row_keys = row_fns_of(key_fns)
        for left_row in left_rows:
            key = _key_of(key_fns, row_keys, left_row, outer)
            if any(k is None for k in key):
                continue
            for right_row in table.get(key, ()):
                combined = left_row + right_row
                if residual is None:
                    yield combined
                elif row_residual is not None:
                    if row_residual(combined) is True:
                        yield combined
                elif residual(make_env(combined, outer)) is True:
                    yield combined

    def rows(self):
        return self._probe(self.left.rows())

    def batches(self, size=DEFAULT_BATCH_SIZE):
        for chunk in self.left.batches(size):
            out = list(self._probe(chunk))
            if out:
                yield out

    def col_batches(self, size=DEFAULT_BATCH_SIZE):
        """Columnar probe: per-batch key tuples zipped off the probe-side
        key columns, residual applied to the concatenated rows."""
        positions = _key_positions(self.left_key_fns)
        if positions is None:
            yield from PhysicalOperator.col_batches(self, size)
            return
        table = self._hash_table
        residual = self.residual
        row_residual = None if residual is None else row_fn_of(residual)
        outer = self._outer_env
        width = len(self.output)
        get = table.get
        for batch in self.left.col_batches(size):
            keys = zip(*[batch.column_values(p) for p in positions])
            out = []
            for left_row, key in zip(batch.to_rows(), keys):
                if None in key:
                    continue
                for right_row in get(key, ()):
                    combined = left_row + right_row
                    if residual is None:
                        out.append(combined)
                    elif row_residual is not None:
                        if row_residual(combined) is True:
                            out.append(combined)
                    elif residual(make_env(combined, outer)) is True:
                        out.append(combined)
            if out:
                yield ColumnBatch.from_rows(out, width)

    def close(self):
        self._hash_table = None
        self.left.close()
        self.right.close()

    def describe(self):
        return "HashJoin"


class MergeJoin(PhysicalOperator):
    """Equality merge join; both children must deliver key-sorted rows.

    Stays row-at-a-time internally (the pairwise advance has no batch
    advantage); the base class chunks its stream for batch parents.
    """

    def __init__(self, left, right, left_key_fns, right_key_fns, output, residual=None):
        self.left = left
        self.right = right
        self.left_key_fns = list(left_key_fns)
        self.right_key_fns = list(right_key_fns)
        self.output = output
        self.residual = residual
        self._outer_env = None

    def children(self):
        return (self.left, self.right)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.left.open(ctx, outer_env)
        self.right.open(ctx, outer_env)

    def _key(self, fns, row):
        env = make_env(row, self._outer_env)
        return tuple(fn(env) for fn in fns)

    def rows(self):
        outer = self._outer_env
        residual = self.residual
        left_iter = iter(self.left.rows())
        right_iter = iter(self.right.rows())
        left_row = next(left_iter, None)
        right_row = next(right_iter, None)
        while left_row is not None and right_row is not None:
            lk = self._key(self.left_key_fns, left_row)
            rk = self._key(self.right_key_fns, right_row)
            if None in lk or lk < rk:
                left_row = next(left_iter, None)
            elif None in rk or rk < lk:
                right_row = next(right_iter, None)
            else:
                # Gather the full duplicate block on the right.
                block = [right_row]
                right_row = next(right_iter, None)
                while right_row is not None and self._key(self.right_key_fns, right_row) == lk:
                    block.append(right_row)
                    right_row = next(right_iter, None)
                while left_row is not None and self._key(self.left_key_fns, left_row) == lk:
                    for r in block:
                        combined = left_row + r
                        if residual is None or residual(make_env(combined, outer)) is True:
                            yield combined
                    left_row = next(left_iter, None)

    def close(self):
        self.left.close()
        self.right.close()

    def describe(self):
        return "MergeJoin"


class HashSemiJoin(PhysicalOperator):
    """Semi join: emit each left row with at least one key match on the
    right (SQL ``x IN (SELECT …)`` semantics for non-null keys).

    Output rows are the *left* rows unchanged — the right side only
    filters.  Null keys never match, per SQL's three-valued IN.
    """

    def __init__(self, left, right, left_key_fns, right_key_fns, output=None):
        self.left = left
        self.right = right
        self.left_key_fns = list(left_key_fns)
        self.right_key_fns = list(right_key_fns)
        self.output = output or left.output
        self._outer_env = None
        self._keys = None

    def children(self):
        return (self.left, self.right)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.left.open(ctx, outer_env)
        self.right.open(ctx, outer_env)
        self._keys = keys = set()
        key_fns = self.right_key_fns
        positions = _key_positions(key_fns)
        if positions is not None and getattr(ctx, "engine", None) == "columnar":
            # Columnar build: only the key columns are ever touched — the
            # build side's rows are never materialized.
            for batch in self.right.col_batches():
                for key in zip(*[batch.column_values(p) for p in positions]):
                    if None not in key:
                        keys.add(key)
            return
        row_keys = row_fns_of(key_fns)
        for chunk in self.right.batches():
            for row in chunk:
                key = _key_of(key_fns, row_keys, row, outer_env)
                if any(k is None for k in key):
                    continue
                keys.add(key)

    def _filter(self, left_rows):
        keys = self._keys
        outer = self._outer_env
        key_fns = self.left_key_fns
        row_keys = row_fns_of(key_fns)
        for row in left_rows:
            key = _key_of(key_fns, row_keys, row, outer)
            if any(k is None for k in key):
                continue
            if key in keys:
                yield row

    def rows(self):
        return self._filter(self.left.rows())

    def batches(self, size=DEFAULT_BATCH_SIZE):
        for chunk in self.left.batches(size):
            out = list(self._filter(chunk))
            if out:
                yield out

    def close(self):
        self._keys = None
        self.left.close()
        self.right.close()

    def describe(self):
        return "HashSemiJoin"


class HashAntiJoin(PhysicalOperator):
    """Anti join: emit each left row with *no* key match on the right —
    SQL ``x NOT IN (SELECT …)`` semantics, including the NULL trap: if the
    right side produced any NULL key, no row qualifies (the comparison is
    unknown for every row), and left rows with NULL keys never qualify.
    """

    def __init__(self, left, right, left_key_fns, right_key_fns, output=None):
        self.left = left
        self.right = right
        self.left_key_fns = list(left_key_fns)
        self.right_key_fns = list(right_key_fns)
        self.output = output or left.output
        self._outer_env = None
        self._keys = None
        self._right_had_null = False

    def children(self):
        return (self.left, self.right)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.left.open(ctx, outer_env)
        self.right.open(ctx, outer_env)
        self._keys = keys = set()
        self._right_had_null = False
        key_fns = self.right_key_fns
        positions = _key_positions(key_fns)
        if positions is not None and getattr(ctx, "engine", None) == "columnar":
            for batch in self.right.col_batches():
                for key in zip(*[batch.column_values(p) for p in positions]):
                    if None in key:
                        self._right_had_null = True
                    else:
                        keys.add(key)
            return
        row_keys = row_fns_of(key_fns)
        for chunk in self.right.batches():
            for row in chunk:
                key = _key_of(key_fns, row_keys, row, outer_env)
                if any(k is None for k in key):
                    self._right_had_null = True
                else:
                    keys.add(key)

    def _filter(self, left_rows):
        keys = self._keys
        outer = self._outer_env
        key_fns = self.left_key_fns
        row_keys = row_fns_of(key_fns)
        for row in left_rows:
            key = _key_of(key_fns, row_keys, row, outer)
            if any(k is None for k in key):
                continue
            if key not in keys:
                yield row

    def rows(self):
        if self._right_had_null:
            return iter(())
        return self._filter(self.left.rows())

    def batches(self, size=DEFAULT_BATCH_SIZE):
        if self._right_had_null:
            return
        for chunk in self.left.batches(size):
            out = list(self._filter(chunk))
            if out:
                yield out

    def close(self):
        self._keys = None
        self.left.close()
        self.right.close()

    def describe(self):
        return "HashAntiJoin"


class IndexNLJoin(PhysicalOperator):
    """Index nested-loops join: for each outer row, seek the inner index.

    The inner side is an operator subtree (usually an IndexSeek) whose key
    functions reference the outer row through the correlated environment —
    the canonical consumer of the ``rows()`` compatibility shim; batching
    the correlated inner would only re-buffer one seek's handful of rows.
    """

    def __init__(self, outer, inner, output, residual=None):
        self.outer = outer
        self.inner = inner
        self.output = output
        self.residual = residual
        self._ctx = None
        self._outer_env = None

    def children(self):
        return (self.outer, self.inner)

    def open(self, ctx, outer_env=None):
        self._ctx = ctx
        self._outer_env = outer_env
        self.outer.open(ctx, outer_env)

    def rows(self):
        ctx = self._ctx
        residual = self.residual
        for outer_row in self.outer.rows():
            env = make_env(outer_row, self._outer_env)
            self.inner.open(ctx, env)
            try:
                for inner_row in self.inner.rows():
                    combined = outer_row + inner_row
                    if residual is None or residual(make_env(combined, self._outer_env)) is True:
                        yield combined
            finally:
                self.inner.close()

    def close(self):
        self.outer.close()

    def describe(self):
        return "IndexNLJoin"


class Sort(PhysicalOperator):
    """Full in-memory sort."""

    def __init__(self, child, key_fns, descending, output=None):
        self.child = child
        self.key_fns = list(key_fns)
        self.descending = list(descending)
        self.output = output or child.output
        self._outer_env = None

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.child.open(ctx, outer_env)

    def _sorted(self, buffered):
        outer = self._outer_env
        # Stable multi-key sort with mixed ASC/DESC: sort by each key from
        # the least significant to the most significant.
        for pos in range(len(self.key_fns) - 1, -1, -1):
            fn = self.key_fns[pos]
            desc = self.descending[pos]
            row_fn = row_fn_of(fn)
            if row_fn is not None:
                def one_key(row, fn=row_fn):
                    v = fn(row)
                    # Sort NULLs first (before any value).
                    return (v is not None, v)
            else:
                def one_key(row, fn=fn):
                    v = fn(make_env(row, outer))
                    return (v is not None, v)

            buffered.sort(key=one_key, reverse=desc)
        return buffered

    def rows(self):
        return iter(self._sorted(list(self.child.rows())))

    def batches(self, size=DEFAULT_BATCH_SIZE):
        buffered = []
        for chunk in self.child.batches(size):
            buffered.extend(chunk)
        yield from _chunked(self._sorted(buffered), size)

    def close(self):
        self.child.close()

    def describe(self):
        return "Sort"


class _Accumulator:
    """State for one aggregate function over one group."""

    __slots__ = ("func", "count", "total", "best", "seen")

    def __init__(self, func):
        self.func = func
        self.count = 0
        self.total = None
        self.best = None
        self.seen = False

    def add(self, value):
        if self.func == "count":
            # COUNT(expr) counts non-null; COUNT(*) is passed a sentinel.
            if value is not None:
                self.count += 1
            return
        if value is None:
            return
        self.seen = True
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
            self.count += 1
        elif self.func == "min":
            self.best = value if self.best is None else min(self.best, value)
        elif self.func == "max":
            self.best = value if self.best is None else max(self.best, value)

    def result(self):
        if self.func == "count":
            return self.count
        if not self.seen:
            return None
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count
        return self.best


class AggregateSpec:
    """One aggregate in the select list: func name + argument evaluator.

    ``arg_fn`` is None for COUNT(*).
    """

    __slots__ = ("func", "arg_fn")

    def __init__(self, func, arg_fn=None):
        self.func = func
        self.arg_fn = arg_fn


class HashAggregate(PhysicalOperator):
    """Hash grouping with the standard SQL aggregates.

    Output rows are ``group_values + aggregate_values``.  With no grouping
    expressions a single row is produced even for empty input (SQL scalar
    aggregate semantics).
    """

    def __init__(self, child, group_fns, agg_specs, output, having=None):
        self.child = child
        self.group_fns = list(group_fns)
        self.agg_specs = list(agg_specs)
        self.output = output
        self.having = having
        self._outer_env = None

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self._outer_env = outer_env
        self.child.open(ctx, outer_env)

    def _accumulate(self):
        outer = self._outer_env
        groups = {}
        group_fns = self.group_fns
        agg_specs = self.agg_specs
        row_groups = row_fns_of(group_fns)
        arg_fns = [s.arg_fn for s in agg_specs]
        row_args = row_fns_of([fn for fn in arg_fns if fn is not None])
        row_mode = row_groups is not None and row_args is not None
        if row_mode:
            # Thread the row-mode arg evaluators back into spec order
            # (COUNT(*) slots keep None -> sentinel value 1).
            it = iter(row_args)
            per_spec = [None if fn is None else next(it) for fn in arg_fns]
            for chunk in self.child.batches():
                for row in chunk:
                    key = tuple(fn(row) for fn in row_groups)
                    accs = groups.get(key)
                    if accs is None:
                        accs = [_Accumulator(s.func) for s in agg_specs]
                        groups[key] = accs
                    for arg_fn, acc in zip(per_spec, accs):
                        acc.add(1 if arg_fn is None else arg_fn(row))
        else:
            for row in self.child.rows():
                env = make_env(row, outer)
                key = tuple(fn(env) for fn in group_fns)
                accs = groups.get(key)
                if accs is None:
                    accs = [_Accumulator(s.func) for s in agg_specs]
                    groups[key] = accs
                for spec, acc in zip(agg_specs, accs):
                    value = 1 if spec.arg_fn is None else spec.arg_fn(env)
                    acc.add(value)
        if not groups and not self.group_fns:
            groups[()] = [_Accumulator(s.func) for s in agg_specs]
        return groups

    def _emit(self, groups):
        having = self.having
        row_having = None if having is None else row_fn_of(having)
        outer = self._outer_env
        for key, accs in groups.items():
            out = key + tuple(acc.result() for acc in accs)
            if having is None:
                yield out
            elif row_having is not None:
                if row_having(out) is True:
                    yield out
            elif having(make_env(out, outer)) is True:
                yield out

    def rows(self):
        return self._emit(self._accumulate())

    def batches(self, size=DEFAULT_BATCH_SIZE):
        yield from _chunked(self._emit(self._accumulate()), size)

    def close(self):
        self.child.close()

    def describe(self):
        names = [s.func for s in self.agg_specs]
        return f"HashAggregate(groups={len(self.group_fns)}, aggs={names})"


class Distinct(PhysicalOperator):
    def __init__(self, child):
        self.child = child
        self.output = child.output

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self.child.open(ctx, outer_env)

    def rows(self):
        seen = set()
        for row in self.child.rows():
            if row not in seen:
                seen.add(row)
                yield row

    def batches(self, size=DEFAULT_BATCH_SIZE):
        seen = set()
        add = seen.add
        for chunk in self.child.batches(size):
            out = []
            for row in chunk:
                if row not in seen:
                    add(row)
                    out.append(row)
            if out:
                yield out

    def close(self):
        self.child.close()

    def describe(self):
        return "Distinct"


class Limit(PhysicalOperator):
    def __init__(self, child, limit):
        self.child = child
        self.limit = limit
        self.output = child.output

    def children(self):
        return (self.child,)

    def open(self, ctx, outer_env=None):
        self.child.open(ctx, outer_env)

    def rows(self):
        remaining = self.limit
        if remaining <= 0:
            return
        for row in self.child.rows():
            yield row
            remaining -= 1
            if remaining == 0:
                return

    def batches(self, size=DEFAULT_BATCH_SIZE):
        remaining = self.limit
        if remaining <= 0:
            return
        for chunk in self.child.batches(size):
            if len(chunk) >= remaining:
                yield chunk[:remaining]
                return
            remaining -= len(chunk)
            yield chunk

    def col_batches(self, size=DEFAULT_BATCH_SIZE):
        remaining = self.limit
        if remaining <= 0:
            return
        for batch in self.child.col_batches(size):
            n = batch.n_rows
            if n >= remaining:
                yield batch.head(remaining)
                return
            remaining -= n
            yield batch

    def close(self):
        self.child.close()

    def describe(self):
        return f"Limit({self.limit})"


class Materialized(PhysicalOperator):
    """A buffered row set used as a plan source (derived tables, tests)."""

    def __init__(self, rows, output):
        self._rows = list(rows)
        self.output = output

    def open(self, ctx, outer_env=None):
        pass

    def rows(self):
        return iter(self._rows)

    def batches(self, size=DEFAULT_BATCH_SIZE):
        rows = self._rows
        for start in range(0, len(rows), size):
            yield rows[start:start + size]

    def all_rows(self, size=DEFAULT_BATCH_SIZE):
        return list(self._rows)

    def describe(self):
        return f"Materialized({len(self._rows)} rows)"


class SwitchUnion(PhysicalOperator):
    """The paper's SwitchUnion: N inputs plus a selector expression.

    At open time the selector picks exactly one input; the others are never
    touched.  MTCache uses two-input SwitchUnions whose selector is a
    *currency guard* over the local heartbeat table: input 0 is the local
    (view) branch, input 1 the remote fallback.  Both protocols simply
    delegate to the chosen branch.
    """

    def __init__(self, inputs, selector, output, label=""):
        if not inputs:
            raise ExecutionError("SwitchUnion needs at least one input")
        self.inputs = list(inputs)
        self.selector = selector  # fn(ctx) -> int in [0, len(inputs))
        self.output = output
        self.label = label
        self.chosen = None
        #: The most recent selector decision; survives close() so callers
        #: (e.g. the semantics checker) can inspect which branch ran.
        self.last_chosen = None

    def children(self):
        return tuple(self.inputs)

    def open(self, ctx, outer_env=None):
        index = self.selector(ctx)
        if not 0 <= index < len(self.inputs):
            raise ExecutionError(f"SwitchUnion selector returned {index}")
        self.chosen = index
        self.last_chosen = index
        ctx.record_branch(self.label or "switchunion", index)
        self.inputs[index].open(ctx, outer_env)

    def rows(self):
        return self.inputs[self.chosen].rows()

    def batches(self, size=DEFAULT_BATCH_SIZE):
        return self.inputs[self.chosen].batches(size)

    def col_batches(self, size=DEFAULT_BATCH_SIZE):
        return self.inputs[self.chosen].col_batches(size)

    def all_rows(self, size=DEFAULT_BATCH_SIZE):
        return self.inputs[self.chosen].all_rows(size)

    def close(self):
        if self.chosen is not None:
            self.inputs[self.chosen].close()
            self.chosen = None

    def describe(self):
        return f"SwitchUnion({self.label})"


class RemoteQuery(PhysicalOperator):
    """Ship a SQL query to the back-end server and stream its result.

    ``remote_executor`` is a callable ``(sql) -> (rows, n_cols)`` provided
    by the cache's connection to the back-end.  The query is issued during
    ``open`` (binding phase), mirroring the paper's observation that remote
    binding makes plan setup more expensive.
    """

    def __init__(self, sql, output, remote_executor, shards=None):
        self.sql = sql
        self.output = output
        self.remote_executor = remote_executor
        #: Optional shard pin the executor closure was built with; carried
        #: on the operator so plan snapshots can re-pin on instantiation.
        self.shards = shards
        self._buffered = None

    def open(self, ctx, outer_env=None):
        rows = self.remote_executor(self.sql)
        self._buffered = rows
        ctx.record_remote_query(self.sql, len(rows))

    def rows(self):
        return iter(self._buffered)

    def batches(self, size=DEFAULT_BATCH_SIZE):
        rows = self._buffered
        for start in range(0, len(rows), size):
            yield rows[start:start + size]

    def all_rows(self, size=DEFAULT_BATCH_SIZE):
        return list(self._buffered)

    def close(self):
        self._buffered = None

    def describe(self):
        return f"RemoteQuery({self.sql})"
