"""A restricted, serializable expression IR.

:func:`compile_expr` closures are opaque: they can be executed but not
shipped.  Plan snapshots (``repro.plan``) need the opposite — a compact,
versioned description of every compiled predicate that any fleet node can
re-compile locally without re-parsing SQL.  This module defines that
form: a tree of plain tuples whose leaves are positional column loads,
constants, and outer-row locators.

The IR is deliberately *restricted*: subqueries are not expressible (a
plan containing one ships whole as a RemoteQuery, which serializes as
SQL text), and anything else the compiler cannot translate raises
:class:`IRUnsupported` so callers can fall back gracefully.

Three consumers:

* :func:`from_ast` — built alongside the closure in ``compile_expr`` and
  attached as ``fn.ir``;
* :func:`compile_ir` — rebuilds the closure from the IR at snapshot
  instantiation time, with semantics identical to ``compile_expr`` (it
  reuses :func:`repro.engine.expressions._binary` for the three-valued
  comparison/arithmetic table);
* :func:`selection_fn` — the columnar engine's predicate codegen: emits
  one Python comprehension per filter (null-guarded, short-circuiting
  ``and``/``or``) mapping a column set + selection vector to the
  surviving row indexes.

Node forms (plain tuples, JSON-serializable via to_obj/from_obj)::

    ("const", value)                 ("col", position)
    ("outer", locator)               ("now",)
    ("bin", op, left, right)         op: and or = <> < <= > >= + - * / %
    ("not", x)                       ("neg", x)
    ("isnull", x, negated)           ("between", x, lo, hi, negated)
    ("inlist", x, (items...), negated)
"""

from repro.common.errors import ExecutionError
from repro.engine.expressions import _binary
from repro.sql import ast


class IRUnsupported(ExecutionError):
    """The expression has no IR form (subquery, unknown function...)."""


_SCALARS = (bool, int, float, str)

_BIN_OPS = frozenset(
    ["and", "or", "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "%"]
)


# ----------------------------------------------------------------------
# AST -> IR
# ----------------------------------------------------------------------
def from_ast(expr, binding):
    """Translate an AST expression to IR, or raise :class:`IRUnsupported`."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        if value is not None and not isinstance(value, _SCALARS):
            raise IRUnsupported(f"non-scalar literal: {value!r}")
        return ("const", value)
    if isinstance(expr, ast.ColumnRef):
        locator = binding.resolve(expr)
        scope, pos = locator
        if scope == "local":
            return ("col", pos)
        return ("outer", pos)
    if isinstance(expr, ast.BinaryOp):
        if expr.op not in _BIN_OPS:
            raise IRUnsupported(f"binary operator {expr.op!r}")
        return ("bin", expr.op, from_ast(expr.left, binding), from_ast(expr.right, binding))
    if isinstance(expr, ast.UnaryOp):
        inner = from_ast(expr.operand, binding)
        if expr.op == "not":
            return ("not", inner)
        return ("neg", inner)
    if isinstance(expr, ast.IsNull):
        return ("isnull", from_ast(expr.operand, binding), bool(expr.negated))
    if isinstance(expr, ast.Between):
        return (
            "between",
            from_ast(expr.operand, binding),
            from_ast(expr.low, binding),
            from_ast(expr.high, binding),
            bool(expr.negated),
        )
    if isinstance(expr, ast.InList):
        return (
            "inlist",
            from_ast(expr.operand, binding),
            tuple(from_ast(i, binding) for i in expr.items),
            bool(expr.negated),
        )
    if isinstance(expr, ast.FuncCall):
        if expr.name == "getdate":
            return ("now",)
        raise IRUnsupported(f"function {expr.name!r}")
    raise IRUnsupported(f"no IR form for {type(expr).__name__}")


def const_ir(value):
    """IR for a plan-time constant (index-seek key values)."""
    if value is not None and not isinstance(value, _SCALARS):
        raise IRUnsupported(f"non-scalar constant: {value!r}")
    return ("const", value)


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def to_obj(node):
    """IR tuple tree -> nested lists (json.dumps-ready)."""
    tag = node[0]
    if tag == "const":
        return ["const", node[1]]
    if tag == "col":
        return ["col", node[1]]
    if tag == "outer":
        return ["outer", _locator_obj(node[1])]
    if tag == "now":
        return ["now"]
    if tag == "inlist":
        return ["inlist", to_obj(node[1]), [to_obj(i) for i in node[2]], node[3]]
    out = [tag]
    for part in node[1:]:
        out.append(to_obj(part) if isinstance(part, tuple) else part)
    return out


def from_obj(obj):
    """Nested lists (json.loads output) -> IR tuple tree."""
    tag = obj[0]
    if tag in ("const", "col"):
        return (tag, obj[1])
    if tag == "outer":
        return ("outer", _locator_tuple(obj[1]))
    if tag == "now":
        return ("now",)
    if tag == "inlist":
        return ("inlist", from_obj(obj[1]), tuple(from_obj(i) for i in obj[2]), obj[3])
    parts = [tag]
    for part in obj[1:]:
        parts.append(from_obj(part) if isinstance(part, list) else part)
    return tuple(parts)


def _locator_obj(locator):
    scope, pos = locator
    return [scope, pos if scope == "local" else _locator_obj(pos)]


def _locator_tuple(obj):
    scope, pos = obj
    return (scope, pos if scope == "local" else _locator_tuple(pos))


# ----------------------------------------------------------------------
# IR -> closure (same dual-mode contract as compile_expr)
# ----------------------------------------------------------------------
def compile_ir(node, ctx=None):
    """Re-compile an IR tree into the ``fn(env)`` closure contract of
    :func:`repro.engine.expressions.compile_expr` (with ``row_fn`` /
    ``column_pos`` attached when the expression is local-only).  The
    rebuilt closure carries the IR back as ``fn.ir``, so a re-serialized
    snapshot round-trips bit-identically."""
    row_fn = _build(node, ctx, row_mode=True)
    if row_fn is not None:

        def env_fn(env, _fn=row_fn):
            return _fn(env.row)

        env_fn.row_fn = row_fn
        pos = getattr(row_fn, "column_pos", None)
        if pos is not None:
            env_fn.column_pos = pos
        env_fn.ir = node
        return env_fn
    fn = _build(node, ctx, row_mode=False)
    fn.ir = node
    return fn


def _build(node, ctx, row_mode):
    tag = node[0]
    if tag == "const":
        value = node[1]
        return lambda _: value
    if tag == "col":
        pos = node[1]

        def column(row, _pos=pos):
            return row[_pos]

        if not row_mode:
            return lambda env: env.row[pos]
        column.column_pos = pos
        return column
    if tag == "outer":
        if row_mode:
            return None
        locator = ("outer", node[1])
        return lambda env: env.fetch(locator)
    if tag == "now":
        if ctx is None:
            raise ExecutionError("GETDATE() in IR without an expression context")
        return lambda _: ctx.now()
    if tag == "bin":
        left = _build(node[2], ctx, row_mode)
        right = _build(node[3], ctx, row_mode)
        if left is None or right is None:
            return None
        return _binary(node[1], left, right)
    if tag == "not":
        inner = _build(node[1], ctx, row_mode)
        if inner is None:
            return None

        def _not(arg):
            v = inner(arg)
            return None if v is None else (not v)

        return _not
    if tag == "neg":
        inner = _build(node[1], ctx, row_mode)
        if inner is None:
            return None
        return lambda arg: None if (v := inner(arg)) is None else -v
    if tag == "isnull":
        inner = _build(node[1], ctx, row_mode)
        if inner is None:
            return None
        if node[2]:
            return lambda arg: inner(arg) is not None
        return lambda arg: inner(arg) is None
    if tag == "between":
        operand = _build(node[1], ctx, row_mode)
        low = _build(node[2], ctx, row_mode)
        high = _build(node[3], ctx, row_mode)
        if operand is None or low is None or high is None:
            return None
        negated = node[4]

        def _between(arg):
            v = operand(arg)
            lo = low(arg)
            hi = high(arg)
            if v is None or lo is None or hi is None:
                return None
            result = lo <= v <= hi
            return (not result) if negated else result

        return _between
    if tag == "inlist":
        operand = _build(node[1], ctx, row_mode)
        items = [_build(i, ctx, row_mode) for i in node[2]]
        if operand is None or any(i is None for i in items):
            return None
        negated = node[3]

        def _in(arg):
            v = operand(arg)
            if v is None:
                return None
            result = any(item(arg) == v for item in items)
            return (not result) if negated else result

        return _in
    raise ExecutionError(f"unknown IR node: {tag!r}")


# ----------------------------------------------------------------------
# Columnar predicate codegen
# ----------------------------------------------------------------------
class _ColumnarUnsupported(Exception):
    """Internal: this IR shape has no columnar form (fall back to rows)."""


class _Gen:
    """Emit a null-guarded boolean Python expression over row index ``i``.

    SQL qualification semantics collapse three-valued logic to two:
    ``is_true`` keeps a row only when the predicate is TRUE (NULL filters
    like FALSE), and ``NOT x`` becomes ``is_false(x)`` — De Morgan over
    the guarded comparison forms.  Constants are passed through the exec
    namespace (never repr-injected), so any comparable Python value the
    row engine accepts works here too.
    """

    def __init__(self):
        self.namespace = {}
        self._n_const = 0
        self._n_tmp = 0
        self.col_vars = {}  # position -> local variable name

    def _const(self, value):
        name = f"_k{self._n_const}"
        self._n_const += 1
        self.namespace[name] = value
        return name

    def _col(self, pos):
        name = self.col_vars.get(pos)
        if name is None:
            name = self.col_vars[pos] = f"_c{pos}"
        return name

    def value(self, node):
        """Return (guard, expr): ``guard`` is a boolean source string that
        is true iff the value is non-NULL (None when statically non-null,
        "False" when statically NULL)."""
        tag = node[0]
        if tag == "const":
            if node[1] is None:
                return "False", "None"
            return None, self._const(node[1])
        if tag == "col":
            col = self._col(node[1])
            tmp = f"_t{self._n_tmp}"
            self._n_tmp += 1
            return f"({tmp} := {col}[i]) is not None", tmp
        if tag == "neg":
            guard, expr = self.value(node[1])
            return guard, f"(-{expr})"
        if tag == "bin" and node[1] in ("+", "-", "*", "/", "%"):
            lg, lv = self.value(node[2])
            rg, rv = self.value(node[3])
            guard = _conj(lg, rg)
            return guard, f"({lv} {node[1]} {rv})"
        raise _ColumnarUnsupported(tag)

    def is_true(self, node):
        tag = node[0]
        if tag == "bin":
            op = node[1]
            if op == "and":
                return f"({self.is_true(node[2])} and {self.is_true(node[3])})"
            if op == "or":
                return f"({self.is_true(node[2])} or {self.is_true(node[3])})"
            return self._cmp(node, negate=False)
        if tag == "not":
            return self.is_false(node[1])
        if tag == "isnull":
            return self._isnull(node, negate=False)
        if tag == "between":
            return self.is_true(_lower_between(node))
        if tag == "inlist":
            return self._inlist(node, negate=False)
        if tag == "const":
            return "True" if node[1] else "False"
        raise _ColumnarUnsupported(tag)

    def is_false(self, node):
        tag = node[0]
        if tag == "bin":
            op = node[1]
            if op == "and":
                return f"({self.is_false(node[2])} or {self.is_false(node[3])})"
            if op == "or":
                return f"({self.is_false(node[2])} and {self.is_false(node[3])})"
            return self._cmp(node, negate=True)
        if tag == "not":
            return self.is_true(node[1])
        if tag == "isnull":
            return self._isnull(node, negate=True)
        if tag == "between":
            return self.is_false(_lower_between(node))
        if tag == "inlist":
            return self._inlist(node, negate=True)
        if tag == "const":
            return "False" if (node[1] or node[1] is None) else "True"
        raise _ColumnarUnsupported(tag)

    _PY_CMP = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

    def _cmp(self, node, negate):
        op = self._PY_CMP.get(node[1])
        if op is None:
            raise _ColumnarUnsupported(node[1])
        lg, lv = self.value(node[2])
        rg, rv = self.value(node[3])
        guard = _conj(lg, rg)
        cmp_expr = f"{lv} {op} {rv}"
        if negate:
            cmp_expr = f"not ({cmp_expr})"
        if guard is None:
            return f"({cmp_expr})"
        return f"({guard} and ({cmp_expr}))"

    def _isnull(self, node, negate):
        guard, _ = self.value(node[1])
        # IS [NOT] NULL is two-valued; negate flips is_true <-> is_false.
        want_null = not node[2]
        if negate:
            want_null = not want_null
        if guard is None:
            return "False" if want_null else "True"
        if guard == "False":
            return "True" if want_null else "False"
        return f"(not ({guard}))" if want_null else f"({guard})"

    def _inlist(self, node, negate):
        _, items, negated = node[1], node[2], node[3]
        if any(i[0] != "const" for i in items):
            raise _ColumnarUnsupported("inlist with non-constant items")
        values = [i[1] for i in items]
        has_null = any(v is None for v in values)
        try:
            members = set(v for v in values if v is not None)
        except TypeError:
            raise _ColumnarUnsupported("unhashable IN-list item") from None
        guard, expr = self.value(node[1])
        set_name = self._const(members)
        inside = f"{expr} in {set_name}"
        # Truth table of x IN (...) under SQL nulls: TRUE iff x matches a
        # non-null item; FALSE iff x is non-null, matches nothing, and the
        # list has no NULL (a NULL item makes the miss UNKNOWN).
        want_true = negated if negate else not negated
        if want_true:
            body = inside
        else:
            if has_null:
                return "False"
            body = f"{expr} not in {set_name}"
        if guard is None:
            return f"({body})"
        if guard == "False":
            return "False"
        return f"({guard} and ({body}))"


def _conj(*guards):
    parts = [g for g in guards if g is not None]
    if "False" in parts:
        return "False"
    return " and ".join(parts) if parts else None


def _lower_between(node):
    _, operand, low, high, negated = node
    lowered = ("bin", "and", ("bin", ">=", operand, low), ("bin", "<=", operand, high))
    return ("not", lowered) if negated else lowered


_SELECTION_CACHE = {}


def selection_fn(node):
    """Compile an IR predicate to ``fn(columns, sel, n) -> sel'`` — the
    columnar filter kernel — or return None when the IR (or the lack of
    one) forces the row fallback.  Compiled kernels are cached per IR."""
    if node is None:
        return None
    try:
        cached = _SELECTION_CACHE.get(node, False)
    except TypeError:
        cached = False  # unhashable constant somewhere: compile uncached
    if cached is not False:
        return cached
    fn = _compile_selection(node)
    try:
        _SELECTION_CACHE[node] = fn
    except TypeError:
        pass
    return fn


def _compile_selection(node):
    gen = _Gen()
    try:
        test = gen.is_true(node)
    except _ColumnarUnsupported:
        return None
    binds = "".join(
        f"    {var} = columns[{pos}]\n" for pos, var in sorted(gen.col_vars.items())
    )
    source = (
        "def _selection(columns, sel, n):\n"
        f"{binds}"
        "    if sel is None:\n"
        f"        return [i for i in range(n) if {test}]\n"
        f"    return [i for i in sel if {test}]\n"
    )
    namespace = dict(gen.namespace)
    exec(compile(source, "<columnar-filter>", "exec"), namespace)  # noqa: S102
    fn = namespace["_selection"]
    fn.source = source
    return fn
