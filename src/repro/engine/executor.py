"""Plan execution with per-phase timing.

The paper's Table 4.5 breaks query execution into three phases — *setup
plan*, *run plan*, *shutdown plan* — and attributes currency-guard overhead
to each.  :class:`Executor` reproduces that structure: ``open`` the operator
tree (setup), drain the row stream (run), ``close`` it (shutdown), timing
each phase with a high-resolution counter.
"""

import time

from repro.engine.operators import DEFAULT_BATCH_SIZE, coerce_engine
from repro.obs.metrics import NULL_REGISTRY, NullRegistry

#: Below this estimated row count the columnar drive falls back to row
#: chunks: columnarizing a handful of rows costs more than it saves
#: (guarded point lookups are the case that matters).
COLUMNAR_MIN_EST_ROWS = 33


class PhaseTimings:
    """Elapsed seconds per execution phase."""

    __slots__ = ("setup", "run", "shutdown")

    def __init__(self, setup=0.0, run=0.0, shutdown=0.0):
        self.setup = setup
        self.run = run
        self.shutdown = shutdown

    @property
    def total(self):
        return self.setup + self.run + self.shutdown

    def __repr__(self):
        return (
            f"PhaseTimings(setup={self.setup * 1e3:.3f}ms, run={self.run * 1e3:.3f}ms, "
            f"shutdown={self.shutdown * 1e3:.3f}ms)"
        )


class ExecutionContext:
    """Per-execution services and bookkeeping.

    Records SwitchUnion branch decisions and remote queries issued, so
    callers (and tests) can see exactly how a dynamic plan behaved.
    """

    __slots__ = ("clock", "timeline", "trace", "session", "engine", "branches",
                 "remote_queries", "snapshots_used", "warnings",
                 "fused_pipelines", "session_decisions", "capture_reads",
                 "reads")

    def __init__(self, clock=None, timeline=None, trace=None, session=None):
        self.clock = clock
        self.timeline = timeline
        #: The query's TraceContext (None / NULL_TRACE when untraced).
        self.trace = trace
        #: The caller's read-your-writes Session (None: no session
        #: guarantees requested); strict-table guards consult its floors.
        self.session = session
        #: Execution engine driving this run ("row"/"batch"/"columnar");
        #: operators consult it at open() (join build-side strategy).
        self.engine = "batch"
        self.branches = []  # (label, chosen index)
        self.remote_queries = []  # (sql, row count)
        #: Snapshot times of the local views actually read, for timeline
        #: watermark accounting.
        self.snapshots_used = []
        #: Constraint-violation warnings (serve-stale fallback policy).
        self.warnings = []
        #: Labels of fused scan pipelines that ran (batch engine only).
        self.fused_pipelines = []
        #: Session-floor guard decisions: (view, "local"/"remote",
        #: lagging source or None) — EXPLAIN ANALYZE renders these.
        self.session_decisions = []
        #: History capture: when True (a recording cache set it), guards
        #: call :meth:`record_read` with full per-read provenance on
        #: every local serve.  One boolean check on the non-recording
        #: hot path.
        self.capture_reads = False
        #: Structured local-read records (view, table, region, shard,
        #: snapshot, strictness, per-source applied txns at guard time).
        self.reads = []

    def record_branch(self, label, index):
        self.branches.append((label, index))

    def record_session_decision(self, view, outcome, source=None):
        self.session_decisions.append((view, outcome, source))

    def record_fused(self, label):
        self.fused_pipelines.append(label)

    def record_remote_query(self, sql, n_rows):
        self.remote_queries.append((sql, n_rows))

    def record_snapshot(self, snapshot_time):
        self.snapshots_used.append(snapshot_time)

    def record_read(self, view, table, region, shard, snapshot, strict,
                    sources):
        self.reads.append({
            "view": view, "table": table, "region": region, "shard": shard,
            "snapshot": snapshot, "strict": strict, "sources": sources,
        })

    def record_warning(self, message):
        self.warnings.append(message)

    @property
    def used_local(self):
        """True if any SwitchUnion chose its local branch (index 0)."""
        return any(index == 0 for _, index in self.branches)

    @property
    def all_local(self):
        """True if every SwitchUnion chose its local branch."""
        return bool(self.branches) and all(index == 0 for _, index in self.branches)


class QueryResult:
    """The stable result contract of :meth:`repro.cache.mtcache.MTCache.execute`.

    Guaranteed fields:

    * ``rows`` — list of value tuples;
    * ``columns`` — output column names, in row order;
    * ``plan`` — the :class:`~repro.optimizer.optimizer.OptimizedPlan`
      that produced the rows (None for non-optimized paths);
    * ``timings`` — :class:`PhaseTimings` (setup / run / shutdown);
    * ``routing`` — ``"local"`` | ``"remote"`` | ``"mixed"``: where the
      data actually came from at run time;
    * ``warnings`` — constraint-violation messages (serve-stale policy);
    * ``trace_id`` — id of the query's trace tree (None when untraced);
      look the trace up in ``cache.traces`` / ``fleet.traces``.

    ``context`` additionally exposes the raw run-time provenance
    (SwitchUnion branch decisions, remote queries issued).
    """

    def __init__(self, columns, rows, timings, context, plan=None, trace_id=None):
        self.columns = list(columns)
        # Rows are materialized fresh by every execution path, so a list
        # input is adopted as-is (the copy only matters for iterators).
        self.rows = rows if type(rows) is list else list(rows)
        self.timings = timings
        self.context = context
        self.plan = plan
        self.trace_id = trace_id

    @property
    def warnings(self):
        """Constraint-violation warnings recorded during execution."""
        return self.context.warnings if self.context is not None else []

    @property
    def routing(self):
        """Where the rows came from: "local", "remote" or "mixed".

        "local" — no back-end query was issued; "remote" — everything
        came from the back-end; "mixed" — a join combined a local branch
        with remote data.
        """
        ctx = self.context
        if ctx is None or not ctx.remote_queries:
            return "local"
        if any(index == 0 for _, index in ctx.branches):
            return "mixed"
        return "remote"

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def as_dicts(self):
        """Rows as a list of column-name -> value dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self):
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(f"result is not scalar: {len(self.rows)} rows")
        return self.rows[0][0]

    def column(self, name):
        """All values of one column."""
        i = self.columns.index(name.lower())
        return [row[i] for row in self.rows]

    def __repr__(self):
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"


class Executor:
    """Runs a physical operator tree through its three phases.

    The run phase drives the batch protocol: the plan's ``batches()``
    stream is drained chunk-at-a-time (``batch_size`` rows per chunk).
    ``batch_size=1`` selects the legacy row-at-a-time path — the plan's
    ``rows()`` generator — for debugging and equivalence testing.  The
    Table 4.5 setup/run/shutdown split is unchanged: ``open`` is setup,
    draining is run, ``close`` is shutdown, whichever protocol runs.

    Each execution feeds the attached metrics registry: one histogram
    per phase (the paper's Table 4.5 breakdown), rows/batches/fused-
    pipeline counters, and per-branch SwitchUnion counters.  The metric
    handles are resolved once in :meth:`set_registry`, so the per-query
    cost is a handful of attribute calls — no-ops under the default
    :class:`~repro.obs.metrics.NullRegistry`.
    """

    def __init__(
        self,
        clock=None,
        timer=time.perf_counter,
        registry=None,
        batch_size=DEFAULT_BATCH_SIZE,
        engine=None,
    ):
        self.clock = clock
        self.timer = timer
        self.batch_size = batch_size
        #: "row" | "batch" | "columnar" (None resolves per coerce_engine:
        #: columnar unless batch_size forces the row path).
        self.engine = coerce_engine(engine, batch_size)
        self.set_registry(registry if registry is not None else NULL_REGISTRY)

    def set_registry(self, registry):
        """Attach a metrics registry and pre-resolve the hot-path series."""
        self.registry = registry
        #: Null registries skip the per-query metric feeding wholesale —
        #: cheaper than a dozen no-op calls on the hottest path.
        self._metrics_null = isinstance(registry, NullRegistry)
        self._h_setup = registry.histogram(
            "exec_phase_seconds", labels={"phase": "setup"},
            help="per-phase execution time (Table 4.5 breakdown)")
        self._h_run = registry.histogram("exec_phase_seconds", labels={"phase": "run"})
        self._h_shutdown = registry.histogram(
            "exec_phase_seconds", labels={"phase": "shutdown"})
        self._c_queries = registry.counter(
            "queries_executed_total", help="plans run by this executor")
        self._c_rows = registry.counter(
            "rows_produced_total", help="rows returned to clients")
        self._c_branch_local = registry.counter(
            "switchunion_branch_total", labels={"branch": "local"},
            help="SwitchUnion branch decisions")
        self._c_branch_remote = registry.counter(
            "switchunion_branch_total", labels={"branch": "remote"})
        self._c_batches = registry.counter(
            "engine_batches_total", help="chunks exchanged by the batch engine")
        self._c_fused = registry.counter(
            "engine_fused_pipelines_total",
            help="fused scan pipelines (scan+filter/project in one loop)")

    def execute(self, plan, ctx=None, column_names=None):
        """Execute ``plan`` and return a :class:`QueryResult`."""
        ctx = ctx or ExecutionContext(clock=self.clock)
        timer = self.timer
        trace = ctx.trace
        branches_before = len(ctx.branches)
        fused_before = len(ctx.fused_pipelines)
        batch_size = self.batch_size
        engine = self.engine
        tiny = False
        if engine != "row" and batch_size > 1:
            est = plan.est_rows
            if est is not None and est < COLUMNAR_MIN_EST_ROWS:
                # Tiny plans (guarded point lookups — the cache's hottest
                # request) skip vectorization *and* the generator chain:
                # one materialized list end to end, row-mode join builds.
                engine = "batch"
                tiny = True
        ctx.engine = engine
        n_batches = 0

        traced = bool(trace)
        t0 = timer()
        span = trace.span("exec.setup").__enter__() if traced else None
        plan.open(ctx)
        if span is not None:
            span.__exit__(None, None, None)
        t1 = timer()
        span = trace.span("exec.run").__enter__() if traced else None
        if engine == "row" or batch_size <= 1:
            # Legacy row-at-a-time path (debugging / equivalence baseline).
            rows = list(plan.rows())
        elif tiny:
            rows = plan.all_rows(batch_size)
            n_batches = 1 if rows else 0
        elif engine == "columnar":
            rows = []
            extend = rows.extend
            for batch in plan.col_batches(batch_size):
                extend(batch.to_rows())
                n_batches += 1
        else:
            rows = []
            extend = rows.extend
            for chunk in plan.batches(batch_size):
                extend(chunk)
                n_batches += 1
        if span is not None:
            span.__exit__(None, None, None)
        t2 = timer()
        span = trace.span("exec.shutdown").__enter__() if traced else None
        plan.close()
        if span is not None:
            span.__exit__(None, None, None)
        t3 = timer()

        timings = PhaseTimings(setup=t1 - t0, run=t2 - t1, shutdown=t3 - t2)
        if not self._metrics_null:
            self._h_setup.observe(timings.setup)
            self._h_run.observe(timings.run)
            self._h_shutdown.observe(timings.shutdown)
            self._c_queries.inc()
            self._c_rows.inc(len(rows))
            if n_batches:
                self._c_batches.inc(n_batches)
            n_fused = len(ctx.fused_pipelines) - fused_before
            if n_fused:
                self._c_fused.inc(n_fused)
            for _, index in ctx.branches[branches_before:]:
                (self._c_branch_local if index == 0 else self._c_branch_remote).inc()
        if column_names is None:
            column_names = [c.name for c in plan.output.columns]
        return QueryResult(
            column_names, rows, timings, ctx, plan=plan,
            trace_id=trace.trace_id if traced else None,
        )
