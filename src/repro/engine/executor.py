"""Plan execution with per-phase timing.

The paper's Table 4.5 breaks query execution into three phases — *setup
plan*, *run plan*, *shutdown plan* — and attributes currency-guard overhead
to each.  :class:`Executor` reproduces that structure: ``open`` the operator
tree (setup), drain the row stream (run), ``close`` it (shutdown), timing
each phase with a high-resolution counter.
"""

import time


class PhaseTimings:
    """Elapsed seconds per execution phase."""

    __slots__ = ("setup", "run", "shutdown")

    def __init__(self, setup=0.0, run=0.0, shutdown=0.0):
        self.setup = setup
        self.run = run
        self.shutdown = shutdown

    @property
    def total(self):
        return self.setup + self.run + self.shutdown

    def __repr__(self):
        return (
            f"PhaseTimings(setup={self.setup * 1e3:.3f}ms, run={self.run * 1e3:.3f}ms, "
            f"shutdown={self.shutdown * 1e3:.3f}ms)"
        )


class ExecutionContext:
    """Per-execution services and bookkeeping.

    Records SwitchUnion branch decisions and remote queries issued, so
    callers (and tests) can see exactly how a dynamic plan behaved.
    """

    def __init__(self, clock=None, timeline=None):
        self.clock = clock
        self.timeline = timeline
        self.branches = []  # (label, chosen index)
        self.remote_queries = []  # (sql, row count)
        #: Snapshot times of the local views actually read, for timeline
        #: watermark accounting.
        self.snapshots_used = []
        #: Constraint-violation warnings (serve-stale fallback policy).
        self.warnings = []

    def record_branch(self, label, index):
        self.branches.append((label, index))

    def record_remote_query(self, sql, n_rows):
        self.remote_queries.append((sql, n_rows))

    def record_snapshot(self, snapshot_time):
        self.snapshots_used.append(snapshot_time)

    def record_warning(self, message):
        self.warnings.append(message)

    @property
    def used_local(self):
        """True if any SwitchUnion chose its local branch (index 0)."""
        return any(index == 0 for _, index in self.branches)

    @property
    def all_local(self):
        """True if every SwitchUnion chose its local branch."""
        return bool(self.branches) and all(index == 0 for _, index in self.branches)


class QueryResult:
    """Rows, column names, timings and provenance of one query execution."""

    def __init__(self, columns, rows, timings, context, plan=None):
        self.columns = list(columns)
        self.rows = list(rows)
        self.timings = timings
        self.context = context
        self.plan = plan

    @property
    def warnings(self):
        """Constraint-violation warnings recorded during execution."""
        return self.context.warnings if self.context is not None else []

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def as_dicts(self):
        """Rows as a list of column-name -> value dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self):
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(f"result is not scalar: {len(self.rows)} rows")
        return self.rows[0][0]

    def column(self, name):
        """All values of one column."""
        i = self.columns.index(name.lower())
        return [row[i] for row in self.rows]

    def __repr__(self):
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"


class Executor:
    """Runs a physical operator tree through its three phases."""

    def __init__(self, clock=None, timer=time.perf_counter):
        self.clock = clock
        self.timer = timer

    def execute(self, plan, ctx=None, column_names=None):
        """Execute ``plan`` and return a :class:`QueryResult`."""
        ctx = ctx or ExecutionContext(clock=self.clock)
        timer = self.timer

        t0 = timer()
        plan.open(ctx)
        t1 = timer()
        rows = list(plan.rows())
        t2 = timer()
        plan.close()
        t3 = timer()

        timings = PhaseTimings(setup=t1 - t0, run=t2 - t1, shutdown=t3 - t2)
        if column_names is None:
            column_names = [c.name for c in plan.output.columns]
        return QueryResult(column_names, rows, timings, ctx, plan=plan)
