"""EXPLAIN ANALYZE: per-operator run-time statistics.

:func:`instrument` shadows ``open`` / ``rows`` / ``batches`` /
``col_batches`` / ``_record_fused`` on every node of a physical operator
tree with
counting-and-timing wrappers (instance attributes shadow the class
methods, so the operators themselves stay untouched — and because both
the row and the batch protocol are wrapped, the same instrumentation
covers both engines).  Each node accumulates an :class:`OpStats`:

* ``loops`` — times the node was opened (IndexNLJoin re-opens its inner
  per outer row, exactly like Postgres' ``loops``);
* ``rows_out`` / ``batches_out`` — actuals produced across all loops;
* ``seconds`` — *inclusive* wall time spent producing this node's
  output (open + iterator pulls, children included);
* ``fused`` — the node ran as part of a fused batch pipeline;
* SwitchUnion branch taken is read off the operator (``last_chosen``).

:func:`analysis_rows` then pairs those actuals with the plan-time
estimates the optimizer stamped on the nodes (``est_rows``/``est_cost``),
computes the per-node cardinality Q-error, and :func:`render_analysis`
formats the estimate-vs-actual table.

Only use on *fresh* (non-cached) plans: the wrappers stay on the
instances, so instrumenting a plan-cache entry would tax every later
execution of it.
"""

import time

from repro.engine.operators import DEFAULT_BATCH_SIZE, SwitchUnion
from repro.optimizer.cost import q_error

__all__ = ["OpStats", "instrument", "analysis_rows", "render_analysis"]


class OpStats:
    """Run-time actuals accumulated by one instrumented operator."""

    __slots__ = ("loops", "rows_out", "batches_out", "seconds", "fused",
                 "col_batches_out", "col_rows_capacity", "_depth")

    def __init__(self):
        self.loops = 0
        self.rows_out = 0
        self.batches_out = 0
        self.seconds = 0.0
        self.fused = False
        #: Columnar batches emitted and their total *underlying* row
        #: capacity; ``rows_out`` counts the live (selected) rows, so
        #: ``rows_out / col_rows_capacity`` is the selection density.
        self.col_batches_out = 0
        self.col_rows_capacity = 0
        # Reentrancy depth: the compatibility batches() fallback pulls from
        # self.rows() — the *wrapped* rows once instrumented — so only the
        # outermost wrapper of an operator may count, or rows and time
        # would be double-counted.
        self._depth = 0

    def __repr__(self):
        return (
            f"OpStats(loops={self.loops}, rows={self.rows_out}, "
            f"batches={self.batches_out}, {self.seconds * 1e3:.3f}ms)"
        )


def _wrap(op, stats, timer=time.perf_counter):
    orig_open = op.open
    orig_rows = op.rows
    orig_batches = op.batches
    orig_record_fused = op._record_fused

    def open(ctx, outer_env=None):
        stats.loops += 1
        t0 = timer()
        try:
            return orig_open(ctx, outer_env)
        finally:
            stats.seconds += timer() - t0

    def rows():
        it = iter(orig_rows())
        while True:
            outer = stats._depth == 0
            if outer:
                t0 = timer()
            stats._depth += 1
            try:
                row = next(it)
            except StopIteration:
                stats._depth -= 1
                if outer:
                    stats.seconds += timer() - t0
                return
            stats._depth -= 1
            if outer:
                stats.seconds += timer() - t0
                stats.rows_out += 1
            yield row

    def batches(size=DEFAULT_BATCH_SIZE):
        it = iter(orig_batches(size))
        while True:
            outer = stats._depth == 0
            if outer:
                t0 = timer()
            stats._depth += 1
            try:
                chunk = next(it)
            except StopIteration:
                stats._depth -= 1
                if outer:
                    stats.seconds += timer() - t0
                return
            stats._depth -= 1
            if outer:
                stats.seconds += timer() - t0
                stats.batches_out += 1
                stats.rows_out += len(chunk)
            yield chunk

    orig_col_batches = op.col_batches

    def col_batches(size=DEFAULT_BATCH_SIZE):
        it = iter(orig_col_batches(size))
        while True:
            outer = stats._depth == 0
            if outer:
                t0 = timer()
            stats._depth += 1
            try:
                batch = next(it)
            except StopIteration:
                stats._depth -= 1
                if outer:
                    stats.seconds += timer() - t0
                return
            stats._depth -= 1
            if outer:
                stats.seconds += timer() - t0
                stats.col_batches_out += 1
                stats.col_rows_capacity += batch.length
                stats.rows_out += batch.n_rows
            yield batch

    def all_rows(size=DEFAULT_BATCH_SIZE):
        # Route the materializing fast path through the wrapped batches()
        # so the whole subtree is counted — the operators' own all_rows
        # overrides would bypass the children's instrumentation.
        out = []
        for chunk in batches(size):
            out.extend(chunk)
        return out

    def record_fused(ctx):
        stats.fused = True
        return orig_record_fused(ctx)

    op.open = open
    op.rows = rows
    op.batches = batches
    op.col_batches = col_batches
    op.all_rows = all_rows
    op._record_fused = record_fused


def instrument(root):
    """Attach an :class:`OpStats` (``exec_stats``) to every node and wrap
    its protocol methods; returns the list of instrumented nodes."""
    nodes = []
    for op in root.walk():
        stats = OpStats()
        op.exec_stats = stats
        _wrap(op, stats)
        nodes.append(op)
    return nodes


def _node_records(op, depth, out):
    stats = getattr(op, "exec_stats", None) or OpStats()
    executed = stats.loops > 0
    est = op.est_rows
    if stats.col_batches_out:
        mode = "columnar"
    elif stats.batches_out:
        mode = "batch"
    elif executed:
        mode = "row"
    else:
        mode = None
    record = {
        "op": type(op).__name__,
        "describe": op.describe(),
        "depth": depth,
        "est_rows": est,
        "est_cost": op.est_cost,
        "actual_rows": stats.rows_out,
        "loops": stats.loops,
        "batches": stats.batches_out,
        "col_batches": stats.col_batches_out,
        # Evaluation mode this node actually produced output in, and the
        # selection-vector density of its columnar output (live rows over
        # underlying batch capacity; 1.0 = dense, no filtering upstream).
        "mode": mode,
        "sel_density": (
            stats.rows_out / stats.col_rows_capacity
            if stats.col_rows_capacity else None
        ),
        "time_ms": stats.seconds * 1e3,
        "fused": stats.fused,
        "executed": executed,
        "branch": None,
        # Q-error only where the node both ran and carries an estimate:
        # never-executed SwitchUnion branches have no actual to compare.
        "q_error": q_error(est, stats.rows_out) if executed and est is not None else None,
    }
    if isinstance(op, SwitchUnion):
        chosen = op.last_chosen
        record["branch"] = (
            None if chosen is None else ("local" if chosen == 0 else "remote")
        )
    out.append(record)
    for child in op.children():
        _node_records(child, depth + 1, out)


def analysis_rows(root):
    """Flatten an executed, instrumented tree into per-node records
    (pre-order, with ``depth`` for re-indenting)."""
    out = []
    _node_records(root, 0, out)
    return out


def render_analysis(records):
    """The estimate-vs-actual table as a list of text lines."""
    headers = ("operator", "est.rows", "act.rows", "loops", "batches",
               "time", "q-err", "notes")
    table = [headers]
    for r in records:
        name = "  " * r["depth"] + r["describe"]
        if not r["executed"]:
            table.append((name, _fmt_est(r["est_rows"]), "-", "0", "-", "-", "-",
                          "(never executed)"))
            continue
        notes = []
        if r["mode"] is not None:
            notes.append(f"mode={r['mode']}")
        if r["sel_density"] is not None:
            notes.append(f"density={r['sel_density']:.2f}")
        if r["fused"]:
            notes.append("fused")
        if r["branch"] is not None:
            notes.append(f"branch={r['branch']}")
        n_batches = r["batches"] or r["col_batches"]
        table.append((
            name,
            _fmt_est(r["est_rows"]),
            str(r["actual_rows"]),
            str(r["loops"]),
            str(n_batches) if n_batches else "-",
            f"{r['time_ms']:.3f}ms",
            f"{r['q_error']:.2f}" if r["q_error"] is not None else "-",
            " ".join(notes),
        ))
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return lines


def _fmt_est(est):
    if est is None:
        return "?"
    return f"{est:.0f}"
