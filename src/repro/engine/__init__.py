"""Physical execution engine: iterator operators with explicit
setup / run / shutdown phases, plus expression compilation."""

from repro.engine.expressions import ExpressionContext, OutputCol, RowBinding, compile_expr
from repro.engine.executor import ExecutionContext, Executor, PhaseTimings, QueryResult
from repro.engine.operators import (
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    IndexNLJoin,
    IndexRangeScan,
    IndexSeek,
    Limit,
    Materialized,
    MergeJoin,
    PhysicalOperator,
    Project,
    RemoteQuery,
    SeqScan,
    Sort,
    SwitchUnion,
)

__all__ = [
    "Distinct",
    "ExecutionContext",
    "Executor",
    "ExpressionContext",
    "Filter",
    "Materialized",
    "HashAggregate",
    "HashJoin",
    "IndexNLJoin",
    "IndexRangeScan",
    "IndexSeek",
    "Limit",
    "MergeJoin",
    "OutputCol",
    "PhaseTimings",
    "PhysicalOperator",
    "Project",
    "QueryResult",
    "RemoteQuery",
    "RowBinding",
    "SeqScan",
    "Sort",
    "SwitchUnion",
    "compile_expr",
]
