"""Physical execution engine: batch-at-a-time operators (with a
row-at-a-time compatibility path) over explicit setup / run / shutdown
phases, plus dual-mode expression compilation."""

from repro.engine.expressions import ExpressionContext, OutputCol, RowBinding, compile_expr
from repro.engine.executor import ExecutionContext, Executor, PhaseTimings, QueryResult
from repro.engine.operators import (
    DEFAULT_BATCH_SIZE,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    IndexNLJoin,
    IndexRangeScan,
    IndexSeek,
    Limit,
    Materialized,
    MergeJoin,
    PhysicalOperator,
    Project,
    RemoteQuery,
    SeqScan,
    Sort,
    SwitchUnion,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "Distinct",
    "ExecutionContext",
    "Executor",
    "ExpressionContext",
    "Filter",
    "Materialized",
    "HashAggregate",
    "HashJoin",
    "IndexNLJoin",
    "IndexRangeScan",
    "IndexSeek",
    "Limit",
    "MergeJoin",
    "OutputCol",
    "PhaseTimings",
    "PhysicalOperator",
    "Project",
    "QueryResult",
    "RemoteQuery",
    "RowBinding",
    "SeqScan",
    "Sort",
    "SwitchUnion",
    "compile_expr",
]
