"""Columnar batches: per-column buffers plus a selection vector.

The batch engine's third exchange format (after row tuples and row-tuple
chunks): a :class:`ColumnBatch` holds one Python list — or, for dense
numeric columns, an ``array.array`` exposed through the same indexing
protocol — per output column, plus a *selection vector* of live row
indexes.  Filters never copy data: they only shrink the selection
vector; projections never copy rows: they pick column references.  Rows
materialize once, at the operator-tree boundary (or when a row-only
operator sits downstream).

``array``-typed buffers are built opportunistically by
:func:`column_store` for all-int / all-float columns (nullable or
string columns stay plain lists); both layouts index identically so the
generated filter kernels (:mod:`repro.engine.ir`) are layout-agnostic.
``memoryview(batch.buffer(i))`` is available over typed buffers for
zero-copy hand-off to external consumers.
"""

from array import array


class ColumnBatch:
    """A batch of rows in columnar form.

    ``columns[c][i]`` is the value of column ``c`` in underlying row
    ``i``; ``sel`` is either None (all ``length`` rows are live, in
    order) or a list of live row indexes in output order.  Instances may
    share column buffers with the table's column store or with upstream
    batches — treat them as immutable.
    """

    __slots__ = ("columns", "length", "sel", "source_rows")

    def __init__(self, columns, length, sel=None, source_rows=None):
        self.columns = columns
        self.length = length
        self.sel = sel
        #: The row chunk this batch was columnarized from, when it came
        #: through the shim unfiltered — lets ``to_rows()`` skip the
        #: re-zip on shim->boundary round trips.
        self.source_rows = source_rows

    @classmethod
    def from_rows(cls, rows, width):
        """Columnarize a chunk of row tuples (the shim for row-only
        upstream operators)."""
        if not rows:
            return cls([[] for _ in range(width)], 0)
        return cls([list(col) for col in zip(*rows)], len(rows), source_rows=rows)

    @property
    def n_rows(self):
        """Live rows after selection."""
        return self.length if self.sel is None else len(self.sel)

    @property
    def density(self):
        """Fraction of underlying rows the selection keeps (1.0 = dense)."""
        return 1.0 if self.sel is None else (len(self.sel) / self.length if self.length else 1.0)

    def to_rows(self):
        """Materialize the live rows as tuples, in selection order."""
        sel = self.sel
        if sel is None and self.source_rows is not None:
            return self.source_rows
        cols = self.columns
        if not cols:
            return [() for _ in range(self.n_rows)]
        if sel is None:
            return list(zip(*cols))
        return list(zip(*[[col[i] for i in sel] for col in cols]))

    def take(self, positions):
        """Zero-copy projection: a batch over the picked columns, same
        selection."""
        cols = self.columns
        return ColumnBatch([cols[p] for p in positions], self.length, self.sel)

    def head(self, n):
        """A batch restricted to the first ``n`` live rows."""
        if n >= self.n_rows:
            return self
        if self.sel is not None:
            return ColumnBatch(self.columns, self.length, self.sel[:n])
        return ColumnBatch(self.columns, self.length, list(range(n)))

    def column_values(self, position):
        """The live values of one column, in selection order."""
        col = self.columns[position]
        if self.sel is None:
            return col if isinstance(col, list) else list(col)
        return [col[i] for i in self.sel]

    def buffer(self, position):
        """A memoryview over a typed column buffer (ValueError for plain
        list columns — check with ``isinstance(columns[i], array)``)."""
        col = self.columns[position]
        if isinstance(col, array):
            return memoryview(col)
        raise ValueError(f"column {position} is not a typed buffer")

    def __len__(self):
        return self.n_rows

    def __repr__(self):
        return f"<ColumnBatch {len(self.columns)}x{self.length} sel={self.n_rows}>"


def _typed_column(values):
    """Pack an all-int column into an array('q') or an all-float column
    into an array('d'); keep the plain list otherwise (nullable, string,
    mixed int/float — a float buffer would silently retype ints — or
    ints outside the signed-64-bit range)."""
    kind = None
    for v in values:
        if type(v) is int:
            if kind not in (None, "q") or not (-(2**63) <= v < 2**63):
                return values
            kind = "q"
        elif type(v) is float:
            if kind not in (None, "d"):
                return values
            kind = "d"
        else:
            return values  # None / str / bool / decimal...: keep the list
    if kind is None:
        return values  # empty column: nothing to win
    try:
        return array(kind, values)
    except (TypeError, OverflowError):
        return values


def column_store(table):
    """The per-table columnar snapshot SeqScan reads: one buffer per
    schema column over the live rows, cached on the table and rebuilt
    only when its mutation counter moves."""
    version = table.mutation_count
    cached = getattr(table, "_column_store", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    rows = [v.values for v in table._rows if v is not None]
    width = len(table.schema.names())
    if rows:
        columns = [_typed_column(list(col)) for col in zip(*rows)]
    else:
        columns = [[] for _ in range(width)]
    batch = ColumnBatch(columns, len(rows))
    table._column_store = (version, batch)
    return batch
