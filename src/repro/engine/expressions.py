"""Compilation of AST expressions to row-evaluator closures.

Operators exchange plain tuples; a :class:`RowBinding` describes which
(qualifier, name) pair each tuple position holds, so :func:`compile_expr`
can resolve column references to positions once, at plan build time, rather
than per row.

Correlated subqueries (EXISTS / IN (SELECT …)) are supported through the
:class:`ExpressionContext`'s ``subquery_runner`` callback: the engine that
owns the plan supplies a function that executes a Select AST given the
current outer row environment.  This keeps the expression layer independent
of the planner.
"""

from repro.common.errors import ExecutionError
from repro.sql import ast


class OutputCol:
    """One column of an operator's output: an optional qualifier + name."""

    __slots__ = ("qualifier", "name")

    def __init__(self, name, qualifier=None):
        self.name = name.lower()
        self.qualifier = qualifier.lower() if qualifier else None

    def matches(self, ref):
        """Does this output column match a ColumnRef?"""
        if ref.name != self.name:
            return False
        return ref.qualifier is None or ref.qualifier == self.qualifier

    def __eq__(self, other):
        return (
            isinstance(other, OutputCol)
            and self.name == other.name
            and self.qualifier == other.qualifier
        )

    def __repr__(self):
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


class RowBinding:
    """Resolves column references against an ordered list of OutputCols."""

    def __init__(self, columns, outer=None):
        self.columns = list(columns)
        #: Optional enclosing binding for correlated subqueries.  Positions
        #: resolved against the outer binding are returned as ("outer", pos).
        self.outer = outer

    def __len__(self):
        return len(self.columns)

    def resolve(self, ref):
        """Return ("local", position) or ("outer", locator) for a ColumnRef."""
        matches = [i for i, col in enumerate(self.columns) if col.matches(ref)]
        if len(matches) == 1:
            return ("local", matches[0])
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column reference: {ref.to_sql()}")
        if self.outer is not None:
            return ("outer", self.outer.resolve(ref))
        raise ExecutionError(
            f"unresolved column reference: {ref.to_sql()} (have {self.columns})"
        )

    def concat(self, other):
        """Binding for the concatenation of two rows (joins)."""
        return RowBinding(self.columns + other.columns, outer=self.outer)

    def __repr__(self):
        return f"RowBinding({self.columns})"


class ExpressionContext:
    """Run-time services expressions may need."""

    def __init__(self, clock=None, subquery_runner=None):
        self.clock = clock
        self.subquery_runner = subquery_runner

    def now(self):
        if self.clock is None:
            raise ExecutionError("GETDATE() used without a clock in context")
        return self.clock.now()


class _Env:
    """Run-time row environment: the local row plus optional outer env."""

    __slots__ = ("row", "outer")

    def __init__(self, row, outer=None):
        self.row = row
        self.outer = outer

    def fetch(self, locator):
        scope, pos = locator
        if scope == "local":
            return self.row[pos]
        if self.outer is None:
            raise ExecutionError("correlated reference with no outer row")
        return self.outer.fetch(pos)


def compile_expr(expr, binding, ctx=None):
    """Compile ``expr`` into a callable ``fn(env) -> value``.

    ``env`` is an :class:`_Env`; most callers use :func:`evaluator`, which
    wraps the closure to accept a bare row tuple.
    """
    ctx = ctx or ExpressionContext()

    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda env: value

    if isinstance(expr, ast.ColumnRef):
        locator = binding.resolve(expr)
        return lambda env: env.fetch(locator)

    if isinstance(expr, ast.BinaryOp):
        left = compile_expr(expr.left, binding, ctx)
        right = compile_expr(expr.right, binding, ctx)
        return _binary(expr.op, left, right)

    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, binding, ctx)
        if expr.op == "not":
            def _not(env):
                v = operand(env)
                return None if v is None else (not v)

            return _not
        return lambda env: None if operand(env) is None else -operand(env)

    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, binding, ctx)
        if expr.negated:
            return lambda env: operand(env) is not None
        return lambda env: operand(env) is None

    if isinstance(expr, ast.Between):
        operand = compile_expr(expr.operand, binding, ctx)
        low = compile_expr(expr.low, binding, ctx)
        high = compile_expr(expr.high, binding, ctx)
        negated = expr.negated

        def _between(env):
            v = operand(env)
            lo = low(env)
            hi = high(env)
            if v is None or lo is None or hi is None:
                return None
            result = lo <= v <= hi
            return (not result) if negated else result

        return _between

    if isinstance(expr, ast.InList):
        operand = compile_expr(expr.operand, binding, ctx)
        items = [compile_expr(i, binding, ctx) for i in expr.items]
        negated = expr.negated

        def _in(env):
            v = operand(env)
            if v is None:
                return None
            result = any(item(env) == v for item in items)
            return (not result) if negated else result

        return _in

    if isinstance(expr, ast.FuncCall):
        return _compile_func(expr, binding, ctx)

    if isinstance(expr, ast.ExistsSubquery):
        if ctx.subquery_runner is None:
            raise ExecutionError("subqueries are not available in this context")
        select = expr.select
        negated = expr.negated
        runner = ctx.subquery_runner

        def _exists(env):
            # The runner receives the outer binding so correlated references
            # inside the subquery can be compiled against it.
            rows = runner(select, binding, env)
            found = any(True for _ in rows)
            return (not found) if negated else found

        return _exists

    if isinstance(expr, ast.InSubquery):
        if ctx.subquery_runner is None:
            raise ExecutionError("subqueries are not available in this context")
        operand = compile_expr(expr.operand, binding, ctx)
        select = expr.select
        negated = expr.negated
        runner = ctx.subquery_runner

        def _in_subquery(env):
            v = operand(env)
            if v is None:
                return None
            found = False
            saw_null = False
            for row in runner(select, binding, env):
                if row[0] is None:
                    saw_null = True
                elif row[0] == v:
                    found = True
                    break
            if found:
                return False if negated else True
            if saw_null:
                return None  # three-valued IN: unknown, filtered by WHERE
            return True if negated else False

        return _in_subquery

    raise ExecutionError(f"cannot compile expression: {expr!r}")


def _binary(op, left, right):
    if op == "and":
        def _and(env):
            l = left(env)
            if l is False:
                return False
            r = right(env)
            if r is False:
                return False
            if l is None or r is None:
                return None
            return True

        return _and
    if op == "or":
        def _or(env):
            l = left(env)
            if l is True:
                return True
            r = right(env)
            if r is True:
                return True
            if l is None or r is None:
                return None
            return False

        return _or

    def _null_guard(fn):
        def wrapped(env):
            l = left(env)
            r = right(env)
            if l is None or r is None:
                return None
            return fn(l, r)

        return wrapped

    table = {
        "=": lambda l, r: l == r,
        "<>": lambda l, r: l != r,
        "<": lambda l, r: l < r,
        "<=": lambda l, r: l <= r,
        ">": lambda l, r: l > r,
        ">=": lambda l, r: l >= r,
        "+": lambda l, r: l + r,
        "-": lambda l, r: l - r,
        "*": lambda l, r: l * r,
        "/": lambda l, r: l / r,
        "%": lambda l, r: l % r,
    }
    try:
        return _null_guard(table[op])
    except KeyError:
        raise ExecutionError(f"unsupported binary operator: {op}") from None


def _compile_func(expr, binding, ctx):
    name = expr.name
    if name == "getdate":
        return lambda env: ctx.now()
    if expr.is_aggregate:
        raise ExecutionError(
            f"aggregate {name.upper()} outside of an aggregation operator"
        )
    raise ExecutionError(f"unknown function: {name}")


def evaluator(expr, binding, ctx=None):
    """Compile ``expr`` and wrap it to accept a bare row tuple."""
    fn = compile_expr(expr, binding, ctx)
    return lambda row: fn(_Env(row))


def make_env(row, outer=None):
    """Public constructor for row environments (used by join operators and
    subquery runners)."""
    return _Env(row, outer)
