"""Compilation of AST expressions to row-evaluator closures.

Operators exchange plain tuples; a :class:`RowBinding` describes which
(qualifier, name) pair each tuple position holds, so :func:`compile_expr`
can resolve column references to positions once, at plan build time, rather
than per row.

Compilation is dual-mode, in service of the batch execution engine:

* **row mode** — when an expression only references local columns (no
  correlated outer references, no subqueries), it compiles to a closure
  ``fn(row) -> value`` over the bare tuple.  Batch operators evaluate
  these over whole chunks without allocating a per-row environment; the
  compiled callable exposes the variant as ``fn.row_fn``.  A bare local
  column reference additionally exposes ``fn.column_pos`` so projections
  can collapse to tuple re-ordering.
* **env mode** — correlated or subquery-bearing expressions compile to
  ``fn(env)`` over an :class:`_Env` (the local row plus the outer row
  chain), exactly as the row-at-a-time engine always worked.

Correlated subqueries (EXISTS / IN (SELECT …)) are supported through the
:class:`ExpressionContext`'s ``subquery_runner`` callback: the engine that
owns the plan supplies a function that executes a Select AST given the
current outer row environment.  This keeps the expression layer independent
of the planner.
"""

from repro.common.errors import ExecutionError
from repro.sql import ast


class OutputCol:
    """One column of an operator's output: an optional qualifier + name."""

    __slots__ = ("qualifier", "name")

    def __init__(self, name, qualifier=None):
        self.name = name.lower()
        self.qualifier = qualifier.lower() if qualifier else None

    def matches(self, ref):
        """Does this output column match a ColumnRef?"""
        if ref.name != self.name:
            return False
        return ref.qualifier is None or ref.qualifier == self.qualifier

    def __eq__(self, other):
        return (
            isinstance(other, OutputCol)
            and self.name == other.name
            and self.qualifier == other.qualifier
        )

    def __repr__(self):
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


class RowBinding:
    """Resolves column references against an ordered list of OutputCols.

    Resolution is dict-based: a ``(qualifier, name)`` index is built once
    per binding (lazily, on first resolve) so each reference costs one
    hash lookup instead of a scan over all columns — compile time used to
    be quadratic in column count for wide join bindings.
    """

    def __init__(self, columns, outer=None):
        self.columns = list(columns)
        #: Optional enclosing binding for correlated subqueries.  Positions
        #: resolved against the outer binding are returned as ("outer", pos).
        self.outer = outer
        self._index = None  # lazily built lookup tables

    def __len__(self):
        return len(self.columns)

    def _build_index(self):
        by_qualified = {}  # (qualifier, name) -> [positions]
        by_name = {}  # name -> [positions], any qualifier
        for position, col in enumerate(self.columns):
            by_name.setdefault(col.name, []).append(position)
            by_qualified.setdefault((col.qualifier, col.name), []).append(position)
        self._index = (by_qualified, by_name)
        return self._index

    def resolve(self, ref):
        """Return ("local", position) or ("outer", locator) for a ColumnRef."""
        by_qualified, by_name = self._index or self._build_index()
        if ref.qualifier is None:
            matches = by_name.get(ref.name, ())
        else:
            matches = by_qualified.get((ref.qualifier, ref.name), ())
        if len(matches) == 1:
            return ("local", matches[0])
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column reference: {ref.to_sql()}")
        if self.outer is not None:
            return ("outer", self.outer.resolve(ref))
        raise ExecutionError(
            f"unresolved column reference: {ref.to_sql()} (have {self.columns})"
        )

    def concat(self, other):
        """Binding for the concatenation of two rows (joins)."""
        return RowBinding(self.columns + other.columns, outer=self.outer)

    def __repr__(self):
        return f"RowBinding({self.columns})"


class ExpressionContext:
    """Run-time services expressions may need."""

    def __init__(self, clock=None, subquery_runner=None):
        self.clock = clock
        self.subquery_runner = subquery_runner

    def now(self):
        if self.clock is None:
            raise ExecutionError("GETDATE() used without a clock in context")
        return self.clock.now()


class _Env:
    """Run-time row environment: the local row plus optional outer env."""

    __slots__ = ("row", "outer")

    def __init__(self, row, outer=None):
        self.row = row
        self.outer = outer

    def fetch(self, locator):
        scope, pos = locator
        if scope == "local":
            return self.row[pos]
        if self.outer is None:
            raise ExecutionError("correlated reference with no outer row")
        return self.outer.fetch(pos)


def compile_expr(expr, binding, ctx=None):
    """Compile ``expr`` into a callable ``fn(env) -> value``.

    ``env`` is an :class:`_Env`; most callers use :func:`evaluator`, which
    wraps the closure to accept a bare row tuple.  When the expression is
    non-correlated and subquery-free, the returned callable carries a
    ``row_fn`` attribute — the row-mode variant ``fn(row) -> value`` the
    batch engine evaluates without building environments.
    """
    ctx = ctx or ExpressionContext()
    row_fn = _compile(expr, binding, ctx, row_mode=True)
    if row_fn is not None:

        def env_fn(env, _fn=row_fn):
            return _fn(env.row)

        env_fn.row_fn = row_fn
        pos = getattr(row_fn, "column_pos", None)
        if pos is not None:
            env_fn.column_pos = pos
        env_fn.ir = _ir_of(expr, binding)
        return env_fn
    fn = _compile(expr, binding, ctx, row_mode=False)
    fn.ir = _ir_of(expr, binding)
    return fn


def _ir_of(expr, binding):
    """Serializable IR for a compiled expression, or None when it has no
    IR form (subqueries; plans holding such closures cannot snapshot)."""
    from repro.engine import ir as _ir  # local: ir imports _binary from here

    try:
        return _ir.from_ast(expr, binding)
    except Exception:
        return None


def row_fn_of(fn):
    """The row-mode variant of a compiled expression, or None."""
    return getattr(fn, "row_fn", None)


def row_fns_of(fns):
    """Row-mode variants for a list of compiled fns, or None if any is
    env-only (the caller then falls back to the environment path)."""
    out = [getattr(fn, "row_fn", None) for fn in fns]
    if all(f is not None for f in out):
        return out
    return None


def _compile(expr, binding, ctx, row_mode):
    """Recursive compiler shared by both modes.

    In row mode the produced closures take a bare row tuple and the
    function returns None whenever the expression needs an environment
    (outer references, subqueries); in env mode it always succeeds.
    """

    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda _: value

    if isinstance(expr, ast.ColumnRef):
        locator = binding.resolve(expr)
        if row_mode:
            scope, pos = locator
            if scope != "local":
                return None

            def column(row, _pos=pos):
                return row[_pos]

            column.column_pos = pos
            return column
        return lambda env: env.fetch(locator)

    if isinstance(expr, ast.BinaryOp):
        left = _compile(expr.left, binding, ctx, row_mode)
        right = _compile(expr.right, binding, ctx, row_mode)
        if left is None or right is None:
            return None
        return _binary(expr.op, left, right)

    if isinstance(expr, ast.UnaryOp):
        operand = _compile(expr.operand, binding, ctx, row_mode)
        if operand is None:
            return None
        if expr.op == "not":
            def _not(arg):
                v = operand(arg)
                return None if v is None else (not v)

            return _not
        return lambda arg: None if operand(arg) is None else -operand(arg)

    if isinstance(expr, ast.IsNull):
        operand = _compile(expr.operand, binding, ctx, row_mode)
        if operand is None:
            return None
        if expr.negated:
            return lambda arg: operand(arg) is not None
        return lambda arg: operand(arg) is None

    if isinstance(expr, ast.Between):
        operand = _compile(expr.operand, binding, ctx, row_mode)
        low = _compile(expr.low, binding, ctx, row_mode)
        high = _compile(expr.high, binding, ctx, row_mode)
        if operand is None or low is None or high is None:
            return None
        negated = expr.negated

        def _between(arg):
            v = operand(arg)
            lo = low(arg)
            hi = high(arg)
            if v is None or lo is None or hi is None:
                return None
            result = lo <= v <= hi
            return (not result) if negated else result

        return _between

    if isinstance(expr, ast.InList):
        operand = _compile(expr.operand, binding, ctx, row_mode)
        items = [_compile(i, binding, ctx, row_mode) for i in expr.items]
        if operand is None or any(i is None for i in items):
            return None
        negated = expr.negated

        def _in(arg):
            v = operand(arg)
            if v is None:
                return None
            result = any(item(arg) == v for item in items)
            return (not result) if negated else result

        return _in

    if isinstance(expr, ast.FuncCall):
        return _compile_func(expr, ctx)

    if isinstance(expr, ast.ExistsSubquery):
        if row_mode:
            return None  # subqueries need the environment chain
        if ctx.subquery_runner is None:
            raise ExecutionError("subqueries are not available in this context")
        select = expr.select
        negated = expr.negated
        runner = ctx.subquery_runner

        def _exists(env):
            # The runner receives the outer binding so correlated references
            # inside the subquery can be compiled against it.
            rows = runner(select, binding, env)
            found = any(True for _ in rows)
            return (not found) if negated else found

        return _exists

    if isinstance(expr, ast.InSubquery):
        if row_mode:
            return None
        if ctx.subquery_runner is None:
            raise ExecutionError("subqueries are not available in this context")
        operand = _compile(expr.operand, binding, ctx, row_mode=False)
        select = expr.select
        negated = expr.negated
        runner = ctx.subquery_runner

        def _in_subquery(env):
            v = operand(env)
            if v is None:
                return None
            found = False
            saw_null = False
            for row in runner(select, binding, env):
                if row[0] is None:
                    saw_null = True
                elif row[0] == v:
                    found = True
                    break
            if found:
                return False if negated else True
            if saw_null:
                return None  # three-valued IN: unknown, filtered by WHERE
            return True if negated else False

        return _in_subquery

    raise ExecutionError(f"cannot compile expression: {expr!r}")


def _binary(op, left, right):
    """Combinators are mode-agnostic: they only ever call their children
    with whatever single argument (env or row) the mode supplies."""
    if op == "and":
        def _and(arg):
            l = left(arg)
            if l is False:
                return False
            r = right(arg)
            if r is False:
                return False
            if l is None or r is None:
                return None
            return True

        return _and
    if op == "or":
        def _or(arg):
            l = left(arg)
            if l is True:
                return True
            r = right(arg)
            if r is True:
                return True
            if l is None or r is None:
                return None
            return False

        return _or

    def _null_guard(fn):
        def wrapped(arg):
            l = left(arg)
            r = right(arg)
            if l is None or r is None:
                return None
            return fn(l, r)

        return wrapped

    table = {
        "=": lambda l, r: l == r,
        "<>": lambda l, r: l != r,
        "<": lambda l, r: l < r,
        "<=": lambda l, r: l <= r,
        ">": lambda l, r: l > r,
        ">=": lambda l, r: l >= r,
        "+": lambda l, r: l + r,
        "-": lambda l, r: l - r,
        "*": lambda l, r: l * r,
        "/": lambda l, r: l / r,
        "%": lambda l, r: l % r,
    }
    try:
        return _null_guard(table[op])
    except KeyError:
        raise ExecutionError(f"unsupported binary operator: {op}") from None


def _compile_func(expr, ctx):
    name = expr.name
    if name == "getdate":
        return lambda _: ctx.now()
    if expr.is_aggregate:
        raise ExecutionError(
            f"aggregate {name.upper()} outside of an aggregation operator"
        )
    raise ExecutionError(f"unknown function: {name}")


def evaluator(expr, binding, ctx=None):
    """Compile ``expr`` and wrap it to accept a bare row tuple."""
    fn = compile_expr(expr, binding, ctx)
    row_fn = getattr(fn, "row_fn", None)
    if row_fn is not None:
        return row_fn
    return lambda row: fn(_Env(row))


def make_env(row, outer=None):
    """Public constructor for row environments (used by join operators and
    subquery runners)."""
    return _Env(row, outer)
