"""Table and column statistics for cardinality estimation.

MTCache's shadow database keeps statistics that describe the *back-end*
data even though the local shadow tables are empty — that is what lets the
cache optimizer cost remote plans realistically.  :class:`TableStats`
objects are therefore value objects that can be computed on the back-end
and installed verbatim into the cache catalog.

Selectivity estimation is the classic System-R style: uniform distributions
within [min, max], independence across predicates, 1/ndv for equality.
"""

import bisect

DEFAULT_EQ_SELECTIVITY = 0.01
DEFAULT_RANGE_SELECTIVITY = 0.33
DEFAULT_ROW_WIDTH = 32  # bytes, used when no schema info is available
HISTOGRAM_BUCKETS = 32
HISTOGRAM_MIN_VALUES = 16  # below this, uniform interpolation is fine


class Histogram:
    """An equi-depth histogram over a numeric column.

    ``boundaries`` has ``n+1`` entries delimiting ``n`` buckets that each
    hold (approximately) the same number of rows, so the estimated
    fraction of rows in a range is the number of buckets it covers (with
    linear interpolation inside partial buckets).  Far more robust than
    min/max interpolation on skewed data.
    """

    __slots__ = ("boundaries",)

    def __init__(self, boundaries):
        if len(boundaries) < 2:
            raise ValueError("a histogram needs at least one bucket")
        self.boundaries = list(boundaries)

    @classmethod
    def from_values(cls, values, buckets=HISTOGRAM_BUCKETS):
        """Build from a list of numeric values (must be non-empty)."""
        ordered = sorted(values)
        n = len(ordered)
        buckets = max(1, min(buckets, n))
        boundaries = [ordered[0]]
        for i in range(1, buckets):
            boundaries.append(ordered[(i * n) // buckets])
        boundaries.append(ordered[-1])
        return cls(boundaries)

    @property
    def bucket_count(self):
        return len(self.boundaries) - 1

    def _fraction_le(self, value):
        """Approximate fraction of rows with column value <= ``value``."""
        bounds = self.boundaries
        if value < bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        i = bisect.bisect_right(bounds, value) - 1
        i = min(i, self.bucket_count - 1)
        lo, hi = bounds[i], bounds[i + 1]
        inside = 0.0 if hi == lo else (float(value) - float(lo)) / (float(hi) - float(lo))
        return (i + inside) / self.bucket_count

    def _fraction_lt(self, value):
        """Approximate fraction of rows with column value < ``value``.

        Distinct from ``_fraction_le`` when duplicates span whole buckets
        (e.g. a column that is one value 80% of the time).
        """
        bounds = self.boundaries
        if value <= bounds[0]:
            return 0.0
        if value > bounds[-1]:
            return 1.0
        i = bisect.bisect_left(bounds, value) - 1
        i = min(max(i, 0), self.bucket_count - 1)
        lo, hi = bounds[i], bounds[i + 1]
        inside = 0.0 if hi == lo else (float(value) - float(lo)) / (float(hi) - float(lo))
        return (i + inside) / self.bucket_count

    def selectivity(self, low=None, high=None):
        """Estimated fraction of rows with low <= value <= high."""
        lo_frac = 0.0 if low is None else self._fraction_lt(low)
        hi_frac = 1.0 if high is None else self._fraction_le(high)
        return max(0.0, min(1.0, hi_frac - lo_frac))

    def __repr__(self):
        return f"Histogram({self.bucket_count} buckets, [{self.boundaries[0]}..{self.boundaries[-1]}])"


class ColumnStats:
    """Min/max/ndv/null-count summary of one column, plus an optional
    equi-depth histogram for numeric columns."""

    __slots__ = ("min", "max", "ndv", "null_count", "avg_width", "histogram")

    def __init__(self, min=None, max=None, ndv=0, null_count=0, avg_width=8, histogram=None):
        self.min = min
        self.max = max
        self.ndv = ndv
        self.null_count = null_count
        self.avg_width = avg_width
        self.histogram = histogram

    @classmethod
    def from_values(cls, values, with_histogram=True):
        """Compute stats from an iterable of column values."""
        non_null = []
        null_count = 0
        for v in values:
            if v is None:
                null_count += 1
            else:
                non_null.append(v)
        if not non_null:
            return cls(null_count=null_count)
        widths = [len(v) if isinstance(v, str) else 8 for v in non_null]
        histogram = None
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in non_null
        )
        if with_histogram and numeric and len(non_null) >= HISTOGRAM_MIN_VALUES:
            histogram = Histogram.from_values(non_null)
        return cls(
            min=min(non_null),
            max=max(non_null),
            ndv=len(set(non_null)),
            null_count=null_count,
            avg_width=sum(widths) / len(widths),
            histogram=histogram,
        )

    def eq_selectivity(self):
        """Estimated fraction of rows matching ``col = const``."""
        if self.ndv > 0:
            return 1.0 / self.ndv
        return DEFAULT_EQ_SELECTIVITY

    def range_selectivity(self, low=None, high=None, low_inclusive=True, high_inclusive=True):
        """Estimated fraction of rows with low <= col <= high.

        Prefers the equi-depth histogram when available; otherwise linear
        interpolation within [min, max]; falls back to a default when the
        column is non-numeric or stats are missing.
        """
        numeric_bounds = (low is None or isinstance(low, (int, float))) and (
            high is None or isinstance(high, (int, float))
        )
        if self.histogram is not None and numeric_bounds:
            return self.histogram.selectivity(low=low, high=high)
        if (
            not numeric_bounds
            or self.min is None
            or self.max is None
            or not isinstance(self.min, (int, float))
            or isinstance(self.min, bool)
        ):
            return DEFAULT_RANGE_SELECTIVITY
        span = float(self.max) - float(self.min)
        if span <= 0:
            # Single-valued column: predicate either keeps all rows or none;
            # estimate optimistically that the value falls inside the range.
            lo_ok = low is None or low <= self.min
            hi_ok = high is None or high >= self.max
            return 1.0 if (lo_ok and hi_ok) else 0.0
        lo = float(self.min) if low is None else max(float(low), float(self.min))
        hi = float(self.max) if high is None else min(float(high), float(self.max))
        if hi < lo:
            return 0.0
        return min(1.0, max(0.0, (hi - lo) / span))

    def __repr__(self):
        return f"ColumnStats(min={self.min}, max={self.max}, ndv={self.ndv})"


class TableStats:
    """Row count plus per-column stats for one table (or view)."""

    def __init__(self, row_count=0, columns=None, row_width=None):
        self.row_count = row_count
        self.columns = dict(columns or {})
        self._row_width = row_width

    @classmethod
    def from_table(cls, table):
        """Compute full statistics by scanning a heap table."""
        rows = [values for _, values in table.scan()]
        columns = {}
        for i, col in enumerate(table.schema.columns):
            columns[col.name] = ColumnStats.from_values(r[i] for r in rows)
        return cls(row_count=len(rows), columns=columns)

    def column(self, name):
        """Stats for one column; returns an empty ColumnStats if unknown."""
        return self.columns.get(name.lower(), ColumnStats())

    @property
    def row_width(self):
        """Average row width in bytes."""
        if self._row_width is not None:
            return self._row_width
        if not self.columns:
            return DEFAULT_ROW_WIDTH
        return sum(c.avg_width for c in self.columns.values())

    def project(self, column_names):
        """Stats restricted to a subset of columns (for projection views)."""
        names = [c.lower() for c in column_names]
        return TableStats(
            row_count=self.row_count,
            columns={n: self.columns[n] for n in names if n in self.columns},
        )

    def scaled(self, selectivity):
        """Stats after applying a filter with the given selectivity."""
        return TableStats(
            row_count=max(1, int(round(self.row_count * selectivity))) if self.row_count else 0,
            columns=dict(self.columns),
            row_width=self._row_width,
        )

    def __repr__(self):
        return f"TableStats(rows={self.row_count}, cols={sorted(self.columns)})"
