"""The catalog: metadata for tables, materialized views and regions.

The cache DBMS keeps a *shadow* catalog: the same table definitions as the
back-end (so name resolution and statistics work identically) while the
actual shadow heaps stay empty.  Local data lives only in materialized
views, each assigned to a currency region, exactly as the prototype in the
paper (§3: three catalog columns ``cid``, ``update_interval``,
``update_delay``).
"""

from repro.common.errors import CatalogError
from repro.catalog.statistics import TableStats
from repro.storage.schema import Column, DataType, Schema
from repro.storage.table import HeapTable

#: SQL type name -> DataType
_TYPE_MAP = {
    "int": DataType.INT,
    "integer": DataType.INT,
    "float": DataType.FLOAT,
    "real": DataType.FLOAT,
    "string": DataType.STRING,
    "varchar": DataType.STRING,
    "text": DataType.STRING,
    "bool": DataType.BOOL,
    "boolean": DataType.BOOL,
    "timestamp": DataType.TIMESTAMP,
}


def data_type_from_sql(type_name):
    """Map a SQL type name to a DataType."""
    try:
        return _TYPE_MAP[type_name.lower()]
    except KeyError:
        raise CatalogError(f"unknown SQL type: {type_name}") from None


class TableEntry:
    """Catalog entry for a base table."""

    def __init__(self, table, stats=None, shadow=False):
        self.table = table
        self.stats = stats or TableStats()
        #: True on the cache: definition exists but the heap is empty and
        #: statistics describe the back-end data.
        self.shadow = shadow

    @property
    def name(self):
        return self.table.name

    @property
    def schema(self):
        return self.table.schema

    def refresh_stats(self):
        """Recompute statistics from the actual heap contents."""
        self.stats = TableStats.from_table(self.table)
        return self.stats

    def __repr__(self):
        kind = "shadow" if self.shadow else "base"
        return f"<TableEntry {self.name} ({kind}, {self.stats.row_count} rows)>"


class RegionInfo:
    """A currency region: the unit of mutual consistency on the cache.

    ``update_interval`` and ``update_delay`` mirror the catalog columns the
    paper added; they are *estimates used for cost estimation* — run-time
    correctness comes from the heartbeat check, never from these numbers.
    """

    def __init__(self, cid, update_interval, update_delay):
        self.cid = cid
        self.update_interval = float(update_interval)
        self.update_delay = float(update_delay)
        self.view_names = []

    def __repr__(self):
        return (
            f"RegionInfo(cid={self.cid!r}, interval={self.update_interval}, "
            f"delay={self.update_delay}, views={self.view_names})"
        )


class MatViewDef:
    """A local materialized view: SELECT <columns> FROM <base> [WHERE <pred>].

    The view's rows are stored in a local heap table and maintained by a
    distribution agent.  ``region`` is the currency region id (``cid``).
    """

    def __init__(self, name, base_table, columns, predicate=None, region=None, table=None):
        self.name = name.lower()
        self.base_table = base_table.lower()
        self.columns = [c.lower() for c in columns]
        self.predicate = predicate  # Expr over unqualified base columns, or None
        self.region = region
        self.table = table  # local HeapTable holding the view rows
        self.stats = TableStats()
        #: id of the last back-end transaction applied to this view.
        self.applied_txn = 0
        #: commit time of that transaction (the view's snapshot time).
        #: On a sharded back-end this is normalized to the *minimum* over
        #: ``shard_snapshots`` — the per-shard C&C rule.
        self.snapshot_time = 0.0
        #: shard id -> that partition agent's snapshot time (empty when
        #: the backing store is unsharded).
        self.shard_snapshots = {}

    @property
    def schema(self):
        return self.table.schema

    def definition_sql(self):
        sql = f"SELECT {', '.join(self.columns)} FROM {self.base_table}"
        if self.predicate is not None:
            sql += f" WHERE {self.predicate.to_sql()}"
        return sql

    def __repr__(self):
        return f"<MatViewDef {self.name} = {self.definition_sql()} region={self.region}>"


class Catalog:
    """Name -> metadata for one DBMS instance (back-end or cache)."""

    def __init__(self):
        self._tables = {}
        self._views = {}
        self._regions = {}

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def create_table(self, name, schema, primary_key=None, shadow=False):
        name = name.lower()
        if name in self._tables or name in self._views:
            raise CatalogError(f"name already in use: {name}")
        table = HeapTable(name, schema, primary_key=primary_key)
        entry = TableEntry(table, shadow=shadow)
        self._tables[name] = entry
        return entry

    def create_table_from_ast(self, stmt, shadow=False):
        """Create a table from a parsed CREATE TABLE statement."""
        columns = [
            Column(c.name, data_type_from_sql(c.type_name), nullable=c.nullable)
            for c in stmt.columns
        ]
        return self.create_table(stmt.name, Schema(columns), primary_key=stmt.primary_key, shadow=shadow)

    def drop_table(self, name):
        name = name.lower()
        if name not in self._tables:
            raise CatalogError(f"unknown table: {name}")
        del self._tables[name]

    def table(self, name):
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table: {name}") from None

    def has_table(self, name):
        return name.lower() in self._tables

    def tables(self):
        return list(self._tables.values())

    # ------------------------------------------------------------------
    # Materialized views (cache side)
    # ------------------------------------------------------------------
    def create_matview(self, name, base_table, columns, predicate=None, region=None):
        """Define a local materialized view over a (shadow) base table."""
        name = name.lower()
        if name in self._tables or name in self._views:
            raise CatalogError(f"name already in use: {name}")
        base = self.table(base_table)
        view_schema = base.schema.project(columns)
        pk = None
        if base.table.primary_key and all(c in [x.lower() for x in columns] for c in base.table.primary_key):
            pk = base.table.primary_key
        table = HeapTable(name, view_schema, primary_key=pk)
        view = MatViewDef(name, base_table, columns, predicate=predicate, region=region, table=table)
        self._views[name] = view
        if region is not None:
            self.region(region).view_names.append(name)
        return view

    def drop_matview(self, name):
        name = name.lower()
        view = self.matview(name)
        if view.region is not None:
            region = self._regions.get(view.region)
            if region is not None and name in region.view_names:
                region.view_names.remove(name)
        del self._views[name]
        return view

    def drop_region(self, cid):
        region = self.region(cid)
        if region.view_names:
            raise CatalogError(
                f"region {cid} still has views: {region.view_names}"
            )
        del self._regions[cid]
        return region

    def matview(self, name):
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown materialized view: {name}") from None

    def has_matview(self, name):
        return name.lower() in self._views

    def matviews(self):
        return list(self._views.values())

    def matviews_on(self, base_table):
        base_table = base_table.lower()
        return [v for v in self._views.values() if v.base_table == base_table]

    # ------------------------------------------------------------------
    # Currency regions
    # ------------------------------------------------------------------
    def create_region(self, cid, update_interval, update_delay):
        if cid in self._regions:
            raise CatalogError(f"region already exists: {cid}")
        region = RegionInfo(cid, update_interval, update_delay)
        self._regions[cid] = region
        return region

    def region(self, cid):
        try:
            return self._regions[cid]
        except KeyError:
            raise CatalogError(f"unknown currency region: {cid}") from None

    def regions(self):
        return list(self._regions.values())

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def resolve(self, name):
        """Return the TableEntry or MatViewDef for ``name``."""
        name = name.lower()
        if name in self._tables:
            return self._tables[name]
        if name in self._views:
            return self._views[name]
        raise CatalogError(f"unknown table or view: {name}")

    def __repr__(self):
        return (
            f"<Catalog tables={sorted(self._tables)} views={sorted(self._views)} "
            f"regions={sorted(self._regions)}>"
        )
