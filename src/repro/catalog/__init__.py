"""Catalog: table/view/index metadata, statistics, currency-region info."""

from repro.catalog.catalog import Catalog, MatViewDef, RegionInfo, TableEntry
from repro.catalog.statistics import ColumnStats, Histogram, TableStats

__all__ = [
    "Catalog",
    "ColumnStats",
    "Histogram",
    "MatViewDef",
    "RegionInfo",
    "TableEntry",
    "TableStats",
]
