"""Hash-partitioned storage tier: ``ShardedBackend`` plus the shard
replica / failover machinery (``ShardReplica``, ``ShardFailureDetector``)."""

from repro.shard.backend import ShardedBackend, ShardRoute
from repro.shard.replica import ShardFailureDetector, ShardReplica

__all__ = ["ShardedBackend", "ShardRoute", "ShardReplica", "ShardFailureDetector"]
