"""Hash-partitioned storage tier: ``ShardedBackend``."""

from repro.shard.backend import ShardedBackend, ShardRoute

__all__ = ["ShardedBackend", "ShardRoute"]
