"""A hash-partitioned back-end built from M :class:`BackendServer` shards.

``ShardedBackend`` implements the :class:`~repro.common.backend.Backend`
protocol over M independent partitions.  Each partition is a complete
single-node server — its own catalog, heap storage, transaction manager
(and therefore its own replication log), and heartbeat service — sharing
only the simulated clock and event scheduler.  The cache tier attaches
one distribution agent *per partition* (one per
:meth:`replication_sources` entry), so currency regions become
partition-scoped: a region's effective snapshot is the minimum over its
shard agents, and a result is only as current as its stalest
contributing shard.

Partitioning is by hash of the first primary-key column
(:func:`~repro.common.backend.stable_shard_hash`, deterministic across
processes).  Tables without a primary key are not partitioned — all
their rows live on one *home* shard chosen by hashing the table name.

Query routing (:meth:`ShardedBackend.route_select`) recognises four
shapes, in decreasing order of coordination avoided:

* ``single`` — every referenced table is pinned to one common shard by
  equality / IN sargs on its partition column (or is unpartitioned and
  homed there).  The whole statement runs on that shard; point lookups
  bypass cross-shard coordination entirely.
* ``scatter`` — one table, no aggregation/ordering/limit: the *same*
  select runs on every candidate shard and the row sets concatenate.
  Each shard holds a disjoint row subset, so the union is exact.
* ``fetch`` — one table but the select needs a final pass (GROUP BY,
  ORDER BY, DISTINCT, LIMIT, aggregates): the WHERE clause is pushed to
  each shard as a filtered fetch, the survivors are staged on a scratch
  server, and the original select runs there.
* ``gather`` — joins or subqueries spanning shards: referenced tables
  are staged whole on the scratch server and the select runs there.
  Correct but coordination-heavy, exactly as the paper's model predicts
  for cross-region consistency classes.

DML routes the same way: INSERT rows hash to their owning shard; UPDATE
and DELETE run on the pinned shards (broadcast when unpinned).  UPDATE
may not assign the partition column — that would migrate rows across
shards, which transactional replication per partition cannot express.

For benchmarking, the backend keeps a per-shard busy ledger mirroring
the fleet's: each sub-execution charges its simulated service time to
the shards it touched, so ``simulated_makespan()`` reflects partition
parallelism (max over shards, not sum).
"""

from repro.cache.backend import BackendServer
from repro.common.backend import Backend, ReplicationSource, stable_shard_hash
from repro.common.clock import SimulatedClock
from repro.common.errors import ExecutionError
from repro.common.scheduler import EventScheduler
from repro.engine.executor import ExecutionContext, PhaseTimings, QueryResult
from repro.obs.metrics import NULL_REGISTRY
from repro.optimizer.cost import CostModel
from repro.optimizer.query_info import _constant_value, _has_subquery, _split_conjuncts
from repro.replication.checkpoint import CheckpointStore
from repro.replication.heartbeat import HEARTBEAT_TABLE, heartbeat_schema
from repro.shard.replica import ShardFailureDetector, ShardReplica
from repro.sql import ast
from repro.sql.parser import parse

__all__ = ["ShardedBackend", "ShardRoute"]


class ShardRoute:
    """The routing decision for one select: mode + contributing shards."""

    __slots__ = ("mode", "shards", "table")

    def __init__(self, mode, shards, table=None):
        self.mode = mode  # "single" | "scatter" | "fetch" | "gather"
        self.shards = tuple(shards)
        self.table = table  # the lone FromTable for scatter/fetch

    def describe(self):
        shards = ",".join(f"p{s}" for s in self.shards)
        return f"{self.mode}({shards})"

    def __repr__(self):
        return f"<ShardRoute {self.describe()}>"


class _ShardedHeartbeats:
    """Heartbeat facade fanning region registration out to every shard.

    Each partition keeps its own ``heartbeat`` table and beats it through
    its own transaction manager, so per-shard replication lag is visible
    per shard — the whole point of partition-scoped currency regions.

    The facade remembers every registration so a promoted replica can be
    re-armed (:meth:`resume`): the registered rows reach the standby
    through log shipping, but the beat *jobs* lived on the dead primary
    and must be restarted against the new one.
    """

    def __init__(self, partitions):
        self._partitions = partitions
        self._intervals = {}  # cid -> beat interval
        self._started = set()

    def register_region(self, cid, beat_interval=2.0, start=True):
        self._intervals[cid] = beat_interval
        if start:
            self._started.add(cid)
        for partition in self._partitions:
            partition.heartbeats.register_region(cid, beat_interval=beat_interval, start=start)

    def start(self, cid, beat_interval=None):
        if beat_interval is not None:
            self._intervals[cid] = beat_interval
        self._started.add(cid)
        for partition in self._partitions:
            partition.heartbeats.start(cid, self._intervals.get(cid, 2.0))

    def stop(self, cid):
        self._started.discard(cid)
        for partition in self._partitions:
            partition.heartbeats.stop(cid)

    def beat(self, cid):
        for partition in self._partitions:
            partition.heartbeats.beat(cid)

    def suspend(self, server):
        """Cancel the beat jobs on one (crashed) server without touching
        the registration memory — its heartbeat rows freeze at the last
        acknowledged write, which is exactly the silence the failure
        detector measures."""
        for cid in self._started:
            server.heartbeats.stop(cid)

    def resume(self, shard):
        """Re-arm every registered region's beats on ``shard``'s current
        primary (called right after a promotion swaps it in)."""
        partition = self._partitions[shard]
        table = partition.catalog.table(HEARTBEAT_TABLE).table
        for cid, interval in self._intervals.items():
            if table.pk_lookup((cid,)) is None:
                # The row never replicated (registration raced the crash);
                # recreate it so beats have something to update.
                def _insert(txn, cid=cid):
                    txn.insert(HEARTBEAT_TABLE, (cid, partition.clock.now()))

                partition.txn_manager.run(_insert)
            if cid in self._started:
                partition.heartbeats.start(cid, interval)


class ShardedBackend(Backend):
    """M hash-partitioned :class:`BackendServer` shards behind one
    :class:`~repro.common.backend.Backend` surface.

    Drop-in for a single ``BackendServer``: ``MTCache``, ``CacheFleet``
    and the chaos harness consume it through the protocol unchanged.
    """

    def __init__(self, n_partitions=2, clock=None, scheduler=None, cost_model=None,
                 metrics=None, *, batch_size=None, engine=None, replicas=0,
                 replica_interval=0.2, failure_timeout=1.5,
                 detector_interval=0.25, durable_log=True):
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        self.clock = clock or SimulatedClock()
        self.scheduler = scheduler or EventScheduler(self.clock)
        self.cost_model = cost_model or CostModel()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        kwargs = {} if batch_size is None else {"batch_size": batch_size}
        if engine is not None:
            kwargs["engine"] = engine
        self._server_kwargs = kwargs
        self.partitions = [
            BackendServer(self.clock, self.scheduler, self.cost_model, **kwargs)
            for _ in range(n_partitions)
        ]
        self.heartbeats = _ShardedHeartbeats(self.partitions)
        # ---- Shard roles: primaries + K log-shipping replicas each ----
        #: Whether a crashed primary's log survives the crash.  True (the
        #: default) models a durable log device: promotion replays the
        #: unreplicated tail into the new primary and surfaces those
        #: transactions as *pending* (delayed, not lost).  False models a
        #: volatile log: the tail is surfaced as *lost* commits.
        self.durable_log = durable_log
        self.replica_interval = replica_interval
        #: shard -> [ShardReplica] standbys still tailing that shard.
        self.replicas = {}
        #: Durable replica ship positions (survive replica restarts).
        self.replica_checkpoints = CheckpointStore()
        self.shard_epochs = [0] * n_partitions
        self._down = [False] * n_partitions
        self._crashed_at = [None] * n_partitions
        #: Transaction ids dropped by non-durable promotions, per shard.
        self.lost_commits = {}
        #: Scalar records of every promotion, in order.
        self.promotions = []
        self._promotion_listeners = []
        self.detector = None
        if replicas > 0:
            for shard in range(n_partitions):
                self.replicas[shard] = [
                    self._build_replica(shard, r) for r in range(replicas)
                ]
            self.detector = ShardFailureDetector(
                self, failure_timeout=failure_timeout,
                check_interval=detector_interval,
            )
            self.detector.start(self.scheduler)
        # The coordinator catalog holds the global schema and *merged*
        # statistics; its heap tables stay empty (rows live on shards).
        # MTCache mirrors this catalog for its shadow tables.
        from repro.catalog.catalog import Catalog

        self.catalog = Catalog()
        self.catalog.create_table(HEARTBEAT_TABLE, heartbeat_schema(), primary_key=["cid"])
        #: table name -> partition column (first PK column), or None.
        self._partition_columns = {HEARTBEAT_TABLE: None}
        self._scratch = None
        # Per-shard busy ledger for open-loop simulations.
        self._busy_until = [0.0] * n_partitions
        self._busy_seconds = [0.0] * n_partitions
        self._load_epoch = self.clock.now()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def ddl_epoch(self):
        """Coordinator epoch: the sum over shard epochs.  Every fan-out
        DDL bumps each shard, so the sum moves exactly when any shard's
        schema or statistics do."""
        return sum(p.ddl_epoch for p in self.partitions)

    @property
    def partition_count(self):
        return len(self.partitions)

    def replication_sources(self):
        return [
            ReplicationSource(i, f"p{i}", p.catalog, p.txn_manager.log)
            for i, p in enumerate(self.partitions)
        ]

    def transaction_managers(self):
        return [
            (f"p{i}", p.txn_manager) for i, p in enumerate(self.partitions)
        ]

    def partition_column(self, table_name):
        return self._partition_columns.get(table_name.lower())

    def shard_of(self, table_name, key):
        if self._partition_columns.get(table_name.lower()) is None:
            return None
        return stable_shard_hash(key) % self.partition_count

    def _home_shard(self, table_name):
        """Where an unpartitioned table's rows all live."""
        return stable_shard_hash(table_name.lower()) % self.partition_count

    def _shards_for_table(self, table_name):
        if self._partition_columns.get(table_name.lower()) is None:
            return [self._home_shard(table_name)]
        return list(range(self.partition_count))

    def describe_topology(self):
        info = Backend.describe_topology(self)
        info["partition_columns"] = {
            name: col for name, col in sorted(self._partition_columns.items()) if col
        }
        info["rows_per_shard"] = [
            sum(len(entry.table) for entry in p.catalog.tables())
            for p in self.partitions
        ]
        info["shards"] = [
            {
                "shard": shard,
                "epoch": self.shard_epochs[shard],
                "primary": "down" if self._down[shard] else "up",
                "replicas": [
                    {
                        "replica": r.replica_id,
                        "applied_txn": r.applied_txn,
                        "lag": r.lag_behind(self.partitions[shard].txn_manager.log),
                    }
                    for r in self.replicas.get(shard, [])
                ],
            }
            for shard in range(self.partition_count)
        ]
        return info

    # ------------------------------------------------------------------
    # Shard roles: replicas, crash, failure detection, promotion
    # ------------------------------------------------------------------
    def _build_replica(self, shard, replica_id):
        server = BackendServer(
            self.clock, self.scheduler, self.cost_model, **self._server_kwargs
        )
        replica = ShardReplica(
            shard, replica_id, server, self.clock,
            checkpoints=self.replica_checkpoints,
        )
        replica.start(
            self.scheduler, self.replica_interval,
            lambda s=shard: self.partitions[s].txn_manager.log,
        )
        return replica

    @property
    def replica_count(self):
        """Total standbys across every shard (0: failover unavailable)."""
        return sum(len(reps) for reps in self.replicas.values())

    def _replica_servers(self):
        return [r.server for reps in self.replicas.values() for r in reps]

    def shard_is_down(self, shard):
        return self._down[shard % self.partition_count]

    def crashed_at(self, shard):
        return self._crashed_at[shard % self.partition_count]

    def shards_available(self, shards=None):
        """True when every declared shard (all, if undeclared) has a live
        primary — the role-level availability the network shim consults
        on top of its own outage windows."""
        if shards is None:
            return not any(self._down)
        return not any(self._down[s % self.partition_count] for s in shards)

    def last_heartbeat(self, shard):
        """Freshest heartbeat timestamp acknowledged by the shard's
        primary (None: no region registered yet).  The detector reads
        this even when the primary is fenced — the frozen rows *are* the
        silence being measured."""
        table = self.partitions[shard].catalog.table(HEARTBEAT_TABLE).table
        latest = None
        for _, values in table.scan():
            if latest is None or values[1] > latest:
                latest = values[1]
        return latest

    def add_promotion_listener(self, listener):
        """``listener(info)`` fires after every promotion; ``info`` holds
        the shard, new epoch, promoted replica, pending/lost txn ids and
        the new primary's catalog + log (for agent re-binding)."""
        self._promotion_listeners.append(listener)
        return listener

    def crash_primary(self, shard):
        """Fence one shard's primary: beats stop, the shard refuses work,
        and (with replicas) the failure detector will promote once the
        heartbeat silence exceeds its timeout."""
        shard = shard % self.partition_count
        if self._down[shard]:
            raise ExecutionError(f"shard p{shard} primary is already down")
        now = self.clock.now()
        self._down[shard] = True
        self._crashed_at[shard] = now
        self.heartbeats.suspend(self.partitions[shard])
        self.metrics.event(
            "backend_crash",
            f"shard p{shard} primary crashed (epoch {self.shard_epochs[shard]}, "
            f"{len(self.replicas.get(shard, []))} standby(s))",
            severity="error", time=now, shard=shard,
            epoch=self.shard_epochs[shard],
        )
        return now

    def promote_shard(self, shard, reason="manual"):
        """Promote the freshest standby of a fenced shard to primary.

        The winner is the replica with the highest applied transaction
        (ties: lowest replica id).  With a durable log the old primary's
        unreplicated tail is replayed into the winner first — those
        transactions surface as *pending* (acknowledged, delayed through
        failover, never lost); with ``durable_log=False`` the tail is
        surfaced as *lost* commits.  The shard epoch is bumped, heartbeat
        jobs re-arm on the new primary, and promotion listeners fire so
        the cache tier can re-resolve its agents.
        """
        shard = shard % self.partition_count
        if not self._down[shard]:
            raise ExecutionError(f"shard p{shard} primary is up; nothing to promote")
        standbys = self.replicas.get(shard)
        if not standbys:
            raise ExecutionError(f"shard p{shard} has no replicas to promote")
        old = self.partitions[shard]
        winner = max(standbys, key=lambda r: (r.applied_txn, -r.replica_id))
        tail_txns = sorted({
            record.txn_id for record in old.txn_manager.log.records
            if record.txn_id > winner.applied_txn
        })
        pending, lost = [], []
        if self.durable_log:
            pending = tail_txns
            winner.apply_from(old.txn_manager.log)
        else:
            lost = tail_txns
            self.lost_commits.setdefault(shard, []).extend(lost)
        winner.stop()
        standbys.remove(winner)
        new = winner.server
        # The serving copy inherits the primary's commit observers (the
        # history recorder watches commit points, not server objects) and
        # must out-epoch it so plan caches re-resolve instead of reusing
        # plans compiled against the dead server's statistics.
        new.txn_manager.observers = old.txn_manager.observers
        old.txn_manager.observers = []
        while new.ddl_epoch <= old.ddl_epoch:
            new.bump_ddl_epoch()
        self.partitions[shard] = new
        self._down[shard] = False
        self._crashed_at[shard] = None
        self.shard_epochs[shard] += 1
        epoch = self.shard_epochs[shard]
        self.heartbeats.resume(shard)
        now = self.clock.now()
        info = {
            "shard": shard, "epoch": epoch, "replica": winner.replica_id,
            "applied_txn": winner.applied_txn, "pending": pending,
            "lost": lost, "reason": reason, "time": now,
            "catalog": new.catalog, "log": new.txn_manager.log,
        }
        self.promotions.append({
            k: info[k] for k in
            ("shard", "epoch", "replica", "applied_txn", "pending", "lost",
             "reason", "time")
        })
        self.metrics.event(
            "promotion",
            f"shard p{shard} promoted replica {winner.replica_id} to primary "
            f"(epoch {epoch}, {reason}; {len(pending)} pending, "
            f"{len(lost)} lost commit(s))",
            severity="warning", time=now, shard=shard, epoch=epoch,
            replica=winner.replica_id, pending=len(pending), lost=len(lost),
            reason=reason,
        )
        for listener in list(self._promotion_listeners):
            listener(info)
        return info

    def ensure_primaries(self):
        """Recovery sweep: promote any still-fenced shard immediately
        (chaos recovery must not wait out the detector); a shard with no
        standbys gets its fenced primary revived in place."""
        restored = []
        for shard in range(self.partition_count):
            if not self._down[shard]:
                continue
            if self.replicas.get(shard):
                restored.append(self.promote_shard(shard, reason="recovery"))
            else:
                self._down[shard] = False
                self._crashed_at[shard] = None
                self.heartbeats.resume(shard)
                self.metrics.event(
                    "backend_crash",
                    f"shard p{shard} primary restarted in place (no standby)",
                    severity="info", time=self.clock.now(), shard=shard,
                    epoch=self.shard_epochs[shard],
                )
        return restored

    def catchup_replicas(self):
        """Ship every standby to its primary's current log tail (the
        post-recovery settle step before convergence audits)."""
        applied = 0
        for reps in self.replicas.values():
            for replica in reps:
                applied += replica.tail()
        return applied

    def _check_up(self, shard):
        if self._down[shard]:
            raise ExecutionError(
                f"shard p{shard} has no live primary (failover in progress)"
            )

    # ------------------------------------------------------------------
    # DDL & statistics (fan-out)
    # ------------------------------------------------------------------
    def create_table(self, sql_or_stmt):
        stmt = parse(sql_or_stmt) if isinstance(sql_or_stmt, str) else sql_or_stmt
        entry = self.catalog.create_table_from_ast(stmt)
        pk = entry.table.primary_key
        self._partition_columns[entry.name] = pk[0] if pk else None
        for server in self.partitions + self._replica_servers():
            server.create_table(stmt)
        return entry

    def create_index(self, sql_or_stmt):
        stmt = parse(sql_or_stmt) if isinstance(sql_or_stmt, str) else sql_or_stmt
        for server in self._replica_servers():
            server.create_index(stmt)
        return [p.create_index(stmt) for p in self.partitions]

    def refresh_statistics(self, table_name=None):
        """Recompute per-shard statistics, then the merged coordinator
        statistics (exact: pooled over every shard's rows)."""
        for server in self.partitions + self._replica_servers():
            server.refresh_statistics(table_name)
        entries = [self.catalog.table(table_name)] if table_name else self.catalog.tables()
        for entry in entries:
            self._merge_entry_stats(entry)

    def _merge_entry_stats(self, entry):
        from repro.catalog.statistics import ColumnStats, TableStats

        rows = [
            values
            for p in self.partitions
            for _, values in p.catalog.table(entry.name).table.scan()
        ]
        columns = {
            col.name: ColumnStats.from_values([r[i] for r in rows])
            for i, col in enumerate(entry.schema.columns)
        }
        entry.stats = TableStats(row_count=len(rows), columns=columns)

    def schedule_statistics_refresh(self, interval, caches=()):
        def tick():
            self.refresh_statistics()
            for cache in caches:
                cache.refresh_shadow_stats()

        return self.scheduler.every(interval, tick, name="auto-stats")

    # ------------------------------------------------------------------
    # Routing analysis
    # ------------------------------------------------------------------
    @staticmethod
    def _is_pcol_ref(expr, pcol, alias):
        return (
            isinstance(expr, ast.ColumnRef)
            and expr.name == pcol
            and expr.qualifier in (None, alias)
        )

    def _conjunct_shards(self, table_name, pcol, alias, conjunct):
        """Shards a conjunct restricts the table to, or None (no pin)."""
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            left, right = conjunct.left, conjunct.right
            if not self._is_pcol_ref(left, pcol, alias):
                left, right = right, left
            if self._is_pcol_ref(left, pcol, alias):
                ok, value = _constant_value(right)
                if ok:
                    return {self.shard_of(table_name, value)}
        elif (
            isinstance(conjunct, ast.InList)
            and not conjunct.negated
            and self._is_pcol_ref(conjunct.operand, pcol, alias)
        ):
            shards = set()
            for item in conjunct.items:
                ok, value = _constant_value(item)
                if not ok:
                    return None
                shards.add(self.shard_of(table_name, value))
            return shards
        return None

    def _pinned_shards(self, table_name, where, alias):
        """Shard set the WHERE clause pins ``table_name`` to, or None."""
        pcol = self._partition_columns.get(table_name.lower())
        if pcol is None:
            return {self._home_shard(table_name)}
        pinned = None
        for conjunct in _split_conjuncts(where):
            shards = self._conjunct_shards(table_name, pcol, alias, conjunct)
            if shards is not None:
                pinned = shards if pinned is None else pinned & shards
        return pinned

    @staticmethod
    def _select_exprs(select):
        exprs = [item.expr for item in select.items if item.expr is not None]
        for clause in (select.where, select.having):
            if clause is not None:
                exprs.append(clause)
        exprs.extend(select.group_by or [])
        exprs.extend(item.expr for item in (select.order_by or []))
        return exprs

    @classmethod
    def _select_has_subquery(cls, select):
        return any(_has_subquery(expr) for expr in cls._select_exprs(select))

    @staticmethod
    def _needs_final(select):
        if (
            select.group_by
            or select.having is not None
            or select.order_by
            or select.distinct
            or select.limit is not None
        ):
            return True
        return any(
            isinstance(node, ast.FuncCall) and node.is_aggregate
            for item in select.items
            if item.expr is not None
            for node in item.expr.walk()
        )

    def _referenced_tables(self, select, out):
        for item in select.from_items:
            if isinstance(item, ast.FromTable):
                out.add(item.name)
            else:
                self._referenced_tables(item.select, out)
        for expr in self._select_exprs(select):
            for node in expr.walk():
                if isinstance(node, (ast.ExistsSubquery, ast.InSubquery)):
                    self._referenced_tables(node.select, out)
        return out

    def route_select(self, select):
        """Decide where (and in what shape) a select runs."""
        everywhere = range(self.partition_count)
        if any(isinstance(i, ast.FromSubquery) for i in select.from_items):
            return ShardRoute("gather", everywhere)
        if self._select_has_subquery(select):
            return ShardRoute("gather", everywhere)
        pins = [
            (item, self._pinned_shards(item.name, select.where, item.alias))
            for item in select.from_items
        ]
        if pins and all(s is not None for _, s in pins):
            union = set().union(*(s for _, s in pins))
            if len(union) == 1:
                return ShardRoute("single", union)
        if len(pins) == 1:
            item, pinned = pins[0]
            shards = sorted(pinned) if pinned is not None else list(everywhere)
            if len(shards) == 1:
                return ShardRoute("single", shards, item)
            mode = "fetch" if self._needs_final(select) else "scatter"
            return ShardRoute(mode, shards, item)
        return ShardRoute("gather", everywhere)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, sql_or_stmt, ctx=None):
        stmt = parse(sql_or_stmt) if isinstance(sql_or_stmt, str) else sql_or_stmt
        if isinstance(stmt, ast.Explain):
            return self.explain(stmt.select)
        if isinstance(stmt, ast.Select):
            return self.execute_select(stmt, ctx=ctx)
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt)
        if isinstance(stmt, ast.Update):
            return self._execute_update(stmt)
        if isinstance(stmt, ast.Delete):
            return self._execute_delete(stmt)
        if isinstance(stmt, ast.CreateTable):
            return self.create_table(stmt)
        if isinstance(stmt, ast.CreateIndex):
            return self.create_index(stmt)
        raise ExecutionError(f"unsupported statement: {type(stmt).__name__}")

    def execute_remote(self, sql, shards=None):
        """Rows-only endpoint; honours an optimizer shard pin.

        A pin means the caller proved the statement only touches rows on
        those partitions (a guarded point plan), so the select runs there
        directly — the single-shard case skips routing analysis entirely.
        """
        stmt = parse(sql) if isinstance(sql, str) else sql
        if shards is not None and isinstance(stmt, ast.Select):
            pinned = sorted({s % self.partition_count for s in shards})
            rows = []
            for shard in pinned:
                rows.extend(self._run_on(shard, stmt).rows)
            return rows
        result = self.execute(stmt)
        return result.rows

    def _run_on(self, shard, select, ctx=None):
        self._check_up(shard)
        result = self.partitions[shard].execute_select(select, ctx=ctx)
        self._charge(shard, result.timings.total)
        return result

    def execute_select(self, select, ctx=None):
        ctx = ctx or ExecutionContext(clock=self.clock)
        route = self.route_select(select)
        self.metrics.counter(
            "shard_route_total",
            labels={"mode": route.mode},
            help="backend select routings by mode",
        ).inc()
        if route.mode == "single":
            return self._run_on(route.shards[0], select, ctx)
        if route.mode == "scatter":
            legs = [self._run_on(shard, select, ctx) for shard in route.shards]
            rows = [row for leg in legs for row in leg.rows]
            timings = PhaseTimings(run=max(leg.timings.total for leg in legs))
            return QueryResult(legs[0].columns, rows, timings, ctx)
        if route.mode == "fetch":
            return self._execute_fetch(select, route, ctx)
        return self._execute_gather(select, ctx)

    def _scratch_server(self):
        """The coordinator's scratch server for gather-phase finals."""
        if self._scratch is None:
            self._scratch = BackendServer(self.clock, cost_model=self.cost_model)
        return self._scratch

    def _stage_table(self, scratch, name, rows):
        """(Re)fill a scratch copy of ``name`` with gathered rows."""
        coord = self.catalog.table(name)
        if not scratch.catalog.has_table(name):
            entry = scratch.catalog.create_table(
                name, coord.schema, primary_key=coord.table.primary_key
            )
            scratch.txn_manager.register_table(entry.table)
        entry = scratch.catalog.table(name)
        entry.table.truncate()
        for values in rows:
            entry.table.insert(tuple(values))
        entry.refresh_stats()

    def _execute_fetch(self, select, route, ctx):
        """Push the WHERE to each shard, stage survivors, run the final."""
        item = route.table
        fetch = ast.Select(
            [ast.SelectItem(None, star=True, star_qualifier=item.alias)],
            [ast.FromTable(item.name, item.alias)],
            where=select.where,
        )
        rows = []
        for shard in route.shards:
            rows.extend(self._run_on(shard, fetch, ctx).rows)
        scratch = self._scratch_server()
        self._stage_table(scratch, item.name, rows)
        return scratch.execute_select(select, ctx=ctx)

    def _execute_gather(self, select, ctx):
        """Stage every referenced table whole and run the select locally."""
        scratch = self._scratch_server()
        names = sorted(self._referenced_tables(select, set()))
        for name in names:
            for shard in self._shards_for_table(name):
                self._check_up(shard)
        for name in names:
            rows = [
                values
                for shard in self._shards_for_table(name)
                for _, values in self.partitions[shard].catalog.table(name).table.scan()
            ]
            self._stage_table(scratch, name, rows)
        return scratch.execute_select(select, ctx=ctx)

    def estimate(self, select):
        if isinstance(select, str):
            select = parse(select)
        route = self.route_select(select)
        shards = route.shards if route.mode != "gather" else range(self.partition_count)
        cost = rows = 0.0
        width = 64.0
        for shard in shards:
            c, r, w = self.partitions[shard].estimate(select)
            cost += c
            rows += r
            width = max(width, w)
        return cost, rows, width

    def optimize(self, select):
        """Plan inspection: delegate to the first routed shard."""
        if isinstance(select, str):
            select = parse(select)
        route = self.route_select(select)
        return self.partitions[route.shards[0]].optimize(select)

    def explain(self, select):
        if isinstance(select, str):
            select = parse(select)
        route = self.route_select(select)
        shard_result = self.partitions[route.shards[0]].explain(select)
        lines = [(f"shard route: {route.describe()}",)] + list(shard_result.rows)
        ctx = ExecutionContext(clock=self.clock)
        return QueryResult(["plan"], lines, PhaseTimings(), ctx)

    # ------------------------------------------------------------------
    # DML routing
    # ------------------------------------------------------------------
    def _insert_shard(self, stmt, columns, value_row):
        """Owning shard for one INSERT value row."""
        from repro.engine.expressions import RowBinding, compile_expr, make_env

        pcol = self._partition_columns.get(stmt.table)
        if pcol is None:
            return self._home_shard(stmt.table)
        try:
            position = columns.index(pcol)
        except ValueError:
            raise ExecutionError(
                f"INSERT into {stmt.table} must supply partition column {pcol}"
            )
        expr_ctx = self.partitions[0].placement.expr_ctx
        fn = compile_expr(value_row[position], RowBinding([]), expr_ctx)
        return stable_shard_hash(fn(make_env(()))) % self.partition_count

    def _execute_insert(self, stmt):
        entry = self.catalog.table(stmt.table)
        columns = [c.lower() for c in (stmt.columns or entry.schema.names())]
        buckets = {}
        for value_row in stmt.rows:
            if len(value_row) != len(columns):
                raise ExecutionError(
                    f"INSERT arity mismatch: {len(value_row)} values, {len(columns)} columns"
                )
            shard = self._insert_shard(stmt, columns, value_row)
            buckets.setdefault(shard, []).append(value_row)
        # All-or-nothing liveness gate: refuse the whole statement if any
        # owning shard is mid-failover (no partial multi-shard inserts).
        for shard in sorted(buckets):
            self._check_up(shard)
        total = 0
        for shard, rows in sorted(buckets.items()):
            sub = ast.Insert(stmt.table, stmt.columns, rows)
            total += self.partitions[shard].execute(sub)
        return total

    def _dml_shards(self, stmt):
        """Shards a DML statement must run on (WHERE-pinned or all)."""
        pinned = self._pinned_shards(stmt.table, stmt.where, stmt.table)
        if pinned is None:
            return self._shards_for_table(stmt.table)
        return sorted(pinned)

    def dml_shards(self, stmt):
        """Best-effort shard pin for a DML statement (None: unknown).

        The fleet's write path uses this to scope its availability check:
        a write to a healthy shard must not block on another shard's
        failover, while a write to the fenced shard retries until its
        replica is promoted.
        """
        if isinstance(stmt, str):
            stmt = parse(stmt)
        try:
            if isinstance(stmt, ast.Insert):
                entry = self.catalog.table(stmt.table)
                columns = [c.lower() for c in (stmt.columns or entry.schema.names())]
                return sorted({
                    self._insert_shard(stmt, columns, row) for row in stmt.rows
                })
            if isinstance(stmt, (ast.Update, ast.Delete)):
                return list(self._dml_shards(stmt))
        except Exception:
            return None
        return None

    def _execute_update(self, stmt):
        pcol = self._partition_columns.get(stmt.table)
        if pcol is not None and any(col.lower() == pcol for col, _ in stmt.assignments):
            raise ExecutionError(
                f"UPDATE may not assign partition column {stmt.table}.{pcol}: "
                "rows cannot migrate across shards"
            )
        shards = self._dml_shards(stmt)
        for shard in shards:
            self._check_up(shard)
        return sum(self.partitions[shard].execute(stmt) for shard in shards)

    def _execute_delete(self, stmt):
        shards = self._dml_shards(stmt)
        for shard in shards:
            self._check_up(shard)
        return sum(self.partitions[shard].execute(stmt) for shard in shards)

    def bulk_load(self, table_name, rows):
        name = table_name.lower()
        pcol = self._partition_columns.get(name)
        if pcol is None:
            return self.partitions[self._home_shard(name)].bulk_load(name, rows)
        position = self.catalog.table(name).schema.index_of(pcol)
        buckets = [[] for _ in self.partitions]
        for row in rows:
            buckets[stable_shard_hash(row[position]) % self.partition_count].append(row)
        return sum(
            p.bulk_load(name, bucket)
            for p, bucket in zip(self.partitions, buckets)
            if bucket
        )

    # ------------------------------------------------------------------
    # Simulation helpers
    # ------------------------------------------------------------------
    def run_for(self, seconds):
        return self.scheduler.run_for(seconds)

    def _charge(self, shard, seconds):
        """Charge simulated service time to one shard's busy ledger."""
        start = max(self.clock.now(), self._busy_until[shard])
        self._busy_until[shard] = start + seconds
        self._busy_seconds[shard] += seconds

    def reset_load(self):
        self._load_epoch = self.clock.now()
        self._busy_until = [self._load_epoch] * self.partition_count
        self._busy_seconds = [0.0] * self.partition_count

    def simulated_makespan(self):
        """Finish time of the busiest shard since the last ``reset_load``
        (the open-loop QPS denominator: shards drain in parallel)."""
        return max(0.0, max(self._busy_until) - self._load_epoch)

    def shard_load(self):
        """Per-shard accumulated busy seconds."""
        return list(self._busy_seconds)

    def __repr__(self):
        return (
            f"<ShardedBackend partitions={self.partition_count} "
            f"tables={sorted(t.name for t in self.catalog.tables())}>"
        )
