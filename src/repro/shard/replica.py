"""Log-shipping shard replicas and the heartbeat failure detector.

Each :class:`ShardReplica` is a warm standby for one partition of a
:class:`~repro.shard.ShardedBackend`: a complete
:class:`~repro.cache.backend.BackendServer` of its own whose tables are
kept in sync by *tailing the primary's replication log* — the same
transactional-replication machinery the cache tier's
:class:`~repro.replication.agent.DistributionAgent` uses, applied at
full-table granularity.  Replay is idempotent (every op locates the row
by primary key first, so a re-applied prefix is a no-op) and
txn-faithful: the applied records are appended verbatim to the replica's
*own* replication log with their original transaction ids and commit
times, so after a promotion the replica's log is a prefix-consistent
copy of the primary's and cache agents resume tailing it from their
checkpoints without missing or re-counting a transaction.

Durability mirrors the cache tier: each replica checkpoints its
``(applied_txn, snapshot_time)`` into a shared
:class:`~repro.replication.checkpoint.CheckpointStore` after every
apply batch, and :meth:`ShardReplica.resume_from_checkpoint` rebuilds
the tail position after a (simulated) replica restart.

:class:`ShardFailureDetector` watches the heartbeat rows on every
primary (the paper's §3.1 heartbeat table doubles as the liveness
signal): a primary whose freshest heartbeat row is older than
``failure_timeout`` — and which the cluster manager has fenced
(``crash_primary``) — gets its freshest replica promoted.  Everything
runs on the simulated scheduler, so detection latency is deterministic
per seed.
"""

from repro.txn.log import LogRecord, Operation

__all__ = ["ShardReplica", "ShardFailureDetector"]


class ShardReplica:
    """One warm standby tailing a shard primary's replication log."""

    def __init__(self, shard_id, replica_id, server, clock, *,
                 checkpoints=None, checkpoint_key=None):
        self.shard_id = shard_id
        self.replica_id = replica_id
        #: The standby's own BackendServer (schema kept in lockstep by
        #: the owning ShardedBackend's fan-out DDL).
        self.server = server
        self.clock = clock
        #: Last transaction id applied from the primary's log.
        self.applied_txn = 0
        #: Commit time of the last applied transaction.
        self.snapshot_time = 0.0
        self.checkpoints = checkpoints
        self.checkpoint_key = checkpoint_key or f"shard{shard_id}/r{replica_id}"
        self._log_supplier = None
        self._event = None

    # ------------------------------------------------------------------
    # Ship cadence
    # ------------------------------------------------------------------
    def start(self, scheduler, interval, log_supplier):
        """Begin tailing: ``log_supplier()`` must return the *current*
        primary's replication log (a callable, so a promotion that swaps
        the primary re-points every surviving replica for free)."""
        self._log_supplier = log_supplier
        if self._event is not None:
            self._event.cancel()
        self._event = scheduler.every(
            interval, self.tail, name=f"replica:{self.checkpoint_key}"
        )
        return self._event

    def stop(self):
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def tail(self, cutoff=None):
        """Apply every log record past ``applied_txn`` (commit time <=
        ``cutoff``, default now).  Returns the number of transactions
        applied."""
        if self._log_supplier is None:
            return 0
        return self.apply_from(self._log_supplier(), cutoff=cutoff)

    def apply_from(self, log, cutoff=None):
        """Replay ``log``'s tail into the standby server, mirroring each
        record into the standby's own log (same txn id, same commit
        time) so the copy is itself a valid replication source."""
        cutoff = self.clock.now() if cutoff is None else cutoff
        manager = self.server.txn_manager
        applied = set()
        # Compare against the position at entry, not the advancing
        # ``applied_txn`` — a transaction's records share one txn id, and
        # advancing mid-transaction would skip every op after the first.
        floor = self.applied_txn
        for record in log.records:
            if record.txn_id <= floor:
                continue
            if record.commit_time > cutoff:
                break
            self._apply_record(record)
            manager.log.append(LogRecord(
                record.txn_id, record.commit_time, record.table, record.op,
                record.pk, values=record.values, old_values=record.old_values,
            ))
            if record.txn_id not in applied:
                applied.add(record.txn_id)
                manager.committed.append((record.txn_id, record.commit_time))
            self.applied_txn = record.txn_id
            self.snapshot_time = max(self.snapshot_time, record.commit_time)
        if applied:
            # Keep the standby's txn counter in lockstep so DML after a
            # promotion continues the primary's id sequence.
            manager._next_txn_id = max(manager._next_txn_id, self.applied_txn + 1)
            self._checkpoint()
        return len(applied)

    def _apply_record(self, record):
        """One record, applied idempotently by primary-key seek."""
        table = self.server.catalog.table(record.table).table
        rid = table.pk_lookup(record.pk)
        if record.op is Operation.DELETE:
            if rid is not None:
                table.delete(rid, xtime=record.txn_id,
                             commit_time=record.commit_time)
        elif rid is None:
            table.insert(tuple(record.values), xtime=record.txn_id,
                         commit_time=record.commit_time)
        else:
            table.update(rid, tuple(record.values), xtime=record.txn_id,
                         commit_time=record.commit_time)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _checkpoint(self):
        if self.checkpoints is not None:
            self.checkpoints.save(
                self.checkpoint_key, self.applied_txn, self.snapshot_time,
                saved_at=self.clock.now(),
            )

    def resume_from_checkpoint(self):
        """Adopt the durable tail position (after a replica restart whose
        in-memory position was lost).  Returns the checkpoint, or None."""
        if self.checkpoints is None:
            return None
        checkpoint = self.checkpoints.load(self.checkpoint_key)
        if checkpoint is not None:
            self.applied_txn = checkpoint.applied_txn
            self.snapshot_time = checkpoint.snapshot_time
        return checkpoint

    def lag_behind(self, log):
        """Transactions in ``log`` this replica has not applied yet."""
        last = log.records[-1].txn_id if log.records else 0
        return max(0, last - self.applied_txn)

    def __repr__(self):
        return (
            f"<ShardReplica p{self.shard_id}/r{self.replica_id} "
            f"applied={self.applied_txn}>"
        )


class ShardFailureDetector:
    """Heartbeat-silence detector driving replica promotion.

    Every ``check_interval`` simulated seconds it inspects each fenced
    shard's heartbeat table (the freshest ``ts`` over all region rows on
    the *primary* — the last write the dead server acknowledged) and,
    once the silence exceeds ``failure_timeout``, asks the backend to
    promote.  Shards without replicas, and shards whose primary has not
    been fenced by ``crash_primary`` (split-brain guard: silence alone
    never deposes a reachable primary), are skipped.  No randomness is
    drawn anywhere, so detection latency is a pure function of the crash
    time and the heartbeat/check cadences.
    """

    def __init__(self, backend, *, failure_timeout=1.5, check_interval=0.25):
        self.backend = backend
        self.failure_timeout = failure_timeout
        self.check_interval = check_interval
        self.detections = []  # (shard, detected_at, silence) in order
        self._event = None

    def start(self, scheduler):
        if self._event is not None:
            self._event.cancel()
        self._event = scheduler.every(
            self.check_interval, self.check, name="shard-failure-detector"
        )
        return self._event

    def stop(self):
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def check(self):
        """One detection sweep; returns the shards promoted this sweep."""
        backend = self.backend
        now = backend.clock.now()
        promoted = []
        for shard in range(backend.partition_count):
            if not backend.shard_is_down(shard):
                continue
            if not backend.replicas.get(shard):
                continue
            last_beat = backend.last_heartbeat(shard)
            silence = now - (last_beat if last_beat is not None
                             else backend.crashed_at(shard))
            if silence <= self.failure_timeout:
                continue
            self.detections.append((shard, now, silence))
            backend.promote_shard(shard, reason="heartbeat-silence")
            promoted.append(shard)
        return promoted

    def __repr__(self):
        return (
            f"<ShardFailureDetector timeout={self.failure_timeout:g}s "
            f"every={self.check_interval:g}s>"
        )
