"""repro — Relaxed Currency and Consistency: "Good Enough" in SQL.

A from-scratch reproduction of Guo, Larson, Ramakrishnan & Goldstein
(SIGMOD 2004): explicit currency & consistency (C&C) constraints in SQL,
enforced by a mid-tier database cache (MTCache) whose cost-based optimizer
checks consistency at compile time and currency at run time through
SwitchUnion operators with heartbeat-based currency guards.

Quickstart::

    from repro import BackendServer, MTCache

    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v FLOAT, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10.0)")
    backend.refresh_statistics()

    cache = MTCache(backend)
    cache.create_region("r1", update_interval=10, update_delay=2)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r1")

    cache.run_for(15)  # let replication propagate
    result = cache.execute("SELECT t.id, t.v FROM t CURRENCY BOUND 60 SEC ON (t)")
    print(result.rows, result.plan.summary())
"""

from repro.cache.backend import BackendServer
from repro.cache.mtcache import FallbackPolicy, MTCache
from repro.common.backend import Backend, ReplicationSource
from repro.cc.constraint import CCConstraint, CCTuple, constraint_from_select
from repro.cc.properties import BACKEND_REGION, ConsistencyProperty
from repro.cc.timeline import TimelineSession
from repro.common.clock import SimulatedClock, WallClock
from repro.common.errors import (
    CircuitOpenError,
    ConsistencyError,
    CurrencyError,
    NetworkError,
    OptimizerError,
    ParseError,
    ReproError,
)
from repro.engine.executor import QueryResult
from repro.fleet import CacheFleet, FleetConfig, FleetRouter, SimulatedNetwork
from repro.obs import MetricsRegistry, NullRegistry, Span
from repro.optimizer.cost import CostModel, guard_probability
from repro.semantics.checker import ResultChecker
from repro.session import Session, SessionToken
from repro.shard import ShardedBackend
from repro.sql.parser import parse, parse_expression

__version__ = "1.0.0"

__all__ = [
    "BACKEND_REGION",
    "Backend",
    "BackendServer",
    "CCConstraint",
    "CCTuple",
    "CacheFleet",
    "CircuitOpenError",
    "ConsistencyError",
    "ConsistencyProperty",
    "CostModel",
    "CurrencyError",
    "FallbackPolicy",
    "FleetConfig",
    "FleetRouter",
    "MTCache",
    "MetricsRegistry",
    "NetworkError",
    "NullRegistry",
    "OptimizerError",
    "ParseError",
    "QueryResult",
    "ReplicationSource",
    "ReproError",
    "ResultChecker",
    "Session",
    "SessionToken",
    "ShardedBackend",
    "SimulatedClock",
    "SimulatedNetwork",
    "Span",
    "TimelineSession",
    "WallClock",
    "constraint_from_select",
    "guard_probability",
    "parse",
    "parse_expression",
]
