"""MTCache: the mid-tier database cache (paper §3).

The cache DBMS holds a *shadow* copy of the back-end schema (empty tables,
back-end statistics), local materialized views grouped into currency
regions, and the local heartbeat tables those regions replicate.  All
queries are submitted here; the optimizer decides — entirely cost-based —
whether to compute each piece locally, remotely, or mixed, subject to the
query's C&C constraint:

* consistency is enforced at compile time through delivered/required plan
  properties;
* currency is enforced at run time by SwitchUnion operators whose selector
  (the *currency guard*) tests the region's replicated heartbeat;
* inserts/deletes/updates are forwarded transparently to the back-end.
"""

import enum
import hashlib
from collections import OrderedDict

from repro.catalog.catalog import Catalog
from repro.cc.properties import BACKEND_REGION, ConsistencyProperty
from repro.cc.timeline import TimelineSession
from repro.common.errors import CatalogError, CurrencyError, OptimizerError
from repro.engine import operators as ops
from repro.engine.analyze import analysis_rows, instrument, render_analysis
from repro.engine.executor import ExecutionContext, Executor, PhaseTimings, QueryResult
from repro.engine.expressions import OutputCol, RowBinding, compile_expr
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.trace import TraceLog
from repro.optimizer.candidates import Candidate, stamp_estimates
from repro.optimizer.cost import guard_probability
from repro.optimizer.optimizer import Optimizer, OptimizedPlan
from repro.optimizer.placement import PlacementProvider, combine_conjuncts
from repro.optimizer.query_info import analyze_select
from repro.plan.snapshot import (
    SnapshotUnsupported,
    instantiate_snapshot,
    serialize_plan,
)
from repro.replication.agent import DistributionAgent
from repro.replication.checkpoint import CheckpointStore
from repro.replication.heartbeat import heartbeat_schema, local_heartbeat_name
from repro.sql import ast
from repro.sql.compare import equal_ignoring_qualifiers
from repro.sql.parser import parse, parse_expression
from repro.storage.table import HeapTable


class CachePlacement(PlacementProvider):
    """Placement provider for the cache: local views + remote queries.

    ``probability_aware`` toggles the §3.2.4 guard-probability term in the
    SwitchUnion cost.  When off, guarded plans are costed as if the guard
    always passed (p = 1) — the ablation baseline: the optimizer then
    overestimates how useful a rarely-fresh replica is.
    """

    def __init__(self, mtcache, cost_model, probability_aware=True):
        super().__init__(cost_model, clock=mtcache.clock)
        self.mtcache = mtcache
        self.probability_aware = probability_aware

    # ------------------------------------------------------------------
    # Local views (with currency guards)
    # ------------------------------------------------------------------
    def access_candidates(self, operand, query_info):
        candidates = []
        bound = query_info.constraint.bound_for(operand.alias)
        if bound <= 0:
            return candidates  # local data can never be 0-stale
        for view in self._matching_views(operand):
            region = self.mtcache.catalog.region(view.region)
            if bound < region.update_delay and bound != ast.UNBOUNDED:
                # Compile-time pruning: the region can never guarantee the
                # requested currency (paper §3.2.2, last paragraph).
                continue
            candidates.extend(self._view_candidates(operand, query_info, view, region, bound))
        return candidates

    def _matching_views(self, operand):
        """View matching: same base table, covering columns, predicate
        implied by the query's conjuncts."""
        for view in self.mtcache.catalog.matviews_on(operand.table_name):
            if not operand.needed_columns <= set(view.columns):
                continue
            if view.predicate is not None and not any(
                equal_ignoring_qualifiers(view.predicate, conjunct)
                for conjunct in operand.conjuncts
            ):
                continue
            yield view

    def _view_candidates(self, operand, query_info, view, region, bound):
        alias = operand.alias
        skip = tuple(
            conjunct
            for conjunct in operand.conjuncts
            if view.predicate is not None
            and equal_ignoring_qualifiers(view.predicate, conjunct)
        )
        binding = RowBinding([OutputCol(c, alias) for c in view.columns])
        local_delivered = ConsistencyProperty.single(region.cid, [alias])
        locals_ = self.base_table_candidates(
            view.table,
            alias,
            operand.conjuncts,
            operand.sargs,
            view.stats,
            local_delivered,
            "view",
            binding=binding,
            skip_conjuncts=skip,
        )
        strict = self.mtcache.table_consistency(view.base_table) == "strict"
        if bound == ast.UNBOUNDED and not strict:
            # No guard needed: any staleness is acceptable.  (Consistency
            # still matters, hence the region id in the property.)  Strict
            # tables keep the guard even unbounded: the selector must be
            # able to bounce a read whose session floor outruns the local
            # replica, however stale the query is willing to go.
            return locals_

        # Finite bound: wrap each local alternative in a SwitchUnion whose
        # selector is the currency guard over the region's local heartbeat.
        # A plan whose sargs pin the operand to one partition only answers
        # for that shard's replication lag (and its remote fallback only
        # hits that shard).
        shard = self.mtcache.shard_hint(operand)
        remote = self._operand_remote_candidate(operand, shard=shard)
        if self.probability_aware:
            p = guard_probability(bound, region.update_delay, region.update_interval)
        else:
            p = 1.0
        guarded = []
        common_binding = remote.binding  # needed columns, sorted
        needed = sorted(operand.needed_columns)
        delivered = ConsistencyProperty.single(("guarded", region.cid, bound), [alias])
        for local in locals_:
            def build(local=local, remote=remote, view=view, bound=bound,
                      needed=needed, common_binding=common_binding, shard=shard):
                # Project the local branch to the remote branch's column
                # order so both SwitchUnion inputs agree — unless the view
                # already produces exactly those columns in that order.
                if [c.name for c in local.binding.columns] == needed:
                    local_branch = local.operator()
                else:
                    exprs = [
                        compile_expr(ast.ColumnRef(c, qualifier=operand.alias),
                                     local.binding, self.expr_ctx)
                        for c in needed
                    ]
                    local_branch = stamp_estimates(
                        ops.Project(local.operator(), exprs, common_binding), local.rows
                    )
                selector = self.mtcache.make_currency_guard(view, bound, shard=shard)
                return ops.SwitchUnion(
                    [local_branch, remote.operator()],
                    selector,
                    common_binding,
                    label=view.name,
                )

            cost = self.cost_model.switch_union(
                p, local.cost + self.cost_model.project(local.rows), remote.cost
            )
            guarded.append(
                Candidate(
                    build,
                    cost,
                    local.rows,
                    remote.width,
                    common_binding,
                    delivered,
                    [alias],
                    "guarded-view",
                    detail=f"{view.name}|{local.kind}",
                )
            )
        return guarded

    # ------------------------------------------------------------------
    # Remote candidates
    # ------------------------------------------------------------------
    def _operand_remote_candidate(self, operand, shard=None):
        """A remote query fetching one operand (σπ of a base table)."""
        needed = sorted(operand.needed_columns)
        select = ast.Select(
            [ast.SelectItem(ast.ColumnRef(c, qualifier=operand.alias)) for c in needed],
            [ast.FromTable(operand.table_name, operand.alias)],
            where=combine_conjuncts(operand.conjuncts),
        )
        binding = RowBinding([OutputCol(c, operand.alias) for c in needed])
        width = sum(operand.stats.column(c).avg_width for c in needed)
        return self._remote_candidate(
            select, binding, [operand.alias], "remote-fetch", width=width,
            shards=None if shard is None else (shard,),
        )

    def subset_remote_candidate(self, aliases, query_info):
        """One remote query computing the σπ⋈ of an alias subset."""
        aliases = frozenset(aliases)
        items = []
        binding_cols = []
        from_items = []
        conjuncts = []
        width = 0.0
        for alias in sorted(aliases):
            operand = query_info.operand(alias)
            from_items.append(ast.FromTable(operand.table_name, alias))
            for column in sorted(operand.needed_columns):
                items.append(ast.SelectItem(ast.ColumnRef(column, qualifier=alias)))
                binding_cols.append(OutputCol(column, alias))
                width += operand.stats.column(column).avg_width
            conjuncts.extend(operand.conjuncts)
        for jc in query_info.join_conjuncts:
            if jc.left_alias in aliases and jc.right_alias in aliases:
                conjuncts.append(jc.expr)
        for conjunct in query_info.residual_conjuncts:
            refs = {r.qualifier for r in conjunct.column_refs() if r.qualifier}
            if refs <= aliases:
                conjuncts.append(conjunct)
        select = ast.Select(items, from_items, where=combine_conjuncts(conjuncts))
        binding = RowBinding(binding_cols)
        return self._remote_candidate(select, binding, aliases, "remote-subset", width=width)

    def whole_query_candidate(self, query_info):
        """Ship the entire statement (minus the currency clause)."""
        original = query_info.select
        select = ast.Select(
            original.items,
            original.from_items,
            where=original.where,
            group_by=original.group_by,
            having=original.having,
            order_by=original.order_by,
            distinct=original.distinct,
            currency=None,
            limit=original.limit,
        )
        binding = RowBinding([OutputCol(name) for _, name in query_info.items])
        return self._remote_candidate(
            select,
            binding,
            query_info.aliases(),
            "remote-query",
            width=self._items_width(query_info),
        )

    @staticmethod
    def _items_width(query_info):
        """Estimated byte width of the query's output row (what the whole-
        query remote plan actually ships)."""
        width = 0.0
        for expr, _ in query_info.items:
            if isinstance(expr, ast.ColumnRef):
                for alias in query_info.aliases():
                    operand = query_info.operand(alias)
                    if (expr.qualifier in (None, alias)) and operand.schema.has_column(expr.name):
                        width += operand.stats.column(expr.name).avg_width
                        break
                else:
                    width += 8.0
            else:
                width += 8.0
        return width

    def _remote_candidate(self, select, binding, aliases, kind, width=None, shards=None):
        backend = self.mtcache.backend
        sql = select.to_sql()
        cost, rows, est_width = backend.estimate(select)
        if width is None or width <= 0:
            width = est_width
        total = cost + self.cost_model.transfer(rows, max(width, 1.0))
        delivered = ConsistencyProperty.single(BACKEND_REGION, aliases)

        def build(sql=sql, binding=binding, shards=shards):
            if shards is None:
                return ops.RemoteQuery(sql, binding, self.mtcache.remote_executor)

            def pinned_executor(q):
                return self.mtcache.remote_executor(q, shards=shards)

            return ops.RemoteQuery(sql, binding, pinned_executor, shards=shards)

        return Candidate(build, total, rows, width, binding, delivered, aliases, kind, detail=sql[:60])


class QueryLogEntry:
    """One executed query, as remembered by the monitoring log."""

    __slots__ = ("sql", "summary", "branches", "remote_queries", "rows",
                 "elapsed", "sim_time", "warnings")

    def __init__(self, sql, summary, branches, remote_queries, rows, elapsed,
                 sim_time, warnings):
        self.sql = sql
        self.summary = summary
        self.branches = branches
        self.remote_queries = remote_queries
        self.rows = rows
        self.elapsed = elapsed
        self.sim_time = sim_time
        self.warnings = warnings

    @property
    def served_locally(self):
        return bool(self.branches) and all(i == 0 for _, i in self.branches)

    def __repr__(self):
        where = "local" if self.served_locally else "remote/mixed"
        return f"QueryLogEntry({self.sql[:40]!r}... {where}, {self.rows} rows)"


class QueryLog:
    """A bounded ring of QueryLogEntry records."""

    def __init__(self, capacity=200):
        self.capacity = capacity
        self._entries = []

    def record(self, entry):
        self._entries.append(entry)
        if len(self._entries) > self.capacity:
            del self._entries[: len(self._entries) - self.capacity]

    def recent(self, n=10):
        return list(self._entries[-n:])

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def clear(self):
        self._entries.clear()

    def summary(self):
        """Aggregate counters over the retained window."""
        total = len(self._entries)
        local = sum(1 for e in self._entries if e.served_locally)
        remote_queries = sum(len(e.remote_queries) for e in self._entries)
        return {
            "queries": total,
            "local": local,
            "local_fraction": local / total if total else 0.0,
            "remote_queries": remote_queries,
        }


class FallbackPolicy(enum.Enum):
    """What a currency guard does when local data is not fresh enough
    (paper §1's possible actions)."""

    REMOTE = "remote"
    ERROR = "error"
    SERVE_STALE = "serve_stale"


def _coerce_policy(value):
    """Validate a fallback policy (enum member or its string value,
    case-insensitive).  Rejections name the accepted values so a typo'd
    knob is a one-glance fix."""
    if isinstance(value, FallbackPolicy):
        return value
    try:
        return FallbackPolicy(str(value).lower())
    except ValueError:
        allowed = ", ".join(p.value for p in FallbackPolicy)
        raise ValueError(
            f"unknown fallback policy: {value!r} (expected one of: {allowed})"
        ) from None


class MTCache:
    """The cache DBMS front-end applications talk to.

    :meth:`execute` is the single public query entry point; it accepts any
    supported statement and, for SELECTs, returns a
    :class:`~repro.engine.executor.QueryResult` with the stable contract
    ``rows`` / ``columns`` / ``plan`` / ``timings`` / ``routing`` /
    ``warnings``.

    Tuning knobs are keyword-only:

    * ``cost_model`` — overrides the back-end's cost model;
    * ``fallback_policy`` — a :class:`FallbackPolicy` (or its string
      value) controlling what a currency guard does when the local data
      is not fresh enough: ``"remote"`` (default) transparently uses the
      back-end branch, ``"error"`` aborts with :class:`CurrencyError`,
      ``"serve_stale"`` returns local data with a violation warning
      attached to ``result.warnings``;
    * ``plan_cache_size`` — LRU capacity of the compiled-plan cache;
    * ``metrics`` — a :class:`~repro.obs.MetricsRegistry` (default) or
      :class:`~repro.obs.NullRegistry` to turn instrumentation off;
    * ``batch_size`` — chunk size of the batch execution engine
      (default 256).  ``batch_size=1`` forces the legacy row-at-a-time
      path (and the matching row-engine cost model) for debugging and
      equivalence testing;
    * ``engine`` — evaluation mode: ``"columnar"`` (default), ``"batch"``
      (row-tuple chunks) or ``"row"``;
    * ``snapshot_store`` — an optional shared
      :class:`~repro.plan.store.PlanSnapshotStore`: on a local plan-cache
      miss the cache tries to instantiate a published snapshot before
      re-optimizing, and publishes freshly optimized plans back.
    """

    FALLBACK_POLICIES = tuple(p.value for p in FallbackPolicy)

    def __init__(self, backend, *, cost_model=None, fallback_policy=FallbackPolicy.REMOTE,
                 plan_cache_size=128, metrics=None, batch_size=ops.DEFAULT_BATCH_SIZE,
                 engine=None, snapshot_store=None, record_history=False):
        self._fallback_policy = _coerce_policy(fallback_policy).value
        self.batch_size = ops.coerce_batch_size(batch_size)
        self.engine = ops.coerce_engine(engine, self.batch_size)
        #: Observability registry: every hot-path component below reports
        #: into it (see repro.obs).  Real by default — instrumentation is
        #: always-on; pass NullRegistry() for zero-overhead micro-runs.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._resolve_plan_cache_counters()
        #: Compiled-plan cache (paper §3.2: "This approach requires
        #: re-optimization only if a view's consistency properties
        #: change").  Keyed by SQL text, LRU-ordered (least recently used
        #: first); invalidated whenever the catalog changes in a way that
        #: can affect plan choice or validity.
        self._plan_cache = OrderedDict()
        self._plan_cache_size = plan_cache_size
        #: Ring buffer of recent query executions (monitoring aid).
        self.query_log = QueryLog()
        #: Ring buffer of finished query traces (look up by
        #: ``result.trace_id``; rendered by ``\trace`` and TraceExporter).
        self.traces = TraceLog(64)
        self.backend = backend
        self.clock = self.backend.clock
        self.scheduler = self.backend.scheduler
        self.catalog = Catalog()
        # Cost the plans the way the selected engine actually runs them.
        self.cost_model = (cost_model or backend.cost_model).engine_variant(self.engine)
        self.placement = CachePlacement(self, self.cost_model)
        self.optimizer = Optimizer(self.placement, registry=self.metrics)
        self.executor = Executor(clock=self.clock, registry=self.metrics,
                                 batch_size=self.batch_size, engine=self.engine)
        #: Optional fleet-shared snapshot store (see repro.plan.store).
        self.snapshot_store = snapshot_store
        #: Back-end schema/statistics version the cached plans were
        #: compiled under; checked on the execute hot path so DDL on the
        #: back-end invalidates explicitly rather than going stale.
        self._plans_ddl_epoch = self.backend.ddl_epoch
        self.session = TimelineSession()
        #: table name -> "strict" (absent: relaxed).  Strict tables always
        #: guard reads to the caller's session floor, whatever the query's
        #: currency bound says (Antidote-style per-table declarations).
        self._table_consistency = {}
        #: table name -> rows mutated through the cache since the last
        #: statistics refresh (the DML write path feeds this; crossing the
        #: threshold triggers a back-end statistics refresh, which bumps
        #: the ddl epoch and invalidates plans and snapshots fleet-wide).
        self._dml_mods = {}
        #: agent key -> DistributionAgent.  The key is the region cid on
        #: an unsharded back-end; on a sharded one a region runs one agent
        #: per partition, keyed ``"{cid}#p{shard}"``.
        self.agents = {}
        #: region cid -> [(shard_id, agent_key)] in partition order.
        self._region_agent_keys = {}
        #: Durable agent resume cutoffs ("the disk"): survives simulated
        #: agent death and node crashes, feeding restart and failover.
        self.checkpoints = CheckpointStore()
        self._local_heartbeats = {}  # agent key -> HeapTable
        #: Optional :class:`~repro.history.recorder.HistoryRecorder` (off
        #: by default; ``record_history=True`` creates one and observes
        #: the back-end's commit points; a fleet instead shares one
        #: recorder across its nodes via ``CacheFleet.attach_history``).
        self.history = None
        if record_history:
            from repro.history.recorder import HistoryRecorder

            if isinstance(record_history, HistoryRecorder):
                self.history = record_history
            else:
                self.history = HistoryRecorder()
                self.history.attach_backend(backend)
        self.mirror_backend()

    def set_metrics(self, registry):
        """Swap the metrics registry and re-point every instrumented
        component at it (used to A/B the instrumentation cost itself).

        Cached plans embed guard selectors that read ``self.metrics``
        dynamically, so they do not need invalidation.
        """
        self.metrics = registry if registry is not None else NullRegistry()
        self._resolve_plan_cache_counters()
        self.executor.set_registry(self.metrics)
        self.optimizer.registry = self.metrics
        for agent in self.agents.values():
            agent.registry = self.metrics
        return self.metrics

    def _resolve_plan_cache_counters(self):
        """Pre-resolve the plan-cache hit/miss counters: they fire once
        per query, so the hot path must not rebuild label dicts."""
        registry = self.metrics
        self._c_plan_hits = registry.counter(
            "plan_cache_events_total", labels={"event": "hits"},
            help="compiled-plan cache activity")
        self._c_plan_misses = registry.counter(
            "plan_cache_events_total", labels={"event": "misses"})
        # queries_total is labelled by run-time routing outcome, which is
        # only known post-execution — resolve lazily but memoize per label.
        self._c_queries_by_routing = {}
        #: Null registries skip per-query counter feeding wholesale.
        self._counters_null = isinstance(registry, NullRegistry)

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    @property
    def fallback_policy(self):
        return self._fallback_policy

    @fallback_policy.setter
    def fallback_policy(self, value):
        value = _coerce_policy(value).value
        if value != self._fallback_policy:
            self._fallback_policy = value
            # Cached plans embed guard selectors built under the old policy.
            self.invalidate_plans()

    @property
    def plan_cache_stats(self):
        """Plan-cache counters as a plain dict (compat view over the
        metrics registry: ``plan_cache_events_total{event=...}``)."""
        return {
            event: self.metrics.counter(
                "plan_cache_events_total", labels={"event": event}
            ).value
            for event in ("hits", "misses", "invalidations", "evictions")
        }

    def _plan_cache_event(self, event, n=1):
        self.metrics.counter("plan_cache_events_total", labels={"event": event},
                             help="compiled-plan cache activity").inc(n)

    def invalidate_plans(self, reason="ddl"):
        """Drop all cached plans (view/region/statistics changes).

        A node-level invalidation also wipes the shared snapshot store:
        whatever changed here (DDL, region reconfiguration) changes the
        config fingerprint every published snapshot was keyed under, so
        keeping them would only produce fingerprint misses anyway.
        """
        if self._plan_cache:
            self._plan_cache_event("invalidations")
        self._plan_cache.clear()
        if self.snapshot_store is not None and len(self.snapshot_store):
            self.snapshot_store.invalidate(reason)

    def _check_plan_epoch(self):
        """Hot-path staleness gate: one integer compare per query.  DDL on
        the back-end (new tables/indexes, refreshed statistics) bumps its
        ``ddl_epoch``; plans and snapshots compiled under an older epoch
        are dropped before they can be reused."""
        epoch = self.backend.ddl_epoch
        if epoch != self._plans_ddl_epoch:
            self.invalidate_plans(reason="backend-ddl")
            self._plans_ddl_epoch = epoch
            # The epoch moves on statistics refreshes too (e.g. a peer
            # node's write-driven refresh): re-mirror so this node's next
            # optimization sees the fresh cardinalities, not the stale
            # shadow copy it attached with.
            self._resync_shadow_stats()

    # ------------------------------------------------------------------
    # Plan snapshots (repro.plan)
    # ------------------------------------------------------------------
    def config_fingerprint(self):
        """Digest of everything plan choice depends on besides SQL text.

        Two nodes may share a precompiled snapshot only when this matches:
        fallback policy, execution engine, shard topology, every region's
        currency parameters and every view's definition and indexes.
        Fleet nodes suffix their region cids with ``@node``; the digest
        strips the suffix so identically-configured replicas fingerprint
        identically — that is the whole point of the shared store.
        """
        parts = [
            "v1",
            self._fallback_policy,
            self.engine,
            str(getattr(self.backend, "partition_count", 1)),
        ]
        if self._table_consistency:
            # Strictness changes guard construction; only appended when
            # declared so pre-existing fingerprints stay stable.
            parts.append("strict:" + ",".join(sorted(self._table_consistency)))
        def bare(cid):
            return cid.split("@", 1)[0] if isinstance(cid, str) else str(cid)
        regions = sorted(self.catalog.regions(), key=lambda r: bare(r.cid))
        for region in regions:
            parts.append(
                f"region:{bare(region.cid)}:{region.update_interval}:{region.update_delay}"
            )
        views = sorted(self.catalog.matviews(), key=lambda v: v.name)
        for view in views:
            indexes = ",".join(
                f"{name}({'+'.join(ix.column_names)}{'!u' if ix.unique else ''})"
                for name, ix in sorted(view.table.indexes.items())
            )
            parts.append(
                f"view:{view.name}:{bare(view.region)}:{view.definition_sql()}:{indexes}"
            )
        return hashlib.sha1("|".join(parts).encode()).hexdigest()

    def _probe_snapshots(self, sql):
        """Try to satisfy a plan-cache miss from the shared snapshot
        store: instantiate (no parse, no optimize) when a fingerprint- and
        epoch-valid snapshot exists."""
        store = self.snapshot_store
        if store is None:
            return None
        snapshot = store.get(
            sql, self.config_fingerprint(), self.engine,
            epoch=self.backend.ddl_epoch,
        )
        if snapshot is None:
            return None
        try:
            return instantiate_snapshot(
                snapshot, self, reuse_root=self.engine != "row"
            )
        except SnapshotUnsupported:
            return None

    def _publish_snapshot(self, sql, plan):
        """Publish a freshly optimized plan to the shared store so peer
        nodes (and this node after a restart) skip parse + optimize.
        Plans outside the snapshot vocabulary just stay node-local."""
        store = self.snapshot_store
        if store is None:
            return
        try:
            snapshot = serialize_plan(plan, engine=self.engine)
        except SnapshotUnsupported:
            return
        store.publish(
            sql, self.config_fingerprint(), self.engine, snapshot,
            epoch=self.backend.ddl_epoch,
        )

    # ------------------------------------------------------------------
    # Shadow database
    # ------------------------------------------------------------------
    def mirror_backend(self):
        """(Re)create shadow tables for every back-end table, carrying the
        back-end's statistics but no data (paper §3, step 1)."""
        for entry in self.backend.catalog.tables():
            if not self.catalog.has_table(entry.name):
                shadow = self.catalog.create_table(
                    entry.name,
                    entry.schema,
                    primary_key=entry.table.primary_key,
                    shadow=True,
                )
            else:
                shadow = self.catalog.table(entry.name)
            shadow.stats = entry.stats

    def refresh_shadow_stats(self):
        """Recompute back-end statistics and copy them into the shadow."""
        self.backend.refresh_statistics()
        self.mirror_backend()
        for view in self.catalog.matviews():
            self._refresh_view_stats(view)
        self.invalidate_plans()

    def _refresh_view_stats(self, view):
        base_stats = self.backend.catalog.table(view.base_table).stats
        stats = base_stats.project(view.columns)
        if view.predicate is not None:
            _, rows, _ = self.backend.estimate(
                ast.Select(
                    [ast.SelectItem(ast.ColumnRef(view.columns[0]))],
                    [ast.FromTable(view.base_table)],
                    where=view.predicate,
                )
            )
            stats = stats.scaled(rows / max(base_stats.row_count, 1))
        view.stats = stats

    def _resync_shadow_stats(self):
        """Copy the back-end's current statistics into the shadow catalog
        (and every view's derived stats) without recomputing them — the
        cheap half of :meth:`refresh_shadow_stats`, used when the back-end
        already refreshed (write-driven or by a peer node)."""
        self.mirror_backend()
        for view in self.catalog.matviews():
            self._refresh_view_stats(view)

    # ------------------------------------------------------------------
    # Regions, agents, views
    # ------------------------------------------------------------------
    @staticmethod
    def _agent_key(cid, shard_id):
        """Key a region's agent per replication source (partition)."""
        return cid if shard_id is None else f"{cid}#p{shard_id}"

    def region_agents(self, cid):
        """The region's distribution agents, one per replication source."""
        keys = self._region_agent_keys.get(cid)
        if keys is None:
            agent = self.agents.get(cid)
            return [agent] if agent is not None else []
        return [self.agents[key] for _, key in keys if key in self.agents]

    def create_region(self, cid, update_interval, update_delay, heartbeat_interval=2.0):
        """Create a currency region with its agent and heartbeat plumbing.

        On a sharded back-end the region becomes partition-scoped: one
        distribution agent (and one local heartbeat table) per replication
        source, each tailing its own partition's transaction log.
        """
        region = self.catalog.create_region(cid, update_interval, update_delay)
        self.backend.heartbeats.register_region(cid, beat_interval=heartbeat_interval)
        keys = []
        for source in self.backend.replication_sources():
            key = self._agent_key(cid, source.shard_id)
            local_hb = HeapTable(
                local_heartbeat_name(key), heartbeat_schema(), primary_key=["cid"]
            )
            self._local_heartbeats[key] = local_hb
            agent = DistributionAgent(
                region, source.catalog, source.log, self.catalog,
                self.clock, registry=self.metrics, checkpoints=self.checkpoints,
                shard_id=source.shard_id, checkpoint_key=key,
            )
            agent.attach_heartbeat(local_hb)
            agent.start(self.scheduler, interval=update_interval)
            self.agents[key] = agent
            keys.append((source.shard_id, key))
        self._region_agent_keys[cid] = keys
        self.invalidate_plans()
        return region

    def create_matview(self, name, base_table, columns, predicate=None, region=None):
        """Define and populate a local materialized view (paper §3, steps
        2–3): the matching replication subscription is created and the view
        is populated immediately."""
        if region is None:
            raise CatalogError("a materialized view must belong to a currency region")
        if isinstance(predicate, str):
            predicate = parse_expression(predicate)
        if not self.catalog.has_table(base_table) and self.backend.catalog.has_table(
            base_table
        ):
            # The base table was created after this cache attached (e.g. a
            # FleetConfig-built fleet defines DDL last): pick it up now.
            self.mirror_backend()
        view = self.catalog.create_matview(
            name, base_table, columns, predicate=predicate, region=region
        )
        agents = self.region_agents(region)
        if not agents:
            raise KeyError(region)
        for agent in agents:
            # The view was just created (empty): every source agent adds
            # its partition's rows without wiping its siblings' work.
            agent.subscribe(view, truncate=False)
        self._refresh_view_stats(view)
        self.invalidate_plans()
        return view

    def drop_matview(self, name):
        """Drop a local materialized view and its subscription."""
        view = self.catalog.drop_matview(name)
        for agent in self.region_agents(view.region):
            agent.unsubscribe(view)
        self.invalidate_plans()
        return view

    def drop_region(self, cid):
        """Drop an (empty) currency region: stop its agent and heartbeat."""
        region = self.catalog.drop_region(cid)
        for _, key in self._region_agent_keys.pop(cid, [(None, cid)]):
            agent = self.agents.pop(key, None)
            if agent is not None:
                agent.stop()
            self._local_heartbeats.pop(key, None)
        self.backend.heartbeats.stop(cid)
        self.invalidate_plans()
        return region

    def alter_region(self, cid, update_interval=None, update_delay=None):
        """Reconfigure a region's currency parameters (ALTER-style DDL).

        The new interval re-paces the region's distribution agents; both
        parameters feed the optimizer's guard-probability model, so every
        cached plan — and every published snapshot, whose fingerprint
        embeds the old parameters — is invalidated.
        """
        region = self.catalog.region(cid)
        if update_interval is not None:
            region.update_interval = float(update_interval)
            for agent in self.region_agents(cid):
                agent.start(self.scheduler, interval=region.update_interval)
        if update_delay is not None:
            region.update_delay = float(update_delay)
        self.invalidate_plans(reason="alter-region")
        return region

    def create_view_index(self, view_name, index_name, columns, unique=False):
        view = self.catalog.matview(view_name)
        index = view.table.create_index(index_name, columns, unique=unique)
        self.invalidate_plans()
        return index

    # ------------------------------------------------------------------
    # Per-table consistency declarations
    # ------------------------------------------------------------------
    def declare_table_consistency(self, table, mode):
        """Declare a base table ``strict`` or ``relaxed`` (the default).

        Reads of a *strict* table always guard to the caller's session
        floor — even at CURRENCY UNBOUNDED — so a session sees its own
        writes no matter what the query's currency clause allows.  Reads
        of a *relaxed* table obey the query's currency bound alone.
        Changing a declaration invalidates cached plans (guards are
        compiled in) and shifts the config fingerprint, so fleet-shared
        snapshots cannot cross a strictness boundary.
        """
        mode = str(mode).lower()
        if mode not in ("strict", "relaxed"):
            raise ValueError(
                f"table consistency must be 'strict' or 'relaxed', not {mode!r}"
            )
        table = table.lower()
        current = self._table_consistency.get(table, "relaxed")
        if mode != current:
            if mode == "relaxed":
                self._table_consistency.pop(table, None)
            else:
                self._table_consistency[table] = "strict"
            self.invalidate_plans(reason="table-consistency")
        return mode

    def table_consistency(self, table):
        """The declared consistency mode of a base table."""
        return self._table_consistency.get(table.lower(), "relaxed")

    # ------------------------------------------------------------------
    # Currency guards
    # ------------------------------------------------------------------
    def _view_snapshot(self, view, shard):
        """The snapshot a guard vouches for: the pinned shard's own
        snapshot when the plan touches one partition, else the view's
        normalized (min-over-shards) snapshot time."""
        if shard is not None and view.shard_snapshots:
            return view.shard_snapshots.get(shard, view.snapshot_time)
        return view.snapshot_time

    def _guard_heartbeats(self, region_cid, shard):
        """Local heartbeat tables a guard must consult.

        Unsharded: the region's single table.  Sharded: every source's
        table — unless the plan is pinned to one shard, in which case only
        that partition's replication lag matters (per-shard C&C: a result
        is as current as its stalest *contributing* shard, and a pinned
        point lookup contributes exactly one).
        """
        keys = self._region_agent_keys.get(region_cid)
        if keys is None:
            return [self._local_heartbeats[region_cid]]
        if shard is not None:
            pinned = [self._local_heartbeats[k] for s, k in keys if s == shard]
            if pinned:
                return pinned
        return [self._local_heartbeats[k] for _, k in keys]

    def _session_floor_check(self, region_cid, shard, session):
        """Compare a session's commit floors against a region's agents.

        Returns ``(checked, lagging_source)``: ``checked`` is True when
        the session holds a positive floor for at least one contributing
        replication source; ``lagging_source`` names the first source
        whose agent has not yet applied the floor transaction (None when
        every floor is satisfied — the local replica already contains the
        session's own writes).  A pinned plan only answers for its own
        partition, so only that source's floor is consulted.
        """
        pairs = self._region_agent_keys.get(region_cid) or [(None, region_cid)]
        checked = False
        for shard_id, key in pairs:
            if shard is not None and shard_id is not None and shard_id != shard:
                continue
            source = "backend" if shard_id is None else f"p{shard_id}"
            floor = session.floor_for(source)
            if floor <= 0:
                continue
            checked = True
            agent = self.agents.get(key)
            applied = agent.applied_txn if agent is not None else 0
            if not session.covers(source, applied):
                return True, source
        return checked, None

    def _read_sources(self, region_cid, shard):
        """Per-source agent progress for one local read: ``{source:
        applied_txn}`` over the replication sources a (possibly pinned)
        read of the region actually contributes — the sync points the
        certifier's session and Δ-consistency checks audit.  History
        capture only (guards gate the call on ``ctx.capture_reads``)."""
        pairs = self._region_agent_keys.get(region_cid) or [(None, region_cid)]
        out = {}
        for shard_id, key in pairs:
            if shard is not None and shard_id is not None and shard_id != shard:
                continue
            agent = self.agents.get(key)
            source = "backend" if shard_id is None else f"p{shard_id}"
            out[source] = agent.applied_txn if agent is not None else 0
        return out

    def make_currency_guard(self, view, bound, shard=None):
        """The selector of a SwitchUnion: 0 = local branch, 1 = remote.

        Equivalent to the paper's predicate
        ``EXISTS (SELECT 1 FROM Heartbeat_R WHERE TimeStamp > getdate() - B)``
        plus, inside a TIMEORDERED bracket, the timeline watermark test.
        On a sharded back-end the probe takes the *minimum* heartbeat over
        the contributing partitions (all of them, or just the pinned one).

        When the executing context carries a read-your-writes session and
        the view's base table is declared *strict*, the selector first
        compares the session's commit floors against the region's agent
        progress: a lagging source forces the remote branch outright (a
        session demand, not a currency violation — the fallback policy
        does not apply), a satisfied floor proceeds to the normal
        currency test.
        """
        heartbeats = self._guard_heartbeats(view.region, shard)
        clock = self.clock
        policy = self.fallback_policy
        strict = self.table_consistency(view.base_table) == "strict"
        mtcache = self  # guards read the *current* registry on each probe
        # Single-slot memo of resolved metric handles per registry, so the
        # per-probe cost is two list reads (an identity check) — guards sit
        # on the hottest path there is.
        memo = [None, None]

        def selector(ctx):
            registry = mtcache.metrics
            if memo[0] is not registry:
                memo[0] = registry
                # Null registries skip the metric feeding entirely — the
                # probe itself is ~10 no-op calls otherwise, and guards sit
                # on the hottest path there is.
                memo[1] = None if isinstance(registry, NullRegistry) else (
                    registry.counter(
                        "currency_guard_total",
                        labels={"view": view.name, "outcome": "pass"},
                        help="currency-guard probes by outcome",
                    ),
                    registry.counter(
                        "currency_guard_total",
                        labels={"view": view.name, "outcome": "fail"},
                    ),
                    registry.gauge(
                        "replication_staleness_seconds", labels={"region": view.region},
                        help="guaranteed staleness bound from the local heartbeat",
                    ),
                    registry.histogram(
                        "currency_slack_seconds", labels={"region": view.region},
                        help="B - d at guard evaluation (negative: bound missed)",
                    ),
                    registry.counter(
                        "currency_guard_region_total",
                        labels={"region": view.region, "outcome": "local"},
                        help="guard routing outcomes per currency region",
                    ),
                    registry.counter(
                        "currency_guard_region_total",
                        labels={"region": view.region, "outcome": "remote"},
                    ),
                    registry.counter(
                        "currency_guard_region_total",
                        labels={"region": view.region, "outcome": "stale"},
                    ),
                    registry.counter(
                        "session_guard_total",
                        labels={"view": view.name, "outcome": "local"},
                        help="session floor checks on strict-table reads",
                    ),
                    registry.counter(
                        "session_guard_total",
                        labels={"view": view.name, "outcome": "remote"},
                    ),
                )
            handles = memo[1]
            session = ctx.session
            if strict and session is not None and session.floors:
                checked, lagging = mtcache._session_floor_check(
                    view.region, shard, session
                )
                if lagging is not None:
                    ctx.record_session_decision(view.name, "remote", lagging)
                    if handles is not None:
                        handles[8].inc()
                    registry.event(
                        "guard",
                        f"session floor not yet applied by {view.name}: "
                        f"source {lagging} lags the session's own commit; "
                        "using remote branch",
                        time=clock.now(), view=view.name, region=view.region,
                        outcome="session-remote",
                    )
                    return 1
                if checked:
                    ctx.record_session_decision(view.name, "local", None)
                    if handles is not None:
                        handles[7].inc()
            ts = None
            for heartbeat in heartbeats:
                values = heartbeat.first_values()
                shard_ts = values[1] if values is not None else None
                if shard_ts is None:
                    ts = None  # a silent partition caps the whole probe
                    break
                ts = shard_ts if ts is None else min(ts, shard_ts)
            now = clock.now()
            snapshot_time = mtcache._view_snapshot(view, shard)
            fresh = ts is not None and ts > now - bound
            timely = ctx.timeline is None or ctx.timeline.admits(snapshot_time)
            if handles is not None:
                (pass_counter, fail_counter, staleness_gauge,
                 slack_hist, region_local, region_remote, region_stale) = handles[:7]
                (pass_counter if fresh and timely else fail_counter).inc()
                if ts is not None:
                    staleness_gauge.set(now - ts)
                    # Currency slack: how much headroom the bound had at
                    # probe time.  Negative observations are served-stale/
                    # remote fallbacks; the distribution is the per-region
                    # SLO signal.
                    slack_hist.observe(bound - (now - ts))
            if fresh and timely:
                if handles is not None:
                    region_local.inc()
                ctx.record_snapshot(snapshot_time)
                if ctx.capture_reads:
                    ctx.record_read(
                        view.name, view.base_table, view.region, shard,
                        snapshot_time, strict,
                        mtcache._read_sources(view.region, shard),
                    )
                return 0
            staleness = float("inf") if ts is None else now - ts
            message = (
                f"currency constraint not met by {view.name}: staleness bound "
                f"{staleness:.3f}s exceeds {bound:g}s"
                if not fresh
                else f"timeline constraint not met by {view.name}"
            )
            if policy == "remote":
                if handles is not None:
                    region_remote.inc()
                registry.event(
                    "guard", f"{message}; using remote branch", time=now,
                    view=view.name, region=view.region, outcome="remote",
                )
                return 1
            if policy == "error":
                registry.event(
                    "guard", message, severity="error", time=now,
                    view=view.name, region=view.region, outcome="error",
                )
                raise CurrencyError(message)
            # serve_stale: return the data but flag the violation.
            if handles is not None:
                region_stale.inc()
            registry.event(
                "guard", f"{message}; serving stale", severity="warning", time=now,
                view=view.name, region=view.region, outcome="stale",
            )
            ctx.record_warning(message)
            ctx.record_snapshot(snapshot_time)
            if ctx.capture_reads:
                ctx.record_read(
                    view.name, view.base_table, view.region, shard,
                    snapshot_time, strict,
                    mtcache._read_sources(view.region, shard),
                )
            return 0

        #: Serializable recipe for plan snapshots: any cache can rebuild
        #: an equivalent guard from (view, bound, shard) against its own
        #: local heartbeat state.
        selector.guard_params = {"view": view.name, "bound": bound, "shard": shard}
        return selector

    def shard_hint(self, operand):
        """The single partition an operand's sargs pin it to, or None.

        Equality and IN sargs on the base table's partition column
        intersect; only an unambiguous single-shard pin is returned —
        anything wider falls back to the conservative all-shards guard.
        """
        pcol = self.backend.partition_column(operand.table_name)
        if pcol is None:
            return None
        pinned = None
        for sarg in operand.sargs:
            if sarg.column != pcol:
                continue
            if sarg.op == "=":
                shards = {self.backend.shard_of(operand.table_name, sarg.value)}
            elif sarg.op == "in":
                shards = {
                    self.backend.shard_of(operand.table_name, value)
                    for value in sarg.value
                }
            else:
                continue
            pinned = shards if pinned is None else pinned & shards
        if pinned is not None and len(pinned) == 1:
            return next(iter(pinned))
        return None

    def remote_executor(self, sql, shards=None):
        """Connection to the back-end used by RemoteQuery operators."""
        trace = self.metrics.active_trace
        if not trace:
            return self.backend.execute_remote(sql, shards=shards)
        with trace.span("backend.remote_query", sql=sql[:60]):
            return self.backend.execute_remote(sql, shards=shards)

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------
    def optimize(self, sql_or_select, use_cache=True):
        """Optimize a SELECT; returns an OptimizedPlan.

        Dynamic plans are cached by SQL text and reused until the cache's
        consistency-relevant state changes (views, regions, statistics);
        the run-time currency guards keep reused plans correct across
        replication progress.  Complex queries (derived tables /
        subqueries) are shipped whole.
        """
        if isinstance(sql_or_select, str):
            key = sql_or_select
            self._check_plan_epoch()
            cached = self._plan_cache.get(key) if use_cache else None
            if cached is not None:
                self._plan_cache.move_to_end(key)  # LRU: touch on hit
                self._c_plan_hits.inc()
                return cached
            if use_cache:
                snap_plan = self._probe_snapshots(key)
                if snap_plan is not None:
                    # Precompiled by a peer (or a past life of this node):
                    # no parse, no optimize — instantiate and cache.
                    self._cache_plan(key, snap_plan)
                    return snap_plan
            select = parse(sql_or_select)
        else:
            key = None
            select = sql_or_select
        with self.metrics.span("optimize"):
            try:
                query_info = analyze_select(select, self.catalog)
            except CatalogError:
                # The back-end may have grown tables since this cache
                # attached (e.g. DDL after FleetConfig.build()); re-mirror
                # the shadow catalog once before giving up.
                self.mirror_backend()
                query_info = analyze_select(select, self.catalog)
            if query_info.complex or query_info.post_conjuncts or query_info.semi_joins:
                # Subquery-bearing statements ship to the back-end wholesale;
                # the master trivially satisfies any C&C constraint.
                candidate = self._ship_whole(select, query_info)
                plan = OptimizedPlan(candidate, [name for _, name in query_info.items], query_info)
            else:
                plan = self.optimizer.optimize_info(query_info)
        if key is not None and use_cache:
            self._cache_plan(key, plan)
            self._publish_snapshot(key, plan)
        return plan

    def _cache_plan(self, key, plan):
        self._c_plan_misses.inc()
        while len(self._plan_cache) >= self._plan_cache_size:
            self._plan_cache.popitem(last=False)  # evict least recent
            self._plan_cache_event("evictions")
        # Cached plans are executed repeatedly; under the batch and
        # columnar engines they also keep their built operator tree
        # across executions (row mode rebuilds it, matching the old
        # per-execution semantics).
        plan.reuse_root = self.engine != "row"
        self._plan_cache[key] = plan

    def _ship_whole(self, select, query_info):
        stripped = ast.Select(
            select.items,
            select.from_items,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            distinct=select.distinct,
            currency=None,
            limit=select.limit,
        )
        sql = stripped.to_sql()
        names = [name for _, name in query_info.items] if query_info.items else []
        binding = RowBinding([OutputCol(n) for n in names])

        def build(sql=sql, binding=binding):
            return ops.RemoteQuery(sql, binding, self.remote_executor)

        delivered = ConsistencyProperty.single(BACKEND_REGION, query_info.constraint.operands)
        cost, rows, width = self.backend.estimate(stripped)
        return Candidate(
            build,
            cost + self.cost_model.transfer(rows, max(width, 1.0)),
            rows,
            width,
            binding,
            delivered,
            query_info.constraint.operands or {"__all__"},
            "remote-query",
            detail=sql[:60],
        )

    def execute(self, sql_or_stmt, *, trace=None, session=None):
        """Execute any statement submitted to the cache.

        The single public query entry point.  SELECTs return a
        :class:`~repro.engine.executor.QueryResult` (stable contract:
        ``rows``, ``columns``, ``plan``, ``timings``, ``routing``,
        ``warnings``, ``trace_id``); DML returns the affected-row count;
        DDL returns the created object; TIMEORDERED brackets return None.

        ``trace`` is the cross-tier :class:`~repro.obs.TraceContext`: the
        fleet router passes the one it opened so the node's spans join
        the router's tree; standalone callers leave it None and the cache
        creates (and records, in ``self.traces``) its own.

        ``session`` is an optional read-your-writes
        :class:`~repro.session.Session`: DML advances its commit floors
        with the transaction ids the back-end reports, and reads of
        strict tables consult the floors through the currency guard.
        """
        if isinstance(sql_or_stmt, str):
            # Hot path: a SQL text with a cached plan skips the parser and
            # the optimizer entirely — epoch compare, one dict probe, then
            # execution.
            self._check_plan_epoch()
            plan = self._plan_cache.get(sql_or_stmt)
            if plan is not None:
                self._plan_cache.move_to_end(sql_or_stmt)  # LRU: touch on hit
                if not self._counters_null:
                    self._c_plan_hits.inc()
                return self._execute_plan(
                    plan, sql_text=sql_or_stmt, trace=trace, session=session
                )
            registry = self.metrics
            owned = trace is None
            if owned:
                trace = registry.new_trace()
            prev = registry.active_trace
            registry.active_trace = trace
            try:
                # Parse inside the trace window so the parse span joins it.
                stmt = parse(sql_or_stmt, registry=registry)
                return self._dispatch(
                    stmt, sql_text=sql_or_stmt, trace=trace, session=session
                )
            finally:
                registry.active_trace = prev
                if owned:
                    self.traces.record(trace)
        return self._dispatch(sql_or_stmt, sql_text=None, trace=trace, session=session)

    def _dispatch(self, stmt, sql_text=None, trace=None, session=None):
        if isinstance(stmt, ast.BeginTimeordered):
            self.session.begin()
            if self.history is not None:
                self.history.record_timeline(
                    node=getattr(self, "name", "cache"), event="begin",
                    time=self.clock.now(),
                )
            return None
        if isinstance(stmt, ast.EndTimeordered):
            self.session.end()
            if self.history is not None:
                self.history.record_timeline(
                    node=getattr(self, "name", "cache"), event="end",
                    time=self.clock.now(),
                )
            return None
        if isinstance(stmt, ast.Explain):
            return self.explain(stmt.select, analyze=stmt.analyze, session=session)
        if isinstance(stmt, ast.Select):
            return self._execute_select(
                stmt, sql_text=sql_text, trace=trace, session=session
            )
        if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
            return self._execute_dml(stmt, session=session)
        if isinstance(stmt, ast.CreateRegion):
            kwargs = {}
            if stmt.heartbeat is not None:
                kwargs["heartbeat_interval"] = stmt.heartbeat
            return self.create_region(stmt.name, stmt.interval, stmt.delay, **kwargs)
        if isinstance(stmt, ast.CreateMatview):
            return self._create_matview_from_ast(stmt)
        raise OptimizerError(f"unsupported statement on the cache: {type(stmt).__name__}")

    def _create_matview_from_ast(self, stmt):
        """CREATE MATERIALIZED VIEW: validate the defining select against
        the prototype's restrictions (single-table projection/selection)."""
        select = stmt.select
        if len(select.from_items) != 1 or not isinstance(select.from_items[0], ast.FromTable):
            raise CatalogError("a materialized view must select from one base table")
        if select.group_by or select.having or select.distinct or select.order_by:
            raise CatalogError(
                "materialized views are projections/selections of one table"
            )
        base = select.from_items[0].name
        base_entry = self.catalog.table(base)
        columns = []
        for item in select.items:
            if item.star:
                columns.extend(base_entry.schema.names())
            elif isinstance(item.expr, ast.ColumnRef):
                columns.append(item.expr.name)
            else:
                raise CatalogError("materialized view items must be plain columns")
        return self.create_matview(
            stmt.name, base, columns, predicate=select.where, region=stmt.region
        )

    # ------------------------------------------------------------------
    # Write path (paper §3 step 5, session-aware)
    # ------------------------------------------------------------------
    def backend_dml(self, stmt):
        """Ship one DML statement to the back-end; returns
        ``(rowcount, commits)`` per :meth:`Backend.execute_dml`.  Fleet
        nodes override this with their retry/breaker network path."""
        return self.backend.execute_dml(stmt)

    def _execute_dml(self, stmt, session=None):
        """Route INSERT/UPDATE/DELETE to the back-end (shard-aware: the
        sharded back-end buckets rows / pins predicates itself), stamp the
        session's commit floor, and account the mutation toward the
        table's statistics-refresh threshold."""
        self.metrics.counter("dml_forwarded_total",
                             help="DML statements forwarded to the back-end").inc()
        rowcount, commits = self.backend_dml(stmt)
        if session is not None and commits:
            session.observe_commit(commits)
        if self.history is not None:
            self.history.record_dml(
                node=getattr(self, "name", "cache"),
                sql=stmt.to_sql() if hasattr(stmt, "to_sql") else repr(stmt),
                time=self.clock.now(),
                table=stmt.table,
                rowcount=rowcount,
                commits=commits,
                session=session.name if session is not None else None,
            )
        self._note_table_mutation(stmt.table, rowcount)
        return rowcount

    def _note_table_mutation(self, table, rowcount):
        """DML must invalidate what it stales: once cache-routed writes
        have churned a meaningful fraction of a table, refresh its
        back-end statistics — which bumps the ddl epoch, so cached plans
        *and* fleet-shared snapshots with now-stale cardinalities are
        dropped everywhere, exactly as DDL would drop them."""
        mods = self._dml_mods.get(table, 0) + max(int(rowcount), 1)
        baseline = 0
        if self.catalog.has_table(table):
            baseline = self.catalog.table(table).stats.row_count
        # The floor is deliberately high: a refresh bumps the *global*
        # ddl epoch (every node drops every cached plan and snapshot),
        # so small-table churn must not wipe the fleet's plan caches on
        # every few dozen rows.
        if mods < max(200, 0.2 * baseline):
            self._dml_mods[table] = mods
            return
        self._dml_mods[table] = 0
        self.backend.refresh_statistics(table)
        self.metrics.counter(
            "auto_stats_refresh_total", labels={"table": table},
            help="write-driven statistics refreshes",
        ).inc()
        # The epoch just moved; resync our own shadow now (peers resync
        # on their next _check_plan_epoch).
        self._check_plan_epoch()

    def _execute_select(self, select, sql_text=None, trace=None, session=None):
        registry = self.metrics
        owned = trace is None
        if owned:
            trace = registry.new_trace()
        prev = registry.active_trace
        registry.active_trace = trace
        try:
            # Optimizing by SQL text engages the compiled-plan cache; the
            # optimize span enrolls in the active trace.
            plan = self.optimize(sql_text if sql_text is not None else select)
            return self._execute_plan(
                plan, sql_text=sql_text, select=select, trace=trace, session=session
            )
        finally:
            registry.active_trace = prev
            if owned:
                self.traces.record(trace)

    def _plan_history_meta(self, plan):
        """The plan's static history metadata ``(bound, classes)``:
        the tightest finite currency bound of its normalized constraint
        (None: unbounded) and the declared consistency classes as sorted
        base-table name lists.  Memoized on the plan — the recording
        overhead per cached-plan execution is one attribute probe."""
        meta = getattr(plan, "_history_meta", None)
        if meta is None:
            bound = None
            classes = []
            info = getattr(plan, "query_info", None)
            constraint = getattr(info, "constraint", None)
            if constraint is not None:
                for cc_tuple in constraint.tuples:
                    tables = set()
                    for alias in cc_tuple.operands:
                        operand = info.operands.get(alias)
                        tables.add(
                            operand.table_name if operand is not None else alias
                        )
                    classes.append(sorted(tables))
                    if cc_tuple.bound != ast.UNBOUNDED and (
                        bound is None or cc_tuple.bound < bound
                    ):
                        bound = cc_tuple.bound
                classes.sort()
            meta = (bound, classes)
            try:
                plan._history_meta = meta
            except AttributeError:
                pass
        return meta

    def _record_query_history(self, recorder, plan, sql_text, select, result,
                              started, session):
        ctx = result.context
        bound, classes = self._plan_history_meta(plan)
        result.history_qid = recorder.record_query(
            node=getattr(self, "name", "cache"),
            sql=sql_text if sql_text is not None else (
                select.to_sql() if select is not None else plan.summary()
            ),
            time=started,
            bound=bound,
            classes=classes,
            routing=result.routing,
            snapshots=list(ctx.snapshots_used),
            reads=list(ctx.reads),
            branches=[[label, index] for label, index in ctx.branches],
            warnings=len(ctx.warnings),
            remote_queries=len(ctx.remote_queries),
            session=session.name if session is not None else None,
            floors=dict(session.floors) if session is not None else None,
            rows=len(result.rows),
        )

    def _execute_plan(self, plan, sql_text=None, select=None, trace=None, session=None):
        registry = self.metrics
        recorder = self.history
        # Query time is stamped at execution *start*: remote waits inside
        # the run must not count against the snapshots' measured age.
        started = self.clock.now() if recorder is not None else 0.0
        owned = trace is None
        if owned:
            trace = registry.new_trace()
        # NULL_TRACE is falsy: skip the span/active-trace ceremony entirely
        # on zero-instrumentation runs (this is the per-query hot path).
        if not trace:
            result = self._run_plan(plan, trace, session=session)
        else:
            prev = registry.active_trace
            registry.active_trace = trace
            qspan = trace.span("mtcache.execute", node=getattr(self, "name", "cache"))
            qspan.__enter__()
            try:
                result = self._run_plan(plan, trace, session=session)
            finally:
                qspan.__exit__(None, None, None)
                registry.active_trace = prev
                if owned:
                    self.traces.record(trace)
        ctx = result.context
        if not self._counters_null:
            counter = self._c_queries_by_routing.get(result.routing)
            if counter is None:
                counter = self.metrics.counter(
                    "queries_total", labels={"routing": result.routing},
                    help="SELECTs by run-time routing outcome")
                self._c_queries_by_routing[result.routing] = counter
            counter.inc()
        self.query_log.record(
            QueryLogEntry(
                sql_text if sql_text is not None else select.to_sql(),
                plan.summary() if hasattr(plan, "summary") else "?",
                list(ctx.branches),
                list(ctx.remote_queries),
                len(result.rows),
                result.timings.total,
                self.clock.now(),
                list(ctx.warnings),
            )
        )
        if recorder is not None:
            self._record_query_history(
                recorder, plan, sql_text, select, result, started, session
            )
        return result

    def _run_plan(self, plan, trace, session=None):
        ctx = ExecutionContext(
            clock=self.clock, timeline=self.session, trace=trace, session=session
        )
        if self.history is not None:
            ctx.capture_reads = True
        root = plan.root()
        if isinstance(root, ops.RemoteQuery) and not plan.column_names:
            # Complex shipped query with unknown output shape (e.g. ``*`` of
            # a derived table): execute directly on the back-end.
            backend_result = self.backend.execute(parse(root.sql))
            ctx.record_remote_query(root.sql, len(backend_result.rows))
            result = QueryResult(
                backend_result.columns, backend_result.rows, backend_result.timings,
                ctx, trace_id=trace.trace_id if trace else None,
            )
        else:
            result = self.executor.execute(root, ctx=ctx, column_names=plan.column_names)
        self._observe_timeline(ctx)
        result.plan = plan
        return result

    def explain(self, select, analyze=False, session=None):
        """EXPLAIN on the cache: the plan the optimizer would run, with the
        normalized C&C constraint it enforces.

        With ``analyze=True`` (or ``EXPLAIN ANALYZE`` SQL) the query is
        *executed* on a freshly built, instrumented operator tree and the
        rendering shows estimate-vs-actual rows, loops, batches, wall
        time, fused-pipeline membership, the SwitchUnion branch taken,
        and per-node Q-error (which also feeds the ``cost_model_q_error``
        histogram family).  The fresh tree keeps instrumentation
        wrappers off cached/reused plans; the returned result carries the
        structured per-node records in ``result.analysis``.

        Pass a read-your-writes ``session`` to see the session decision:
        each strict-table guard that consulted the session's commit floor
        contributes a ``session guard`` line saying whether the floor was
        already applied locally or forced the remote branch.
        """
        if isinstance(select, str):
            stmt = parse(select)
            if isinstance(stmt, ast.Explain):
                analyze = analyze or stmt.analyze
                select = stmt.select
            else:
                select = stmt
        plan = self.optimize(select, use_cache=not analyze)
        constraint = plan.query_info.constraint
        header = [
            f"summary: {plan.summary()}",
            f"estimated cost: {plan.cost:.1f}",
            f"constraint: {constraint!r}",
        ]
        if not analyze:
            lines = header + plan.explain().splitlines()
            ctx = ExecutionContext(clock=self.clock)
            return QueryResult(["plan"], [(line,) for line in lines], PhaseTimings(), ctx)
        root = plan.root()
        instrument(root)
        result = self._run_plan(plan, self.metrics.new_trace(), session=session)
        records = analysis_rows(root)
        for record in records:
            if record["q_error"] is not None:
                self.metrics.histogram(
                    "cost_model_q_error", labels={"op": record["op"]},
                    help="max(est/actual, actual/est) cardinality Q-error",
                ).observe(record["q_error"])
        session_lines = [
            f"session guard: {view} -> {outcome}"
            + (f" (source {source} lags the session floor)" if source else
               " (floor already applied)")
            for view, outcome, source in result.context.session_decisions
        ]
        lines = header + [
            f"actual: {len(result.rows)} rows, routing={result.routing}, "
            f"total {result.timings.total * 1e3:.3f}ms",
        ] + session_lines + render_analysis(records)
        out = QueryResult(
            ["plan"], [(line,) for line in lines], result.timings, result.context,
            plan=plan, trace_id=result.trace_id,
        )
        out.analysis = records
        return out

    def status(self):
        """Monitoring snapshot: per-region staleness and view freshness.

        Returns a dict keyed by region cid with the catalog estimates, the
        live heartbeat staleness bound, and each view's snapshot age.
        """
        now = self.clock.now()
        out = {}
        for region in self.catalog.regions():
            agents = self.region_agents(region.cid)
            views = {}
            for name in region.view_names:
                view = self.catalog.matview(name)
                views[name] = {
                    "rows": view.table.row_count,
                    "snapshot_age": now - view.snapshot_time,
                    "applied_txn": view.applied_txn,
                }
                if view.shard_snapshots:
                    views[name]["shard_snapshot_ages"] = {
                        shard: now - t
                        for shard, t in sorted(view.shard_snapshots.items())
                    }
            # The region's bound is its *worst* source: any silent
            # partition (no heartbeat yet) makes the bound unknown.
            bounds = [agent.staleness_bound() for agent in agents]
            bound = None if (not bounds or any(b is None for b in bounds)) else max(bounds)
            out[region.cid] = {
                "update_interval": region.update_interval,
                "update_delay": region.update_delay,
                "staleness_bound": bound,
                "views": views,
            }
        return out

    def _observe_timeline(self, ctx):
        if not self.session.active:
            return
        for snapshot_time in ctx.snapshots_used:
            self.session.observe(snapshot_time)
        if ctx.remote_queries:
            self.session.observe(self.clock.now())

    # ------------------------------------------------------------------
    # Simulation helpers
    # ------------------------------------------------------------------
    def run_for(self, seconds):
        """Advance simulated time (heartbeats, agents)."""
        return self.scheduler.run_for(seconds)

    def __repr__(self):
        return (
            f"<MTCache views={[v.name for v in self.catalog.matviews()]} "
            f"regions={[r.cid for r in self.catalog.regions()]}>"
        )
