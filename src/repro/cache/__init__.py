"""The two servers: the back-end (master) DBMS and MTCache, the mid-tier
database cache enforcing C&C constraints."""

from repro.cache.backend import BackendServer
from repro.cache.mtcache import CachePlacement, FallbackPolicy, MTCache

__all__ = [
    "BackendServer",
    "CachePlacement",
    "FallbackPolicy",
    "MTCache",
]
