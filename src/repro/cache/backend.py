"""The back-end (master) database server.

A complete single-node DBMS: catalog, heap storage, transactions with a
replication log, the cost-based optimizer over base tables, and an
iterator executor.  It also exposes the two endpoints MTCache needs:

* ``execute_remote(sql)`` — run a shipped query and return its rows, and
* ``estimate(select)`` — cost/cardinality estimates that the cache's shadow
  statistics are built from.

Single-block queries go through the cost-based optimizer; queries with
derived tables or subqueries take the naive recursive path (scan, cross
join, filter with a subquery runner, aggregate, sort).
"""

from repro.catalog.catalog import Catalog
from repro.common.backend import Backend
from repro.common.clock import SimulatedClock
from repro.common.errors import ExecutionError, OptimizerError
from repro.common.scheduler import EventScheduler
from repro.engine import operators as ops
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.expressions import (
    ExpressionContext,
    OutputCol,
    RowBinding,
    compile_expr,
    make_env,
)
from repro.obs.metrics import NULL_REGISTRY
from repro.optimizer.cost import CostModel
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.placement import BackendPlacement
from repro.replication.heartbeat import HEARTBEAT_TABLE, HeartbeatService, heartbeat_schema
from repro.sql import ast
from repro.sql.parser import parse
from repro.txn.manager import TransactionManager


class BackendServer(Backend):
    """The master DBMS holding the up-to-date database state.

    Implements the :class:`~repro.common.backend.Backend` protocol with
    the single-node topology defaults (one partition, one replication
    source).

    ``batch_size`` (keyword-only) sets the chunk size of the batch
    execution engine; ``engine`` selects the evaluation mode ("row" /
    "batch" / "columnar", default columnar).  ``batch_size=1`` forces
    the legacy row-at-a-time path (and the matching row-engine cost
    model) for debugging.
    """

    def __init__(self, clock=None, scheduler=None, cost_model=None, metrics=None,
                 *, batch_size=ops.DEFAULT_BATCH_SIZE, engine=None):
        self.clock = clock or SimulatedClock()
        self.scheduler = scheduler or EventScheduler(self.clock)
        self.catalog = Catalog()
        self.txn_manager = TransactionManager(self.clock)
        self.batch_size = ops.coerce_batch_size(batch_size)
        self.engine = ops.coerce_engine(engine, self.batch_size)
        self.cost_model = (cost_model or CostModel()).engine_variant(self.engine)
        #: Monotonic schema/statistics version.  Every DDL or stats
        #: refresh bumps it; plan caches and snapshot stores compare it
        #: against the epoch they compiled under and re-optimize on
        #: mismatch (explicit invalidation — never silently stale).
        self._ddl_epoch = 0
        #: Back-end metrics registry; no-op unless a caller supplies a
        #: real one (the cache keeps its own registry for the mid-tier).
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.placement = BackendPlacement(self.catalog, self.cost_model, clock=self.clock)
        self.placement.expr_ctx = ExpressionContext(
            clock=self.clock, subquery_runner=self._run_subquery
        )
        self.optimizer = Optimizer(self.placement, registry=self.metrics)
        self.executor = Executor(clock=self.clock, registry=self.metrics,
                                 batch_size=self.batch_size, engine=self.engine)
        self.heartbeats = HeartbeatService(
            self.txn_manager, self.clock, self.scheduler, registry=self.metrics
        )
        self._ensure_heartbeat_table()

    def _ensure_heartbeat_table(self):
        if not self.catalog.has_table(HEARTBEAT_TABLE):
            entry = self.catalog.create_table(HEARTBEAT_TABLE, heartbeat_schema(), primary_key=["cid"])
            self.txn_manager.register_table(entry.table)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    @property
    def ddl_epoch(self):
        """Current schema/statistics version (bumped by every DDL)."""
        return self._ddl_epoch

    def bump_ddl_epoch(self):
        self._ddl_epoch += 1
        return self._ddl_epoch

    def create_table(self, sql_or_stmt):
        """CREATE TABLE from SQL text or a parsed statement."""
        stmt = parse(sql_or_stmt) if isinstance(sql_or_stmt, str) else sql_or_stmt
        entry = self.catalog.create_table_from_ast(stmt)
        self.txn_manager.register_table(entry.table)
        self.bump_ddl_epoch()
        return entry

    def create_index(self, sql_or_stmt):
        stmt = parse(sql_or_stmt) if isinstance(sql_or_stmt, str) else sql_or_stmt
        table = self.catalog.table(stmt.table).table
        index = table.create_index(stmt.name, stmt.columns, unique=stmt.unique, clustered=stmt.clustered)
        self.bump_ddl_epoch()
        return index

    def refresh_statistics(self, table_name=None):
        """Recompute statistics (all tables, or one)."""
        entries = [self.catalog.table(table_name)] if table_name else self.catalog.tables()
        for entry in entries:
            entry.refresh_stats()
        self.bump_ddl_epoch()

    def schedule_statistics_refresh(self, interval, caches=()):
        """Periodically recompute statistics (auto-stats maintenance).

        Any attached caches passed in ``caches`` get their shadow and view
        statistics refreshed in the same tick (which also invalidates
        their compiled-plan caches — statistics changes can change plans).
        Returns the scheduler event (cancel() to stop).
        """

        def tick():
            self.refresh_statistics()
            for cache in caches:
                cache.refresh_shadow_stats()

        return self.scheduler.every(interval, tick, name="auto-stats")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, sql_or_stmt, ctx=None):
        """Execute any supported statement.

        SELECT returns a QueryResult; DML returns the number of affected
        rows; DDL returns the created object.
        """
        stmt = parse(sql_or_stmt) if isinstance(sql_or_stmt, str) else sql_or_stmt
        if isinstance(stmt, ast.Explain):
            return self.explain(stmt.select)
        if isinstance(stmt, ast.Select):
            return self.execute_select(stmt, ctx=ctx)
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt)
        if isinstance(stmt, ast.Update):
            return self._execute_update(stmt)
        if isinstance(stmt, ast.Delete):
            return self._execute_delete(stmt)
        if isinstance(stmt, ast.CreateTable):
            return self.create_table(stmt)
        if isinstance(stmt, ast.CreateIndex):
            return self.create_index(stmt)
        raise ExecutionError(f"unsupported statement: {type(stmt).__name__}")

    def execute_remote(self, sql, shards=None):
        """Endpoint for the cache's RemoteQuery operator: rows only.

        ``shards`` (a shard pin from the cache optimizer) is accepted for
        protocol compatibility and ignored — one server is one shard.
        """
        result = self.execute(sql)
        return result.rows

    def estimate(self, select):
        """(cost, rows, width) estimate for a Select AST or SQL string."""
        if isinstance(select, str):
            select = parse(select)
        try:
            plan = self.optimizer.optimize(select, self.catalog)
            return plan.cost, plan.est_rows, plan.est_width
        except OptimizerError:
            # Naive-path queries: charge a generous default.
            total = sum(e.stats.row_count for e in self.catalog.tables())
            return self.cost_model.seq_scan(max(total, 1.0)) * 2.0, max(total, 1.0), 64.0

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def execute_select(self, select, ctx=None):
        ctx = ctx or ExecutionContext(clock=self.clock)
        try:
            plan = self.optimizer.optimize(select, self.catalog)
        except OptimizerError:
            return self._execute_naive(select, ctx)
        root = plan.root()
        return self.executor.execute(root, ctx=ctx, column_names=plan.column_names)

    def optimize(self, select):
        """Expose the optimizer (plan inspection in tests/benches)."""
        if isinstance(select, str):
            select = parse(select)
        return self.optimizer.optimize(select, self.catalog)

    def explain(self, select):
        """EXPLAIN: a one-column result of plan-description lines."""
        from repro.engine.executor import PhaseTimings, QueryResult

        if isinstance(select, str):
            select = parse(select)
        try:
            plan = self.optimizer.optimize(select, self.catalog)
            lines = [
                f"summary: {plan.summary()}",
                f"estimated cost: {plan.cost:.1f}",
                f"estimated rows: {plan.est_rows:.0f}",
            ] + plan.explain().splitlines()
        except OptimizerError:
            root, _, _ = self._build_naive(select)
            lines = ["summary: naive plan"] + root.explain().splitlines()
        ctx = ExecutionContext(clock=self.clock)
        return QueryResult(["plan"], [(line,) for line in lines], PhaseTimings(), ctx)

    # ------------------------------------------------------------------
    # Naive recursive path (derived tables, HAVING subqueries, ...)
    # ------------------------------------------------------------------
    def _execute_naive(self, select, ctx):
        root, binding, names = self._build_naive(select, outer_binding=None)
        return self.executor.execute(root, ctx=ctx, column_names=names)

    def _run_subquery(self, select, outer_binding, outer_env):
        """Subquery runner wired into expression contexts."""
        root, _, _ = self._build_naive(select, outer_binding=outer_binding)
        ctx = ExecutionContext(clock=self.clock)
        root.open(ctx, outer_env)
        try:
            return list(root.rows())
        finally:
            root.close()

    def _build_naive(self, select, outer_binding=None):
        """Construct a straightforward plan for an arbitrary Select block.

        Cross joins all FROM items, filters with the full WHERE (subqueries
        included), then applies aggregation / projection / distinct / order
        / limit.  Correlated references resolve through ``outer_binding``.
        """
        expr_ctx = self.placement.expr_ctx

        # FROM items -> (operator, binding) pairs
        sources = []
        for item in select.from_items:
            if isinstance(item, ast.FromSubquery):
                inner_root, inner_binding, inner_names = self._build_naive(
                    item.select, outer_binding=outer_binding
                )
                inner_ctx = ExecutionContext(clock=self.clock)
                inner_root.open(inner_ctx)
                try:
                    inner_rows = list(inner_root.rows())
                finally:
                    inner_root.close()
                binding = RowBinding([OutputCol(n, item.alias) for n in inner_names])
                sources.append((ops.Materialized(inner_rows, binding), binding))
            else:
                entry = self.catalog.table(item.name)
                binding = RowBinding(
                    [OutputCol(c.name, item.alias) for c in entry.schema.columns]
                )
                sources.append((ops.SeqScan(entry.table, binding), binding))

        root, binding = sources[0]
        for next_root, next_binding in sources[1:]:
            binding = binding.concat(next_binding)
            root = ops.HashJoin(root, next_root, [], [], binding)

        binding = RowBinding(binding.columns, outer=outer_binding)
        root.output = binding

        if select.where is not None:
            predicate = compile_expr(select.where, binding, expr_ctx)
            root = ops.Filter(root, predicate, output=binding)

        # Aggregation or plain projection (same restricted shapes as the
        # cost-based path).
        has_agg = bool(select.group_by) or any(
            isinstance(node, ast.FuncCall) and node.is_aggregate
            for item in select.items
            if item.expr is not None
            for node in item.expr.walk()
        )

        pre_binding = binding  # before projection, for ORDER BY placement
        pre_root = root
        names = []
        if has_agg:
            group_refs = [g for g in select.group_by]
            agg_items = []
            for item in select.items:
                if item.star:
                    raise ExecutionError("* not supported with aggregation")
                expr = item.expr
                if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
                    arg = None if expr.star or not expr.args else expr.args[0]
                    agg_items.append(("agg", expr, item.output_name(), expr.name, arg))
                else:
                    agg_items.append(("group", expr, item.output_name(), None, None))
            agg_binding = RowBinding(
                [OutputCol(g.name, g.qualifier) for g in group_refs]
                + [OutputCol(name) for kind, _, name, _, _ in agg_items if kind == "agg"],
                outer=outer_binding,
            )
            group_fns = [compile_expr(g, binding, expr_ctx) for g in group_refs]
            specs = [
                ops.AggregateSpec(
                    func, compile_expr(arg, binding, expr_ctx) if arg is not None else None
                )
                for kind, _, _, func, arg in agg_items
                if kind == "agg"
            ]
            having = (
                compile_expr(select.having, agg_binding, expr_ctx)
                if select.having is not None
                else None
            )
            root = ops.HashAggregate(root, group_fns, specs, agg_binding, having=having)
            out_exprs = []
            for kind, expr, name, _, _ in agg_items:
                if kind == "group":
                    out_exprs.append(compile_expr(expr, agg_binding, expr_ctx))
                else:
                    out_exprs.append(
                        compile_expr(ast.ColumnRef(name), agg_binding, expr_ctx)
                    )
                names.append(name)
            binding = RowBinding([OutputCol(n) for n in names], outer=outer_binding)
            root = ops.Project(root, out_exprs, binding)
        else:
            exprs = []
            for item in select.items:
                if item.star:
                    for col in binding.columns:
                        if item.star_qualifier and col.qualifier != item.star_qualifier:
                            continue
                        exprs.append(
                            compile_expr(
                                ast.ColumnRef(col.name, qualifier=col.qualifier),
                                binding,
                                expr_ctx,
                            )
                        )
                        names.append(col.name)
                else:
                    exprs.append(compile_expr(item.expr, binding, expr_ctx))
                    names.append(item.output_name())
            binding = RowBinding([OutputCol(n) for n in names], outer=outer_binding)
            root = ops.Project(root, exprs, binding)

        if select.distinct:
            root = ops.Distinct(root)
        if select.order_by:
            from repro.optimizer.optimizer import _sort_placement, rebind_to_output

            placement = (
                "post"
                if has_agg
                else _sort_placement(select.order_by, pre_binding, binding)
            )
            if placement == "pre":
                # Sort on non-selected columns: rebuild with the sort
                # inserted below the projection.
                key_fns = [
                    compile_expr(o.expr, pre_binding, expr_ctx) for o in select.order_by
                ]
                descending = [o.descending for o in select.order_by]
                sorted_child = ops.Sort(pre_root, key_fns, descending, output=pre_binding)
                # root is Project(pre_root) (possibly under Distinct); swap
                # the child of the projection.
                project = root.child if isinstance(root, ops.Distinct) else root
                project.child = sorted_child
            else:
                key_fns = [
                    compile_expr(rebind_to_output(o.expr, binding), binding, expr_ctx)
                    for o in select.order_by
                ]
                descending = [o.descending for o in select.order_by]
                root = ops.Sort(root, key_fns, descending, output=binding)
        if select.limit is not None:
            root = ops.Limit(root, select.limit)
        return root, binding, names

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _execute_insert(self, stmt):
        entry = self.catalog.table(stmt.table)
        schema = entry.schema
        columns = stmt.columns or schema.names()
        positions = {c: schema.index_of(c) for c in columns}
        expr_ctx = self.placement.expr_ctx
        empty = RowBinding([])

        rows = []
        for value_row in stmt.rows:
            if len(value_row) != len(columns):
                raise ExecutionError(
                    f"INSERT arity mismatch: {len(value_row)} values, {len(columns)} columns"
                )
            values = [None] * len(schema)
            for column, expr in zip(columns, value_row):
                fn = compile_expr(expr, empty, expr_ctx)
                values[positions[column]] = fn(make_env(()))
            rows.append(tuple(values))

        def _apply(txn):
            for row in rows:
                txn.insert(stmt.table, row)

        self.txn_manager.run(_apply)
        return len(rows)

    def _target_rows(self, table_name, where):
        """(pk, values) of rows matching a DML WHERE clause."""
        entry = self.catalog.table(table_name)
        table = entry.table
        binding = RowBinding(
            [OutputCol(c.name, table_name) for c in entry.schema.columns]
        )
        predicate = (
            compile_expr(where, binding, self.placement.expr_ctx)
            if where is not None
            else None
        )
        ci = table.clustered_index()
        if ci is None:
            raise ExecutionError(f"table {table_name} needs a primary key for DML")
        out = []
        for _, values in table.scan():
            if predicate is None or predicate(make_env(values)) is True:
                out.append((ci.key_of(values), values))
        return entry, out

    def _execute_update(self, stmt):
        entry, targets = self._target_rows(stmt.table, stmt.where)
        schema = entry.schema
        binding = RowBinding([OutputCol(c.name, stmt.table) for c in schema.columns])
        expr_ctx = self.placement.expr_ctx
        compiled = [
            (schema.index_of(column), compile_expr(expr, binding, expr_ctx))
            for column, expr in stmt.assignments
        ]

        def _apply(txn):
            for pk, values in targets:
                new_values = list(values)
                env = make_env(values)
                for position, fn in compiled:
                    new_values[position] = fn(env)
                txn.update(stmt.table, pk, new_values)

        self.txn_manager.run(_apply)
        return len(targets)

    def _execute_delete(self, stmt):
        _, targets = self._target_rows(stmt.table, stmt.where)

        def _apply(txn):
            for pk, _ in targets:
                txn.delete(stmt.table, pk)

        self.txn_manager.run(_apply)
        return len(targets)

    # ------------------------------------------------------------------
    # Simulation helpers
    # ------------------------------------------------------------------
    def run_for(self, seconds):
        """Advance simulated time, firing heartbeats and other events."""
        return self.scheduler.run_for(seconds)

    def __repr__(self):
        return f"<BackendServer tables={sorted(t.name for t in self.catalog.tables())}>"
