"""A hand-written SQL tokenizer.

Produces a flat list of :class:`Token` objects.  Keywords are recognized
case-insensitively; identifiers are lower-cased (the engine is
case-insensitive like most SQL systems).  String literals use single quotes
with ``''`` as the escape for a quote.
"""

import enum

from repro.common.errors import ParseError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words.  CURRENCY/BOUND/ON/BY and the time units implement the
#: paper's currency clause; TIMEORDERED implements §2.3 timeline sessions.
KEYWORDS = frozenset(
    """
    select from where group by having order asc desc distinct as and or not
    in between like exists is null insert into values update set delete
    create table index unique clustered primary key view materialized
    currency bound on timeordered begin end explain analyze
    region interval delay heartbeat
    int integer float real string varchar text bool boolean timestamp
    ms sec second seconds min minute minutes hour hours day days
    inner join left outer true false getdate unbounded
    limit union all
    """.split()
)

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
PUNCT = "(),."


class Token:
    __slots__ = ("type", "value", "pos")

    def __init__(self, type_, value, pos):
        self.type = type_
        self.value = value
        self.pos = pos

    def is_keyword(self, *words):
        return self.type is TokenType.KEYWORD and self.value in words

    def __repr__(self):
        return f"Token({self.type.value}, {self.value!r})"


class Lexer:
    """Tokenizes SQL text."""

    def __init__(self, text):
        self.text = text
        self.pos = 0

    def tokens(self):
        """Return the full token list, terminated by an EOF token."""
        out = []
        while True:
            token = self._next()
            out.append(token)
            if token.type is TokenType.EOF:
                return out

    def _peek(self, offset=0):
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def _next(self):
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.text):
            return Token(TokenType.EOF, "", self.pos)
        start = self.pos
        ch = self.text[self.pos]

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(start)
        if ch == "'":
            return self._string(start)
        if ch.isalpha() or ch == "_":
            return self._word(start)
        for op in OPERATORS:
            if self.text.startswith(op, self.pos):
                self.pos += len(op)
                return Token(TokenType.OPERATOR, op, start)
        if ch in PUNCT:
            self.pos += 1
            return Token(TokenType.PUNCT, ch, start)
        raise ParseError(f"unexpected character {ch!r}", start)

    def _skip_whitespace_and_comments(self):
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif self.text.startswith("--", self.pos):
                nl = self.text.find("\n", self.pos)
                self.pos = len(self.text) if nl < 0 else nl + 1
            elif self.text.startswith("/*", self.pos):
                end = self.text.find("*/", self.pos + 2)
                if end < 0:
                    raise ParseError("unterminated block comment", self.pos)
                self.pos = end + 2
            else:
                return

    def _number(self, start):
        is_float = False
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isdigit():
                self.pos += 1
            elif ch == "." and not is_float:
                is_float = True
                self.pos += 1
            else:
                break
        text = self.text[start : self.pos]
        value = float(text) if is_float else int(text)
        return Token(TokenType.NUMBER, value, start)

    def _string(self, start):
        self.pos += 1  # opening quote
        chunks = []
        while True:
            if self.pos >= len(self.text):
                raise ParseError("unterminated string literal", start)
            ch = self.text[self.pos]
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    chunks.append("'")
                    self.pos += 2
                    continue
                self.pos += 1
                return Token(TokenType.STRING, "".join(chunks), start)
            chunks.append(ch)
            self.pos += 1

    def _word(self, start):
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isalnum() or ch == "_":
                self.pos += 1
            else:
                break
        word = self.text[start : self.pos].lower()
        if word in KEYWORDS:
            return Token(TokenType.KEYWORD, word, start)
        return Token(TokenType.IDENT, word, start)
