"""Structural expression comparison, ignoring column qualifiers.

View definitions store predicates over unqualified base-table columns
(``c_acctbal < 500``), while query conjuncts usually qualify them with the
FROM alias (``c.c_acctbal < 500``).  View matching needs to recognize these
as the same predicate; :func:`equal_ignoring_qualifiers` compares the trees
structurally with column names only.
"""

from repro.sql import ast


def equal_ignoring_qualifiers(a, b):
    """True if two expressions are structurally equal modulo qualifiers."""
    if a is None or b is None:
        return a is b
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.ColumnRef):
        return a.name == b.name
    if isinstance(a, ast.Literal):
        return a.value == b.value
    # Generic structural compare: same scalar attributes, recursively equal
    # expression attributes.
    for key, value_a in a.__dict__.items():
        value_b = b.__dict__[key]
        if isinstance(value_a, ast.Expr) or isinstance(value_b, ast.Expr):
            if not equal_ignoring_qualifiers(value_a, value_b):
                return False
        elif isinstance(value_a, (list, tuple)):
            if len(value_a) != len(value_b):
                return False
            for item_a, item_b in zip(value_a, value_b):
                if isinstance(item_a, ast.Expr) or isinstance(item_b, ast.Expr):
                    if not equal_ignoring_qualifiers(item_a, item_b):
                        return False
                elif item_a != item_b:
                    return False
        elif value_a != value_b:
            return False
    return True
