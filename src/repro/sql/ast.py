"""Abstract syntax trees for the SQL subset, including the CURRENCY clause.

Every node knows how to render itself back to SQL (``to_sql``).  This is not
just a debugging aid: MTCache ships the remote branches of its plans to the
back-end server as SQL text, so faithful round-tripping is part of the
execution path.
"""

from repro.common.errors import ParseError

#: Currency bound value meaning "any staleness is acceptable".
UNBOUNDED = float("inf")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for scalar expressions."""

    def to_sql(self):
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}({self.to_sql()})"

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash(self.to_sql())

    def children(self):
        """Child expressions, for generic tree walks."""
        return ()

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def column_refs(self):
        """All ColumnRef nodes in this expression."""
        return [n for n in self.walk() if isinstance(n, ColumnRef)]


class Literal(Expr):
    def __init__(self, value):
        self.value = value

    def to_sql(self):
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


class ColumnRef(Expr):
    """A possibly qualified column reference, e.g. ``c.c_custkey``."""

    def __init__(self, name, qualifier=None):
        self.name = name.lower()
        self.qualifier = qualifier.lower() if qualifier else None

    def to_sql(self):
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    @property
    def full_name(self):
        return self.to_sql()


class BinaryOp(Expr):
    """Arithmetic, comparison and boolean binary operators."""

    COMPARISONS = frozenset(["=", "<>", "!=", "<", "<=", ">", ">="])
    BOOLEAN = frozenset(["and", "or"])
    ARITHMETIC = frozenset(["+", "-", "*", "/", "%"])

    def __init__(self, op, left, right):
        self.op = op.lower()
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def to_sql(self):
        op = self.op.upper() if self.op in self.BOOLEAN else self.op
        return f"({self.left.to_sql()} {op} {self.right.to_sql()})"


class UnaryOp(Expr):
    """NOT and unary minus."""

    def __init__(self, op, operand):
        self.op = op.lower()
        self.operand = operand

    def children(self):
        return (self.operand,)

    def to_sql(self):
        op = "NOT " if self.op == "not" else "-"
        return f"({op}{self.operand.to_sql()})"


class IsNull(Expr):
    def __init__(self, operand, negated=False):
        self.operand = operand
        self.negated = negated

    def children(self):
        return (self.operand,)

    def to_sql(self):
        tail = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {tail})"


class Between(Expr):
    def __init__(self, operand, low, high, negated=False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def children(self):
        return (self.operand, self.low, self.high)

    def to_sql(self):
        neg = "NOT " if self.negated else ""
        return f"({self.operand.to_sql()} {neg}BETWEEN {self.low.to_sql()} AND {self.high.to_sql()})"


class InList(Expr):
    def __init__(self, operand, items, negated=False):
        self.operand = operand
        self.items = list(items)
        self.negated = negated

    def children(self):
        return tuple([self.operand] + self.items)

    def to_sql(self):
        neg = "NOT " if self.negated else ""
        inner = ", ".join(i.to_sql() for i in self.items)
        return f"({self.operand.to_sql()} {neg}IN ({inner}))"


class FuncCall(Expr):
    """Scalar and aggregate function calls (COUNT/SUM/AVG/MIN/MAX/GETDATE)."""

    AGGREGATES = frozenset(["count", "sum", "avg", "min", "max"])

    def __init__(self, name, args, star=False):
        self.name = name.lower()
        self.args = list(args)
        self.star = star  # COUNT(*)

    def children(self):
        return tuple(self.args)

    @property
    def is_aggregate(self):
        return self.name in self.AGGREGATES

    def to_sql(self):
        if self.star:
            return f"{self.name.upper()}(*)"
        inner = ", ".join(a.to_sql() for a in self.args)
        return f"{self.name.upper()}({inner})"


class ExistsSubquery(Expr):
    def __init__(self, select, negated=False):
        self.select = select
        self.negated = negated

    def to_sql(self):
        neg = "NOT " if self.negated else ""
        return f"({neg}EXISTS ({self.select.to_sql()}))"


class InSubquery(Expr):
    def __init__(self, operand, select, negated=False):
        self.operand = operand
        self.select = select
        self.negated = negated

    def children(self):
        return (self.operand,)

    def to_sql(self):
        neg = "NOT " if self.negated else ""
        return f"({self.operand.to_sql()} {neg}IN ({self.select.to_sql()}))"


# ----------------------------------------------------------------------
# Currency clause (the paper's §2 contribution)
# ----------------------------------------------------------------------
class CurrencySpec:
    """One triple of the currency clause:

    * ``bound`` — maximum staleness in seconds (``UNBOUNDED`` allowed);
    * ``targets`` — aliases of the inputs forming one consistency class;
    * ``by_columns`` — optional grouping columns splitting the class into
      per-group consistency groups (paper example: ``(R) BY R.isbn``).
    """

    def __init__(self, bound, targets, by_columns=()):
        if bound < 0:
            raise ParseError(f"currency bound must be non-negative, got {bound}")
        self.bound = float(bound)
        self.targets = [t.lower() for t in targets]
        self.by_columns = list(by_columns)

    def __eq__(self, other):
        return (
            isinstance(other, CurrencySpec)
            and self.bound == other.bound
            and self.targets == other.targets
            and self.by_columns == other.by_columns
        )

    def to_sql(self):
        if self.bound == UNBOUNDED:
            head = "UNBOUNDED"
        elif self.bound == int(self.bound):
            head = f"{int(self.bound)} SEC"
        else:
            head = f"{self.bound} SEC"
        clause = f"{head} ON ({', '.join(self.targets)})"
        if self.by_columns:
            clause += " BY " + ", ".join(c.to_sql() for c in self.by_columns)
        return clause

    def __repr__(self):
        return f"CurrencySpec({self.to_sql()})"


class CurrencyClause:
    """``CURRENCY BOUND spec, spec, ...`` attached to one SFW block."""

    def __init__(self, specs):
        self.specs = list(specs)

    def __eq__(self, other):
        return isinstance(other, CurrencyClause) and self.specs == other.specs

    def to_sql(self):
        return "CURRENCY BOUND " + ", ".join(s.to_sql() for s in self.specs)

    def __repr__(self):
        return f"CurrencyClause({self.to_sql()})"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Statement:
    def to_sql(self):
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}({self.to_sql()})"


class SelectItem:
    """One item of the select list: an expression with an optional alias."""

    def __init__(self, expr, alias=None, star=False, star_qualifier=None):
        self.expr = expr
        self.alias = alias.lower() if alias else None
        self.star = star
        self.star_qualifier = star_qualifier.lower() if star_qualifier else None

    def to_sql(self):
        if self.star:
            return f"{self.star_qualifier}.*" if self.star_qualifier else "*"
        sql = self.expr.to_sql()
        if self.alias:
            sql += f" AS {self.alias}"
        return sql

    def output_name(self):
        """The column name this item produces in the result schema."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return self.expr.to_sql()

    def __repr__(self):
        return f"SelectItem({self.to_sql()})"


class FromTable:
    """A base table (or view) reference in the FROM clause."""

    def __init__(self, name, alias=None):
        self.name = name.lower()
        self.alias = (alias or name).lower()

    def to_sql(self):
        if self.alias != self.name:
            return f"{self.name} {self.alias}"
        return self.name

    def __repr__(self):
        return f"FromTable({self.to_sql()})"


class FromSubquery:
    """A derived table: ``(SELECT ...) alias``."""

    def __init__(self, select, alias):
        self.select = select
        self.alias = alias.lower()

    def to_sql(self):
        return f"({self.select.to_sql()}) {self.alias}"

    def __repr__(self):
        return f"FromSubquery({self.alias})"


class OrderItem:
    def __init__(self, expr, descending=False):
        self.expr = expr
        self.descending = descending

    def to_sql(self):
        return self.expr.to_sql() + (" DESC" if self.descending else "")


class Select(Statement):
    """A Select-From-Where block, optionally with a currency clause."""

    def __init__(
        self,
        items,
        from_items,
        where=None,
        group_by=None,
        having=None,
        order_by=None,
        distinct=False,
        currency=None,
        limit=None,
    ):
        self.items = list(items)
        self.from_items = list(from_items)
        self.where = where
        self.group_by = list(group_by or [])
        self.having = having
        self.order_by = list(order_by or [])
        self.distinct = distinct
        self.currency = currency
        self.limit = limit

    def to_sql(self):
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(i.to_sql() for i in self.items))
        parts.append("FROM")
        parts.append(", ".join(f.to_sql() for f in self.from_items))
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(g.to_sql() for g in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.currency is not None:
            parts.append(self.currency.to_sql())
        return " ".join(parts)


class Insert(Statement):
    def __init__(self, table, columns, rows):
        self.table = table.lower()
        self.columns = [c.lower() for c in columns] if columns else None
        self.rows = [tuple(r) for r in rows]  # rows of Expr

    def to_sql(self):
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        values = ", ".join("(" + ", ".join(v.to_sql() for v in row) + ")" for row in self.rows)
        return f"INSERT INTO {self.table}{cols} VALUES {values}"


class Update(Statement):
    def __init__(self, table, assignments, where=None):
        self.table = table.lower()
        self.assignments = [(c.lower(), e) for c, e in assignments]
        self.where = where

    def to_sql(self):
        sets = ", ".join(f"{c} = {e.to_sql()}" for c, e in self.assignments)
        sql = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        return sql


class Delete(Statement):
    def __init__(self, table, where=None):
        self.table = table.lower()
        self.where = where

    def to_sql(self):
        sql = f"DELETE FROM {self.table}"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        return sql


class ColumnDef:
    def __init__(self, name, type_name, nullable=True):
        self.name = name.lower()
        self.type_name = type_name.lower()
        self.nullable = nullable

    def to_sql(self):
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.type_name.upper()}{null}"


class CreateTable(Statement):
    def __init__(self, name, columns, primary_key=None):
        self.name = name.lower()
        self.columns = list(columns)
        self.primary_key = [c.lower() for c in primary_key] if primary_key else None

    def to_sql(self):
        defs = [c.to_sql() for c in self.columns]
        if self.primary_key:
            defs.append(f"PRIMARY KEY ({', '.join(self.primary_key)})")
        return f"CREATE TABLE {self.name} ({', '.join(defs)})"


class CreateIndex(Statement):
    def __init__(self, name, table, columns, unique=False, clustered=False):
        self.name = name.lower()
        self.table = table.lower()
        self.columns = [c.lower() for c in columns]
        self.unique = unique
        self.clustered = clustered

    def to_sql(self):
        mods = ("UNIQUE " if self.unique else "") + ("CLUSTERED " if self.clustered else "")
        return f"CREATE {mods}INDEX {self.name} ON {self.table} ({', '.join(self.columns)})"


class CreateRegion(Statement):
    """CREATE CURRENCY REGION — cache-side DDL for a currency region."""

    def __init__(self, name, interval, delay, heartbeat=None):
        self.name = name.lower()
        self.interval = float(interval)
        self.delay = float(delay)
        self.heartbeat = float(heartbeat) if heartbeat is not None else None

    def to_sql(self):
        sql = (
            f"CREATE CURRENCY REGION {self.name} "
            f"INTERVAL {self.interval:g} SEC DELAY {self.delay:g} SEC"
        )
        if self.heartbeat is not None:
            sql += f" HEARTBEAT {self.heartbeat:g} SEC"
        return sql


class CreateMatview(Statement):
    """CREATE MATERIALIZED VIEW ... IN REGION r AS SELECT ...

    The defining select is restricted to a single-table
    projection/selection, as in the paper's prototype.
    """

    def __init__(self, name, region, select):
        self.name = name.lower()
        self.region = region.lower()
        self.select = select

    def to_sql(self):
        return (
            f"CREATE MATERIALIZED VIEW {self.name} IN REGION {self.region} "
            f"AS {self.select.to_sql()}"
        )


class Explain(Statement):
    """EXPLAIN [ANALYZE] <select>: return the chosen plan instead of (or,
    with ANALYZE, alongside actually) executing it."""

    def __init__(self, select, analyze=False):
        self.select = select
        self.analyze = analyze

    def to_sql(self):
        keyword = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        return f"{keyword} {self.select.to_sql()}"


class BeginTimeordered(Statement):
    def to_sql(self):
        return "BEGIN TIMEORDERED"


class EndTimeordered(Statement):
    def to_sql(self):
        return "END TIMEORDERED"
