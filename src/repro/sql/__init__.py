"""SQL front-end: lexer, AST and parser for the supported SQL subset,
including the paper's new CURRENCY clause."""

from repro.sql import ast
from repro.sql.lexer import Lexer, Token, TokenType
from repro.sql.parser import Parser, parse, parse_expression

__all__ = [
    "Lexer",
    "Parser",
    "Token",
    "TokenType",
    "ast",
    "parse",
    "parse_expression",
]
