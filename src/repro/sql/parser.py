"""Recursive-descent parser for the SQL subset plus the CURRENCY clause.

Grammar highlights (see the paper's §2 for the currency clause design):

.. code-block:: text

    select        := SELECT [DISTINCT] items FROM from_list [WHERE expr]
                     [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
                     [LIMIT n] [currency_clause]
    currency      := CURRENCY BOUND spec (',' spec)*
    spec          := duration ON '(' ident (',' ident)* ')' [BY colrefs]
    duration      := NUMBER [unit] | UNBOUNDED
    unit          := MS|SEC|SECOND(S)|MIN|MINUTE(S)|HOUR(S)|DAY(S)

The FROM clause accepts comma joins, ``[INNER] JOIN ... ON`` and derived
tables ``(SELECT ...) alias``.  JOIN/ON pairs are normalized into the from
list plus conjuncts in WHERE, which is the form the optimizer consumes.
"""

from repro.common.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Lexer, TokenType

#: duration-unit -> seconds multiplier
_UNITS = {
    "ms": 0.001,
    "sec": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "min": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "day": 86400.0,
    "days": 86400.0,
}


def parse(sql, registry=None):
    """Parse one SQL statement and return its AST node.

    ``registry`` (a :class:`repro.obs.MetricsRegistry`) is optional; when
    given, the parse is timed as a ``parse`` span and counted, which is
    how MTCache attributes front-end time in its metrics.
    """
    if registry is None:
        return Parser(sql).parse_statement()
    with registry.span("parse"):
        stmt = Parser(sql).parse_statement()
    registry.counter("statements_parsed_total", help="SQL statements parsed").inc()
    return stmt


def parse_expression(sql):
    """Parse a standalone scalar expression (used for view predicates)."""
    parser = Parser(sql)
    expr = parser._expr()
    parser._expect_eof()
    return expr


class Parser:
    def __init__(self, sql):
        self.sql = sql
        self.tokens = Lexer(sql).tokens()
        self.i = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset=0):
        i = min(self.i + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _advance(self):
        token = self.tokens[self.i]
        if token.type is not TokenType.EOF:
            self.i += 1
        return token

    def _error(self, message):
        token = self._peek()
        raise ParseError(f"{message}, found {token.value!r}", token.pos)

    def _accept_keyword(self, *words):
        if self._peek().is_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, *words):
        token = self._accept_keyword(*words)
        if token is None:
            self._error(f"expected {'/'.join(w.upper() for w in words)}")
        return token

    def _accept_punct(self, ch):
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == ch:
            return self._advance()
        return None

    def _expect_punct(self, ch):
        if self._accept_punct(ch) is None:
            self._error(f"expected {ch!r}")

    def _accept_operator(self, *ops):
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ops:
            return self._advance()
        return None

    def _ident(self, what="identifier"):
        token = self._peek()
        if token.type is TokenType.IDENT:
            return self._advance().value
        # Non-reserved-in-context keywords usable as identifiers would go
        # here; we keep the grammar strict instead.
        self._error(f"expected {what}")

    def _expect_eof(self):
        if self._peek().type is not TokenType.EOF:
            self._error("unexpected trailing input")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self):
        token = self._peek()
        if token.is_keyword("select"):
            stmt = self._select()
        elif token.is_keyword("insert"):
            stmt = self._insert()
        elif token.is_keyword("update"):
            stmt = self._update()
        elif token.is_keyword("delete"):
            stmt = self._delete()
        elif token.is_keyword("create"):
            stmt = self._create()
        elif token.is_keyword("explain"):
            self._advance()
            analyze = self._accept_keyword("analyze") is not None
            stmt = ast.Explain(self._select(), analyze=analyze)
        elif token.is_keyword("begin"):
            self._advance()
            self._expect_keyword("timeordered")
            stmt = ast.BeginTimeordered()
        elif token.is_keyword("end"):
            self._advance()
            self._expect_keyword("timeordered")
            stmt = ast.EndTimeordered()
        else:
            self._error("expected a statement")
        self._expect_eof()
        return stmt

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _select(self):
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct") is not None
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())

        self._expect_keyword("from")
        from_items, join_conds = self._from_list()

        where = None
        if self._accept_keyword("where"):
            where = self._expr()
        for cond in join_conds:
            where = cond if where is None else ast.BinaryOp("and", where, cond)

        group_by = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._expr())
            while self._accept_punct(","):
                group_by.append(self._expr())

        having = None
        if self._accept_keyword("having"):
            having = self._expr()

        order_by = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())

        limit = None
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
                self._error("expected integer after LIMIT")
            limit = self._advance().value

        currency = self._currency_clause()

        return ast.Select(
            items,
            from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            distinct=distinct,
            currency=currency,
            limit=limit,
        )

    def _select_item(self):
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.SelectItem(None, star=True)
        # qualified star: ident . *
        if (
            token.type is TokenType.IDENT
            and self._peek(1).type is TokenType.PUNCT
            and self._peek(1).value == "."
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).value == "*"
        ):
            qualifier = self._advance().value
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(None, star=True, star_qualifier=qualifier)
        expr = self._expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._ident("alias")
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias=alias)

    def _order_item(self):
        expr = self._expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr, descending=descending)

    def _from_list(self):
        """Parse the FROM clause; returns (from_items, join_conditions)."""
        items = []
        conds = []
        items.append(self._from_item())
        while True:
            if self._accept_punct(","):
                items.append(self._from_item())
                continue
            if self._peek().is_keyword("join", "inner", "left"):
                if self._accept_keyword("left"):
                    self._accept_keyword("outer")
                    self._error("LEFT OUTER JOIN is not supported")
                self._accept_keyword("inner")
                self._expect_keyword("join")
                items.append(self._from_item())
                self._expect_keyword("on")
                conds.append(self._expr())
                continue
            return items, conds

    def _from_item(self):
        if self._accept_punct("("):
            select = self._select()
            self._expect_punct(")")
            self._accept_keyword("as")
            alias = self._ident("derived-table alias")
            return ast.FromSubquery(select, alias)
        name = self._ident("table name")
        alias = None
        if self._accept_keyword("as"):
            alias = self._ident("alias")
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return ast.FromTable(name, alias)

    # ------------------------------------------------------------------
    # CURRENCY clause
    # ------------------------------------------------------------------
    def _currency_clause(self):
        if not self._accept_keyword("currency"):
            return None
        self._expect_keyword("bound")
        specs = [self._currency_spec()]
        while self._accept_punct(","):
            specs.append(self._currency_spec())
        return ast.CurrencyClause(specs)

    def _currency_spec(self):
        bound = self._duration()
        self._expect_keyword("on")
        self._expect_punct("(")
        targets = [self._ident("input name")]
        while self._accept_punct(","):
            targets.append(self._ident("input name"))
        self._expect_punct(")")
        by_columns = []
        if self._accept_keyword("by"):
            by_columns.append(self._column_ref())
            # A comma may either continue the BY list or start the next
            # spec ("... BY b.isbn, 30 MIN ON (r)"); only consume it when
            # an identifier (a column reference) follows.
            while (
                self._peek().type is TokenType.PUNCT
                and self._peek().value == ","
                and self._peek(1).type is TokenType.IDENT
            ):
                self._advance()
                by_columns.append(self._column_ref())
        return ast.CurrencySpec(bound, targets, by_columns)

    def _duration(self):
        if self._accept_keyword("unbounded"):
            return ast.UNBOUNDED
        token = self._peek()
        if token.type is not TokenType.NUMBER:
            self._error("expected a currency bound (number or UNBOUNDED)")
        value = self._advance().value
        unit_token = self._peek()
        if unit_token.type is TokenType.KEYWORD and unit_token.value in _UNITS:
            self._advance()
            return value * _UNITS[unit_token.value]
        return float(value)  # bare number: seconds

    def _column_ref(self):
        first = self._ident("column reference")
        if self._accept_punct("."):
            return ast.ColumnRef(self._ident("column name"), qualifier=first)
        return ast.ColumnRef(first)

    # ------------------------------------------------------------------
    # DML / DDL
    # ------------------------------------------------------------------
    def _insert(self):
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._ident("table name")
        columns = None
        if self._accept_punct("("):
            columns = [self._ident("column name")]
            while self._accept_punct(","):
                columns.append(self._ident("column name"))
            self._expect_punct(")")
        self._expect_keyword("values")
        rows = [self._value_row()]
        while self._accept_punct(","):
            rows.append(self._value_row())
        return ast.Insert(table, columns, rows)

    def _value_row(self):
        self._expect_punct("(")
        values = [self._expr()]
        while self._accept_punct(","):
            values.append(self._expr())
        self._expect_punct(")")
        return values

    def _update(self):
        self._expect_keyword("update")
        table = self._ident("table name")
        self._expect_keyword("set")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = None
        if self._accept_keyword("where"):
            where = self._expr()
        return ast.Update(table, assignments, where=where)

    def _assignment(self):
        column = self._ident("column name")
        if self._accept_operator("=") is None:
            self._error("expected '=' in SET clause")
        return column, self._expr()

    def _delete(self):
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._ident("table name")
        where = None
        if self._accept_keyword("where"):
            where = self._expr()
        return ast.Delete(table, where=where)

    def _create(self):
        self._expect_keyword("create")
        if self._accept_keyword("currency"):
            return self._create_region()
        if self._accept_keyword("materialized"):
            return self._create_matview()
        unique = self._accept_keyword("unique") is not None
        clustered = self._accept_keyword("clustered") is not None
        if unique or clustered or self._peek().is_keyword("index"):
            clustered = clustered or self._accept_keyword("clustered") is not None
            self._expect_keyword("index")
            name = self._ident("index name")
            self._expect_keyword("on")
            table = self._ident("table name")
            self._expect_punct("(")
            columns = [self._ident("column name")]
            while self._accept_punct(","):
                columns.append(self._ident("column name"))
            self._expect_punct(")")
            return ast.CreateIndex(name, table, columns, unique=unique, clustered=clustered)
        self._expect_keyword("table")
        name = self._ident("table name")
        self._expect_punct("(")
        columns = []
        primary_key = None
        while True:
            if self._accept_keyword("primary"):
                self._expect_keyword("key")
                self._expect_punct("(")
                primary_key = [self._ident("column name")]
                while self._accept_punct(","):
                    primary_key.append(self._ident("column name"))
                self._expect_punct(")")
            else:
                columns.append(self._column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateTable(name, columns, primary_key=primary_key)

    def _create_region(self):
        """CREATE CURRENCY REGION name INTERVAL d DELAY d [HEARTBEAT d]."""
        self._expect_keyword("region")
        name = self._ident("region name")
        self._expect_keyword("interval")
        interval = self._duration()
        self._expect_keyword("delay")
        delay = self._duration()
        heartbeat = None
        if self._accept_keyword("heartbeat"):
            heartbeat = self._duration()
        return ast.CreateRegion(name, interval, delay, heartbeat=heartbeat)

    def _create_matview(self):
        """CREATE MATERIALIZED VIEW name IN REGION r AS SELECT ..."""
        self._expect_keyword("view")
        name = self._ident("view name")
        self._expect_keyword("in")
        self._expect_keyword("region")
        region = self._ident("region name")
        self._expect_keyword("as")
        select = self._select()
        return ast.CreateMatview(name, region, select)

    _TYPE_KEYWORDS = (
        "int",
        "integer",
        "float",
        "real",
        "string",
        "varchar",
        "text",
        "bool",
        "boolean",
        "timestamp",
    )

    def _column_def(self):
        name = self._ident("column name")
        type_token = self._expect_keyword(*self._TYPE_KEYWORDS)
        # Swallow an optional length, e.g. VARCHAR(25).
        if self._accept_punct("("):
            if self._peek().type is TokenType.NUMBER:
                self._advance()
            self._expect_punct(")")
        nullable = True
        if self._accept_keyword("not"):
            self._expect_keyword("null")
            nullable = False
        else:
            self._accept_keyword("null")
        return ast.ColumnDef(name, type_token.value, nullable=nullable)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expr(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = ast.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = ast.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self):
        if self._accept_keyword("not"):
            return ast.UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self):
        if self._peek().is_keyword("exists"):
            self._advance()
            self._expect_punct("(")
            select = self._select()
            self._expect_punct(")")
            return ast.ExistsSubquery(select)

        left = self._additive()

        negated = self._accept_keyword("not") is not None
        if self._accept_keyword("between"):
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return ast.Between(left, low, high, negated=negated)
        if self._accept_keyword("in"):
            self._expect_punct("(")
            if self._peek().is_keyword("select"):
                select = self._select()
                self._expect_punct(")")
                return ast.InSubquery(left, select, negated=negated)
            items = [self._expr()]
            while self._accept_punct(","):
                items.append(self._expr())
            self._expect_punct(")")
            return ast.InList(left, items, negated=negated)
        if negated:
            self._error("expected BETWEEN or IN after NOT")

        if self._accept_keyword("is"):
            is_negated = self._accept_keyword("not") is not None
            self._expect_keyword("null")
            return ast.IsNull(left, negated=is_negated)

        op = self._accept_operator("=", "<>", "!=", "<", "<=", ">", ">=")
        if op is not None:
            right = self._additive()
            op_value = "<>" if op.value == "!=" else op.value
            return ast.BinaryOp(op_value, left, right)
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            op = self._accept_operator("+", "-")
            if op is None:
                return left
            left = ast.BinaryOp(op.value, left, self._multiplicative())

    def _multiplicative(self):
        left = self._unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return left
            left = ast.BinaryOp(op.value, left, self._unary())

    def _unary(self):
        if self._accept_operator("-"):
            return ast.UnaryOp("-", self._unary())
        self._accept_operator("+")
        return self._primary()

    def _primary(self):
        token = self._peek()
        if token.type is TokenType.NUMBER:
            return ast.Literal(self._advance().value)
        if token.type is TokenType.STRING:
            return ast.Literal(self._advance().value)
        if token.is_keyword("null"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("getdate"):
            self._advance()
            self._expect_punct("(")
            self._expect_punct(")")
            return ast.FuncCall("getdate", [])
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            if self._peek().is_keyword("select"):
                select = self._select()
                self._expect_punct(")")
                return ast.ExistsSubquery(select)  # bare subquery treated as EXISTS
            expr = self._expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            name = self._advance().value
            if self._accept_punct("("):
                return self._func_call_tail(name)
            if self._accept_punct("."):
                return ast.ColumnRef(self._ident("column name"), qualifier=name)
            return ast.ColumnRef(name)
        # Aggregate keywords COUNT/SUM/... are identifiers in our lexer; MIN
        # however collides with the MIN time-unit keyword, so accept it here.
        if token.is_keyword("min"):
            self._advance()
            self._expect_punct("(")
            return self._func_call_tail("min")
        self._error("expected an expression")

    def _func_call_tail(self, name):
        """Parse the argument list after ``name(``."""
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            self._expect_punct(")")
            return ast.FuncCall(name, [], star=True)
        args = []
        if not (token.type is TokenType.PUNCT and token.value == ")"):
            args.append(self._expr())
            while self._accept_punct(","):
                args.append(self._expr())
        self._expect_punct(")")
        return ast.FuncCall(name, args)
