"""Observability: metrics and trace spans for the whole query path.

The paper's evaluation is all *measured* behavior — phase overheads
(Table 4.5), guard hit rates, local-vs-remote load split — so the
reproduction carries one always-on instrumentation layer instead of
ad-hoc counters scattered across modules:

* :class:`MetricsRegistry` — counters, gauges and histograms (with
  bounded reservoirs for percentiles), labelled Prometheus-style;
* :meth:`MetricsRegistry.span` — nested trace spans timing parse /
  optimize / execute sections;
* :class:`NullRegistry` — a no-op drop-in for micro-benchmarks that
  must not pay even the registry's nanoseconds.

Every MTCache owns a registry (``cache.metrics``); ``snapshot()`` gives
a flat dict and ``render_text()`` the Prometheus text exposition format
(also reachable through the CLI's ``\\metrics`` meta-command).
"""

from repro.obs.events import SEVERITIES, Event, EventLog
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACE,
    Span,
    SpanLog,
    TraceContext,
    TraceExporter,
    TraceLog,
)

__all__ = [
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACE",
    "SEVERITIES",
    "Span",
    "SpanLog",
    "TraceContext",
    "TraceExporter",
    "TraceLog",
]
