"""A bounded structured event log for operator-facing state changes.

Metrics answer "how much / how often"; the event log answers "what
happened and when".  Components record typed events — guard decisions,
circuit-breaker transitions, degraded-mode fallbacks, replication-agent
propagation, injected outages — with a severity and arbitrary key/value
attributes, into a fixed-capacity ring (newest wins), so the CLI's
``\\events`` and :meth:`CacheFleet.slo_report` can reconstruct the
recent timeline of a run without unbounded memory.
"""

__all__ = ["Event", "EventLog", "SEVERITIES"]

#: Severity names in ascending order of urgency.
SEVERITIES = {"debug": 0, "info": 1, "warning": 2, "error": 3}


class Event:
    """One typed occurrence: what kind, how bad, when, and details."""

    __slots__ = ("kind", "severity", "message", "time", "attrs")

    def __init__(self, kind, message, severity="info", time=None, attrs=None):
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self.kind = kind
        self.message = message
        self.severity = severity
        self.time = time
        self.attrs = attrs or {}

    def __repr__(self):
        when = f"t={self.time:g} " if self.time is not None else ""
        return f"Event({when}[{self.severity}] {self.kind}: {self.message})"


class EventLog:
    """Fixed-capacity ring of :class:`Event` records."""

    def __init__(self, capacity=256):
        self.capacity = capacity
        self._entries = []
        #: Optional live tap (``sink(event)`` on every record): the ring
        #: forgets, the sink — e.g. a history recorder — keeps the full
        #: sequence of a run.
        self.sink = None

    def record(self, kind, message, severity="info", time=None, **attrs):
        """Append an event; returns it (or None when capacity is 0)."""
        if self.capacity <= 0:
            return None
        event = Event(kind, message, severity=severity, time=time, attrs=attrs)
        self._entries.append(event)
        if len(self._entries) > self.capacity:
            del self._entries[: len(self._entries) - self.capacity]
        if self.sink is not None:
            self.sink(event)
        return event

    def recent(self, n=20, kind=None, min_severity=None):
        """The last ``n`` events, optionally filtered by kind/severity."""
        entries = self._entries
        if kind is not None:
            entries = [e for e in entries if e.kind == kind]
        if min_severity is not None:
            floor = SEVERITIES[min_severity]
            entries = [e for e in entries if SEVERITIES[e.severity] >= floor]
        return list(entries[-n:])

    def counts_by_kind(self):
        out = {}
        for event in self._entries:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def counts_by_severity(self):
        out = {}
        for event in self._entries:
            out[event.severity] = out.get(event.severity, 0) + 1
        return out

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)
