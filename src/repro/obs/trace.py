"""Trace spans and cross-tier trace context.

A :class:`Span` times one named section of work with
``time.perf_counter`` and remembers where it sat in the call tree: spans
opened while another span is active record that span as their parent and
inherit depth + 1.  The per-registry stack that provides the nesting is
plain Python list push/pop — cheap enough to leave on in production
paths.

On top of the per-registry nesting, a :class:`TraceContext` gives spans
*distributed* identity: a ``trace_id`` shared by every span of one query
plus per-span ``span_id``/``parent_id`` links, so a query that hops from
the fleet router to a node's MTCache to the simulated network produces
one causal tree even though each tier records into its own registry.
Registry-created spans enroll automatically in the registry's
``active_trace`` (when one is set); components that are handed a trace
explicitly open trace-only spans with ``trace.span(name, **attrs)``.

Finished spans are kept in a bounded :class:`SpanLog` ring (newest wins)
and also feed the owning registry's ``span_seconds`` histogram family;
finished traces land in a :class:`TraceLog` ring and are rendered by
:class:`TraceExporter` as an ASCII tree or Chrome ``trace_event`` JSON.
"""

import itertools
import json
import time

__all__ = [
    "Span",
    "SpanLog",
    "TraceContext",
    "TraceLog",
    "TraceExporter",
    "NULL_SPAN",
    "NULL_TRACE",
]


class Span:
    """One timed, possibly nested, section of work.

    Use as a context manager::

        with registry.span("optimize"):
            with registry.span("enumerate_joins"):
                ...

    After exit, ``elapsed`` holds the wall time in seconds, ``parent``
    the enclosing span's name (or None at top level) and ``depth`` the
    nesting level (0 at top level).  When the span belongs to a
    :class:`TraceContext` it additionally carries ``trace_id`` /
    ``span_id`` / ``parent_id`` identity and an ``attrs`` dict of
    caller-provided key/value annotations.
    """

    __slots__ = (
        "name",
        "parent",
        "depth",
        "start",
        "elapsed",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "_registry",
        "_trace",
    )

    def __init__(self, name, registry, trace=None, attrs=None):
        self.name = name
        self._registry = registry
        self._trace = trace
        self.attrs = attrs
        self.parent = None
        self.depth = 0
        self.start = None
        self.elapsed = None
        self.trace_id = None
        self.span_id = None
        self.parent_id = None

    def __enter__(self):
        registry = self._registry
        if registry is not None:
            stack = registry.span_log.stack
            if stack:
                self.parent = stack[-1].name
                self.depth = len(stack)
            stack.append(self)
            if self._trace is None:
                self._trace = registry.active_trace
        trace = self._trace
        if trace is not None:
            trace._enter(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._finish(time.perf_counter())
        return False

    def _finish(self, end):
        """Close this span at time ``end``; idempotent.

        The span is removed from the registry and trace stacks *wherever
        it sits*: if an exception unwound past nested spans, everything
        above it is an orphan that will never see its own ``__exit__``,
        so those spans are finalized here (with this span's end time) to
        keep parent/depth attribution intact for later spans.
        """
        if self.elapsed is not None:
            return
        self.elapsed = end - self.start
        registry = self._registry
        if registry is not None:
            self._pop_from(registry.span_log.stack, end)
        trace = self._trace
        if trace is not None:
            self._pop_from(trace.stack, end)
            trace.record(self)
        if registry is not None:
            registry._finish_span(self)

    def _pop_from(self, stack, end):
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                orphans = stack[i + 1 :]
                del stack[i:]
                for orphan in reversed(orphans):
                    orphan._finish(end)
                return

    def __repr__(self):
        elapsed = f"{self.elapsed * 1e3:.3f}ms" if self.elapsed is not None else "open"
        ident = f" {self.trace_id}/{self.span_id}" if self.trace_id else ""
        return f"Span({self.name!r}, depth={self.depth}, {elapsed}{ident})"


class SpanLog:
    """Bounded ring of finished spans plus the live nesting stack."""

    def __init__(self, capacity=512):
        self.capacity = capacity
        self.stack = []  # currently open spans, innermost last
        self._entries = []

    def record(self, span):
        if self.capacity <= 0:
            return
        self._entries.append(span)
        if len(self._entries) > self.capacity:
            del self._entries[: len(self._entries) - self.capacity]

    def recent(self, n=20):
        return list(self._entries[-n:])

    def clear(self):
        self._entries.clear()
        self.stack.clear()

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


class TraceContext:
    """Identity and span collection for one end-to-end query.

    A trace is created by whichever tier first sees the query (the fleet
    router, or MTCache itself for single-cache use) and passed down the
    call chain; every span entered while it is a registry's
    ``active_trace`` — or created directly with :meth:`span` — gets the
    shared ``trace_id``, a fresh ``span_id``, and a ``parent_id``
    pointing at the innermost open span of the trace, regardless of
    which registry the span reports to.
    """

    __slots__ = ("trace_id", "spans", "stack", "_next_span")

    _ids = itertools.count(1)

    def __init__(self, trace_id=None):
        if trace_id is None:
            trace_id = f"t{next(TraceContext._ids):06d}"
        self.trace_id = trace_id
        self.spans = []  # finished spans, in completion order
        self.stack = []  # open spans of this trace, innermost last
        self._next_span = 1

    def span(self, name, registry=None, **attrs):
        """A trace-only span (no registry stack/histogram unless given)."""
        return Span(name, registry, trace=self, attrs=attrs or None)

    def _enter(self, span):
        span.trace_id = self.trace_id
        span.span_id = f"s{self._next_span}"
        self._next_span += 1
        if self.stack:
            top = self.stack[-1]
            span.parent_id = top.span_id
            if span.parent is None:
                span.parent = top.name
                span.depth = top.depth + 1
        self.stack.append(span)

    def record(self, span):
        self.spans.append(span)

    @property
    def finished(self):
        return not self.stack

    def root(self):
        """The first recorded span with no parent (None while running)."""
        for span in self.spans:
            if span.parent_id is None:
                return span
        return None

    def duration(self):
        """Wall seconds from earliest span start to latest span end."""
        if not self.spans:
            return 0.0
        start = min(s.start for s in self.spans)
        end = max(s.start + s.elapsed for s in self.spans)
        return end - start

    def __len__(self):
        return len(self.spans)

    def __bool__(self):
        # ``if trace:`` is the tracing fast-path test everywhere; without
        # this, __len__ would make a fresh (0-span) trace falsy.
        return True

    def __repr__(self):
        return f"TraceContext({self.trace_id!r}, spans={len(self.spans)})"


class _NullTrace:
    """Falsy no-op trace returned by ``NullRegistry.new_trace()``.

    Keeps the uninstrumented path allocation-free: every ``span()`` is
    the shared NULL_SPAN and nothing is recorded.  Truthiness is the
    fast-path test (``if trace:``), so code holding a NULL_TRACE skips
    trace work entirely.
    """

    __slots__ = ()
    trace_id = None
    spans = ()
    stack = ()
    finished = True

    def __bool__(self):
        return False

    def span(self, name, registry=None, **attrs):
        return NULL_SPAN

    def _enter(self, span):
        pass

    def record(self, span):
        pass

    def root(self):
        return None

    def duration(self):
        return 0.0

    def __len__(self):
        return 0

    def __repr__(self):
        return "<NullTrace>"


class TraceLog:
    """Bounded ring of finished traces (newest wins)."""

    def __init__(self, capacity=64):
        self.capacity = capacity
        self._entries = []

    def record(self, trace):
        if self.capacity <= 0 or not trace or not trace.spans:
            return
        self._entries.append(trace)
        if len(self._entries) > self.capacity:
            del self._entries[: len(self._entries) - self.capacity]

    def get(self, trace_id):
        for trace in reversed(self._entries):
            if trace.trace_id == trace_id:
                return trace
        return None

    def latest(self):
        return self._entries[-1] if self._entries else None

    def recent(self, n=20):
        return list(self._entries[-n:])

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


class TraceExporter:
    """Render a finished :class:`TraceContext` for humans and tools."""

    @staticmethod
    def _tree(trace):
        """(roots, children) maps from parent_id links, in start order."""
        children = {}
        roots = []
        for span in sorted(trace.spans, key=lambda s: (s.start, s.span_id)):
            if span.parent_id is None:
                roots.append(span)
            else:
                children.setdefault(span.parent_id, []).append(span)
        return roots, children

    @staticmethod
    def _format_span(span):
        elapsed = span.elapsed if span.elapsed is not None else 0.0
        text = f"{span.name}  {elapsed * 1e3:.3f}ms"
        if span.attrs:
            inner = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
            text += f"  [{inner}]"
        return text

    @classmethod
    def ascii_tree(cls, trace):
        """The trace as an indented ASCII tree, one line per span."""
        if trace is None or not trace.spans:
            return "(empty trace)"
        roots, children = cls._tree(trace)
        lines = [
            f"trace {trace.trace_id}: {len(trace.spans)} spans, "
            f"{trace.duration() * 1e3:.3f}ms"
        ]

        def walk(span, prefix, is_last):
            branch = "└─ " if is_last else "├─ "
            lines.append(prefix + branch + cls._format_span(span))
            kids = children.get(span.span_id, [])
            child_prefix = prefix + ("   " if is_last else "│  ")
            for i, kid in enumerate(kids):
                walk(kid, child_prefix, i == len(kids) - 1)

        for i, root in enumerate(roots):
            walk(root, "", i == len(roots) - 1)
        return "\n".join(lines)

    @classmethod
    def chrome_json(cls, trace):
        """Chrome ``trace_event`` JSON (load via chrome://tracing)."""
        events = []
        if trace is not None and trace.spans:
            base = min(s.start for s in trace.spans)
            for span in sorted(trace.spans, key=lambda s: (s.start, s.span_id)):
                args = {"span_id": span.span_id}
                if span.parent_id is not None:
                    args["parent_id"] = span.parent_id
                if span.attrs:
                    args.update({k: str(v) for k, v in span.attrs.items()})
                events.append(
                    {
                        "name": span.name,
                        "ph": "X",
                        "ts": round((span.start - base) * 1e6, 3),
                        "dur": round((span.elapsed or 0.0) * 1e6, 3),
                        "pid": 0,
                        "tid": 0,
                        "args": args,
                    }
                )
        return json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, indent=2, sort_keys=True
        )


class _NullSpan:
    """Reusable no-op span for :class:`~repro.obs.metrics.NullRegistry`."""

    __slots__ = ()
    name = None
    parent = None
    depth = 0
    elapsed = 0.0
    attrs = None
    trace_id = None
    span_id = None
    parent_id = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()

#: Shared falsy trace: ``NullRegistry.new_trace()`` hands this out.
NULL_TRACE = _NullTrace()
