"""Lightweight trace spans.

A span times one named section of work with ``time.perf_counter`` and
remembers where it sat in the call tree: spans opened while another span
is active record that span as their parent and inherit depth + 1.  The
per-registry stack that provides the nesting is plain Python list
push/pop — cheap enough to leave on in production paths.

Finished spans are kept in a bounded :class:`SpanLog` ring (newest wins)
and also feed the owning registry's ``span_seconds`` histogram family,
so both individual traces and aggregate timings come out of one
instrumentation point.
"""

import time

__all__ = ["Span", "SpanLog", "NULL_SPAN"]


class Span:
    """One timed, possibly nested, section of work.

    Use as a context manager::

        with registry.span("optimize"):
            with registry.span("enumerate_joins"):
                ...

    After exit, ``elapsed`` holds the wall time in seconds, ``parent``
    the enclosing span's name (or None at top level) and ``depth`` the
    nesting level (0 at top level).
    """

    __slots__ = ("name", "parent", "depth", "start", "elapsed", "_registry")

    def __init__(self, name, registry):
        self.name = name
        self._registry = registry
        self.parent = None
        self.depth = 0
        self.start = None
        self.elapsed = None

    def __enter__(self):
        stack = self._registry.span_log.stack
        if stack:
            self.parent = stack[-1].name
            self.depth = len(stack)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.elapsed = time.perf_counter() - self.start
        stack = self._registry.span_log.stack
        if stack and stack[-1] is self:
            stack.pop()
        self._registry._finish_span(self)
        return False

    def __repr__(self):
        elapsed = f"{self.elapsed * 1e3:.3f}ms" if self.elapsed is not None else "open"
        return f"Span({self.name!r}, depth={self.depth}, {elapsed})"


class SpanLog:
    """Bounded ring of finished spans plus the live nesting stack."""

    def __init__(self, capacity=512):
        self.capacity = capacity
        self.stack = []  # currently open spans, innermost last
        self._entries = []

    def record(self, span):
        if self.capacity <= 0:
            return
        self._entries.append(span)
        if len(self._entries) > self.capacity:
            del self._entries[: len(self._entries) - self.capacity]

    def recent(self, n=20):
        return list(self._entries[-n:])

    def clear(self):
        self._entries.clear()
        self.stack.clear()

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


class _NullSpan:
    """Reusable no-op span for :class:`~repro.obs.metrics.NullRegistry`."""

    __slots__ = ()
    name = None
    parent = None
    depth = 0
    elapsed = 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()
