"""Metric primitives and the registry they live in.

Three metric types, mirroring the Prometheus data model the exporter
speaks:

* :class:`Counter` — monotonically increasing count (plan-cache hits,
  rows produced, guard outcomes);
* :class:`Gauge` — a value that goes up and down (per-region replication
  staleness);
* :class:`Histogram` — a distribution with total count/sum plus a
  *bounded reservoir* of recent observations for percentile estimates
  (parse/optimize/execute-phase times).

Metrics are identified by name plus an optional label set, exactly like
Prometheus time series: ``registry.counter("queries_total",
labels={"routing": "local"})`` and the same name with ``"remote"`` are
two independent series of one metric family.

The registry is deliberately lock-free: the whole reproduction runs on a
single-threaded simulated scheduler, and the hot-path cost of a metric
update must stay in the tens of nanoseconds so instrumentation can be
always-on (the guard-overhead benchmark enforces < 5% total overhead).
"""

from repro.obs.events import EventLog
from repro.obs.trace import NULL_SPAN, NULL_TRACE, Span, SpanLog, TraceContext

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]


def _label_key(labels):
    """Canonical, hashable form of a label dict (sorted tuple of pairs).

    Keys and values are coerced to strings — Prometheus labels are
    strings, and it keeps series ordering total (no cross-type
    comparisons when sorting for export)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name, label_key):
    """Prometheus-style series name: ``name{k="v",...}`` (or bare name)."""
    if not label_key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in label_key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        self.value += n


class Gauge:
    """A value that can be set up or down."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = value

    def inc(self, n=1):
        self.value += n

    def dec(self, n=1):
        self.value -= n


class Histogram:
    """A distribution: exact count/sum/min/max plus a bounded reservoir.

    The reservoir is a fixed-size ring of the most recent observations —
    bounded memory no matter how long the process runs — from which
    percentiles are estimated.  For the steady-state workloads the
    benchmarks run, recent-window percentiles are exactly what an
    operator wants to see.
    """

    __slots__ = ("count", "sum", "min", "max", "_ring", "_size", "_next")

    def __init__(self, reservoir_size=256):
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._ring = []
        self._size = reservoir_size
        self._next = 0

    def observe(self, value):
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        ring = self._ring
        if len(ring) < self._size:
            ring.append(value)
        else:
            ring[self._next] = value
            self._next = (self._next + 1) % self._size

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p):
        """Estimated p-th percentile (0..100) over the reservoir window.

        Linear interpolation between closest ranks (the "exclusive of
        rounding" definition numpy calls ``linear``): deterministic, and
        p50 of two samples is their midpoint rather than whichever one
        banker's rounding happened to pick.  p<=0 gives the window min,
        p>=100 the window max; a single sample is every percentile.
        """
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        last = len(ordered) - 1
        if last == 0 or p <= 0:
            return ordered[0]
        if p >= 100:
            return ordered[last]
        rank = p / 100.0 * last
        lo = int(rank)
        frac = rank - lo
        if frac == 0.0:
            return ordered[lo]
        return ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac

    def summary(self):
        """Snapshot dict: count/sum/mean/min/max and window percentiles."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


_FACTORIES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricsRegistry:
    """Named metric families with labels, plus the trace-span log.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create a series, so
    instrumented code can simply call them on the hot path; callers that
    care about the (small) lookup cost resolve the series once and keep
    the returned object.
    """

    def __init__(self, reservoir_size=256, max_spans=512, max_events=256):
        self._series = {}  # (name, label_key) -> metric object
        self._kinds = {}  # name -> "counter" | "gauge" | "histogram"
        self._help = {}  # name -> help text
        self._reservoir_size = reservoir_size
        self.span_log = SpanLog(max_spans)
        self.events = EventLog(max_events)
        #: When set, registry-created spans enroll in this trace.
        self.active_trace = None

    # ------------------------------------------------------------------
    # Series access
    # ------------------------------------------------------------------
    def _get(self, kind, name, labels, help):
        key = (name, _label_key(labels))
        metric = self._series.get(key)
        if metric is not None:
            if self._kinds[name] != kind:
                raise ValueError(
                    f"metric {name!r} is a {self._kinds[name]}, not a {kind}"
                )
            return metric
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ValueError(f"metric {name!r} is a {known}, not a {kind}")
        self._kinds[name] = kind
        if help:
            self._help[name] = help
        if kind == "histogram":
            metric = Histogram(self._reservoir_size)
        else:
            metric = _FACTORIES[kind]()
        self._series[key] = metric
        return metric

    def counter(self, name, labels=None, help=""):
        return self._get("counter", name, labels, help)

    def gauge(self, name, labels=None, help=""):
        return self._get("gauge", name, labels, help)

    def histogram(self, name, labels=None, help=""):
        return self._get("histogram", name, labels, help)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def span(self, name):
        """A context manager timing one traced section.

        Spans nest: a span opened while another is active records it as
        its parent; every finished span lands in ``span_log`` and feeds
        the ``span_seconds{span=...}`` histogram family.
        """
        return Span(name, self)

    def _finish_span(self, span):
        self.span_log.record(span)
        self.histogram("span_seconds", labels={"span": span.name}).observe(span.elapsed)

    def new_trace(self):
        """A fresh :class:`TraceContext` for one end-to-end query."""
        return TraceContext()

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def event(self, kind, message, severity="info", time=None, **attrs):
        """Record a typed event into the registry's bounded event log."""
        return self.events.record(kind, message, severity=severity, time=time, **attrs)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def family(self, name):
        """All series of one metric family, keyed by their label tuple.

        Keys are the canonical ``(("k", "v"), ...)`` tuples (pass them to
        ``dict()`` for a labels dict); values are the metric objects.
        """
        return {
            label_key: metric
            for (series_name, label_key), metric in self._series.items()
            if series_name == name
        }

    def snapshot(self):
        """All series as a flat dict keyed by Prometheus-style names.

        Counter/gauge series map to their value; histogram series map to
        their :meth:`Histogram.summary` dict.
        """
        out = {}
        for (name, label_key), metric in sorted(self._series.items()):
            series = _series_name(name, label_key)
            if isinstance(metric, Histogram):
                out[series] = metric.summary()
            else:
                out[series] = metric.value
        return out

    def render_text(self):
        """Prometheus text exposition format (histograms as summaries).

        Output is deterministic — families sorted by name, series within
        a family sorted by label tuple, ``# HELP`` / ``# TYPE`` emitted
        exactly once per family — so ``\\metrics`` dumps are stable and
        diffable in tests.
        """
        by_name = {}
        for (name, label_key), metric in self._series.items():
            by_name.setdefault(name, []).append((label_key, metric))
        lines = []
        for name in sorted(by_name):
            kind = self._kinds[name]
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {'summary' if kind == 'histogram' else kind}")
            for label_key, metric in sorted(by_name[name], key=lambda item: item[0]):
                if kind == "histogram":
                    for q, p in (("0.5", 50), ("0.95", 95), ("0.99", 99)):
                        q_key = label_key + (("quantile", q),)
                        lines.append(
                            f"{_series_name(name, q_key)} {metric.percentile(p):.9g}"
                        )
                    lines.append(f"{_series_name(name + '_sum', label_key)} {metric.sum:.9g}")
                    lines.append(f"{_series_name(name + '_count', label_key)} {metric.count}")
                else:
                    value = metric.value
                    text = f"{value:.9g}" if isinstance(value, float) else str(value)
                    lines.append(f"{_series_name(name, label_key)} {text}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self):
        """Drop every series, span, and event (tests, between runs)."""
        self._series.clear()
        self._kinds.clear()
        self._help.clear()
        self.span_log.clear()
        self.events.clear()
        self.active_trace = None

    def __repr__(self):
        return f"<MetricsRegistry series={len(self._series)} spans={len(self.span_log)}>"


class _NullMetric:
    """Shared no-op stand-in for Counter, Gauge and Histogram."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0
    min = None
    max = None

    def inc(self, n=1):
        pass

    def dec(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def percentile(self, p):
        return 0.0

    def summary(self):
        return {}


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """A registry whose every operation is a no-op.

    Drop-in for :class:`MetricsRegistry` where even nanoseconds matter
    (micro-benchmarks measuring the instrumentation itself, throwaway
    caches in tight loops).  ``MTCache(backend, metrics=NullRegistry())``
    turns the whole pipeline's instrumentation off.
    """

    span_log = SpanLog(0)
    events = EventLog(0)
    active_trace = None

    def counter(self, name, labels=None, help=""):
        return _NULL_METRIC

    def gauge(self, name, labels=None, help=""):
        return _NULL_METRIC

    def histogram(self, name, labels=None, help=""):
        return _NULL_METRIC

    def span(self, name):
        return NULL_SPAN

    def new_trace(self):
        return NULL_TRACE

    def event(self, kind, message, severity="info", time=None, **attrs):
        return None

    def family(self, name):
        return {}

    def snapshot(self):
        return {}

    def render_text(self):
        return ""

    def reset(self):
        pass

    def __repr__(self):
        return "<NullRegistry>"


#: Shared default instance: uninstrumented components point here.
NULL_REGISTRY = NullRegistry()
