"""Fleet-shared store of precompiled plan snapshots.

One :class:`PlanSnapshotStore` is shared by every node of a
:class:`~repro.fleet.fleet.CacheFleet` (a standalone MTCache may own a
private one).  Keys are ``(sql, fingerprint, engine)``: the fingerprint
digests everything plan choice depends on besides the SQL text — cache
configuration (matview definitions, regions and their currency
parameters), fallback policy and shard topology — so two nodes only
share a snapshot when it is actually valid on both.

Entries carry the publishing node's catalog *epoch* and a TTL on the
simulated clock.  ``get`` re-validates both, so a stale snapshot is
never instantiated; DDL, region reconfiguration and fleet topology
changes call :meth:`invalidate` to drop everything eagerly.
"""

from collections import OrderedDict

__all__ = ["PlanSnapshotStore"]

DEFAULT_CAPACITY = 256
DEFAULT_TTL = 300.0  # simulated seconds


class PlanSnapshotStore:
    """Keyed, TTL'd, LRU-bounded snapshot store.

    ``clock`` is any object with ``now()`` (the fleet's simulated clock);
    without one, entries never expire by time.
    """

    def __init__(self, clock=None, *, capacity=DEFAULT_CAPACITY, ttl=DEFAULT_TTL):
        self.clock = clock
        self.capacity = capacity
        self.ttl = ttl
        self._entries = OrderedDict()  # key -> (snapshot, epoch, expires_at)
        self.stats = {
            "hits": 0,
            "misses": 0,
            "publishes": 0,
            "expirations": 0,
            "epoch_rejections": 0,
            "invalidations": 0,
        }
        self.last_invalidation = None  # reason string of the most recent wipe

    def __len__(self):
        return len(self._entries)

    def _now(self):
        return self.clock.now() if self.clock is not None else None

    @staticmethod
    def _key(sql, fingerprint, engine):
        return (sql, fingerprint, engine)

    def publish(self, sql, fingerprint, engine, snapshot, *, epoch=0):
        """Store a snapshot under ``(sql, fingerprint, engine)``, stamped
        with the publisher's catalog epoch."""
        now = self._now()
        expires_at = None if now is None else now + self.ttl
        key = self._key(sql, fingerprint, engine)
        self._entries[key] = (snapshot, epoch, expires_at)
        self._entries.move_to_end(key)
        self.stats["publishes"] += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def get(self, sql, fingerprint, engine, *, epoch=0):
        """Return the stored snapshot, or None.

        Rejects (and drops) entries published under a different catalog
        epoch or past their TTL — both count in ``stats`` so monitoring
        can distinguish cold misses from staleness churn.
        """
        key = self._key(sql, fingerprint, engine)
        entry = self._entries.get(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        snapshot, snap_epoch, expires_at = entry
        if snap_epoch != epoch:
            del self._entries[key]
            self.stats["epoch_rejections"] += 1
            self.stats["misses"] += 1
            return None
        now = self._now()
        if expires_at is not None and now is not None and now >= expires_at:
            del self._entries[key]
            self.stats["expirations"] += 1
            self.stats["misses"] += 1
            return None
        self._entries.move_to_end(key)
        self.stats["hits"] += 1
        return snapshot

    def invalidate(self, reason="ddl"):
        """Drop every snapshot (DDL, region or topology change)."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats["invalidations"] += 1
        self.last_invalidation = reason
        return dropped

    def __repr__(self):
        return (
            f"PlanSnapshotStore(n={len(self._entries)}, "
            f"hits={self.stats['hits']}, misses={self.stats['misses']})"
        )
