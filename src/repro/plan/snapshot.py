"""Plan snapshots: serialize an optimized plan, instantiate it anywhere.

A snapshot is a plain dict (json.dumps-compatible) describing a physical
operator tree:

* tables and indexes by *name*, resolved against the instantiating
  node's catalog;
* every compiled predicate / key / projection as the restricted
  expression IR of :mod:`repro.engine.ir` (``fn.ir``, attached by
  ``compile_expr``) — closures are rebuilt locally with identical
  three-valued semantics;
* currency guards by their parameters (``view``, ``bound``, ``shard``,
  from ``selector.guard_params``) — the guard itself is *rebuilt by the
  instantiating node* against its own local heartbeat state, never
  shipped;
* remote queries by SQL text plus their shard pin;
* the optimizer's per-operator estimates (``est_rows`` / ``est_cost``),
  re-stamped at instantiation so EXPLAIN ANALYZE and the executor's
  adaptive columnar threshold behave identically.

Anything outside that vocabulary — subquery-bearing closures (no IR),
operators over buffered row sets — raises :class:`SnapshotUnsupported`;
callers fall back to normal optimization.  ``version`` gates the format:
an instantiating node refuses snapshots from a different format version.
"""

from repro.common.errors import ExecutionError
from repro.engine import ir as eir
from repro.engine import operators as ops
from repro.engine.expressions import ExpressionContext, OutputCol, RowBinding
from repro.optimizer.candidates import stamp_estimates

#: Format version; bump on any change to the snapshot vocabulary.
SNAPSHOT_VERSION = 1

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotPlan",
    "SnapshotUnsupported",
    "serialize_plan",
    "instantiate_snapshot",
]


class SnapshotUnsupported(ExecutionError):
    """The plan cannot be expressed in the snapshot vocabulary."""


_SCALARS = (bool, int, float, str)


def _scalar(value, what):
    if value is not None and not isinstance(value, _SCALARS):
        raise SnapshotUnsupported(f"non-scalar {what}: {value!r}")
    return value


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _binding_obj(binding):
    if binding is None:
        raise SnapshotUnsupported("operator without an output binding")
    if binding.outer is not None:
        raise SnapshotUnsupported("binding with an outer scope")
    return [[c.qualifier, c.name] for c in binding.columns]


def _expr_obj(fn, what="predicate"):
    if fn is None:
        return None
    node = getattr(fn, "ir", None)
    if node is None:
        raise SnapshotUnsupported(f"{what} has no IR (subquery or correlated)")
    return eir.to_obj(node)


def _expr_objs(fns, what):
    return [_expr_obj(fn, what) for fn in fns]


def serialize_plan(plan, engine=None):
    """Serialize an :class:`~repro.optimizer.optimizer.OptimizedPlan`
    (or any object exposing ``root()`` / ``column_names`` / ``cost`` /
    ``est_rows``) into a snapshot dict, or raise
    :class:`SnapshotUnsupported`."""
    root = plan.root()
    snapshot = {
        "version": SNAPSHOT_VERSION,
        "engine": engine,
        "column_names": list(plan.column_names or []),
        "cost": float(plan.cost) if plan.cost is not None else None,
        "est_rows": float(plan.est_rows) if plan.est_rows is not None else None,
        "root": _serialize_op(root),
    }
    return snapshot


def _serialize_op(op):
    record = _OP_SERIALIZERS.get(type(op))
    if record is None:
        raise SnapshotUnsupported(f"operator {type(op).__name__} cannot snapshot")
    out = record(op)
    out["est_rows"] = op.est_rows
    out["est_cost"] = op.est_cost
    return out


def _ser_seq_scan(op):
    return {
        "op": "SeqScan",
        "table": op.table.name,
        "binding": _binding_obj(op.output),
        "predicate": _expr_obj(op.predicate),
    }


def _ser_index_seek(op):
    return {
        "op": "IndexSeek",
        "table": op.table.name,
        "index": op.index.name,
        "keys": _expr_objs(op.key_fns, "index key"),
        "binding": _binding_obj(op.output),
        "predicate": _expr_obj(op.predicate),
    }


def _ser_index_range(op):
    def key_obj(key):
        if key is None:
            return None
        return [_scalar(v, "range key component") for v in key]

    return {
        "op": "IndexRangeScan",
        "table": op.table.name,
        "index": op.index.name,
        "low": key_obj(op.low),
        "high": key_obj(op.high),
        "low_inclusive": op.low_inclusive,
        "high_inclusive": op.high_inclusive,
        "binding": _binding_obj(op.output),
        "predicate": _expr_obj(op.predicate),
    }


def _ser_filter(op):
    return {
        "op": "Filter",
        "child": _serialize_op(op.child),
        "binding": _binding_obj(op.output),
        "predicate": _expr_obj(op.predicate),
    }


def _ser_project(op):
    return {
        "op": "Project",
        "child": _serialize_op(op.child),
        "exprs": _expr_objs(op.exprs, "projection"),
        "binding": _binding_obj(op.output),
    }


def _ser_hash_join(op):
    return {
        "op": type(op).__name__,  # HashJoin | MergeJoin
        "left": _serialize_op(op.left),
        "right": _serialize_op(op.right),
        "left_keys": _expr_objs(op.left_key_fns, "join key"),
        "right_keys": _expr_objs(op.right_key_fns, "join key"),
        "binding": _binding_obj(op.output),
        "residual": _expr_obj(op.residual, "join residual"),
    }


def _ser_semi_join(op):
    return {
        "op": type(op).__name__,  # HashSemiJoin | HashAntiJoin
        "left": _serialize_op(op.left),
        "right": _serialize_op(op.right),
        "left_keys": _expr_objs(op.left_key_fns, "join key"),
        "right_keys": _expr_objs(op.right_key_fns, "join key"),
        "binding": _binding_obj(op.output),
    }


def _ser_index_nl_join(op):
    return {
        "op": "IndexNLJoin",
        "outer": _serialize_op(op.outer),
        "inner": _serialize_op(op.inner),
        "binding": _binding_obj(op.output),
        "residual": _expr_obj(op.residual, "join residual"),
    }


def _ser_sort(op):
    return {
        "op": "Sort",
        "child": _serialize_op(op.child),
        "keys": _expr_objs(op.key_fns, "sort key"),
        "descending": list(op.descending),
        "binding": _binding_obj(op.output),
    }


def _ser_aggregate(op):
    return {
        "op": "HashAggregate",
        "child": _serialize_op(op.child),
        "groups": _expr_objs(op.group_fns, "group key"),
        "aggs": [
            [spec.func, _expr_obj(spec.arg_fn, "aggregate argument")]
            for spec in op.agg_specs
        ],
        "binding": _binding_obj(op.output),
        "having": _expr_obj(op.having, "HAVING"),
    }


def _ser_distinct(op):
    return {"op": "Distinct", "child": _serialize_op(op.child)}


def _ser_limit(op):
    return {"op": "Limit", "child": _serialize_op(op.child), "limit": op.limit}


def _ser_switch_union(op):
    guard = getattr(op.selector, "guard_params", None)
    if guard is None:
        raise SnapshotUnsupported("SwitchUnion selector without guard_params")
    return {
        "op": "SwitchUnion",
        "inputs": [_serialize_op(child) for child in op.inputs],
        "guard": {
            "view": guard["view"],
            "bound": _scalar(guard["bound"], "currency bound"),
            "shard": guard["shard"],
        },
        "binding": _binding_obj(op.output),
        "label": op.label,
    }


def _ser_remote_query(op):
    return {
        "op": "RemoteQuery",
        "sql": op.sql,
        "binding": _binding_obj(op.output),
        "shards": None if op.shards is None else list(op.shards),
    }


_OP_SERIALIZERS = {
    ops.SeqScan: _ser_seq_scan,
    ops.IndexSeek: _ser_index_seek,
    ops.IndexRangeScan: _ser_index_range,
    ops.Filter: _ser_filter,
    ops.Project: _ser_project,
    ops.HashJoin: _ser_hash_join,
    ops.MergeJoin: _ser_hash_join,
    ops.HashSemiJoin: _ser_semi_join,
    ops.HashAntiJoin: _ser_semi_join,
    ops.IndexNLJoin: _ser_index_nl_join,
    ops.Sort: _ser_sort,
    ops.HashAggregate: _ser_aggregate,
    ops.Distinct: _ser_distinct,
    ops.Limit: _ser_limit,
    ops.SwitchUnion: _ser_switch_union,
    ops.RemoteQuery: _ser_remote_query,
}


# ----------------------------------------------------------------------
# Instantiation
# ----------------------------------------------------------------------
class _Instantiator:
    """Builds a live operator tree from a snapshot against one host.

    The host is an :class:`~repro.cache.mtcache.MTCache` (or FleetNode):
    it supplies the catalog the table/index/view names resolve against,
    ``make_currency_guard`` for SwitchUnion selectors, ``remote_executor``
    for RemoteQuery, and the clock for GETDATE().
    """

    def __init__(self, host):
        self.host = host
        self.ctx = ExpressionContext(clock=getattr(host, "clock", None))

    def _table(self, name):
        catalog = self.host.catalog
        if getattr(catalog, "has_matview", None) and catalog.has_matview(name):
            return catalog.matview(name).table
        try:
            return catalog.table(name).table
        except Exception:
            raise SnapshotUnsupported(f"unknown table {name!r} on this node") from None

    def _index(self, table, name):
        index = table.indexes.get(name)
        if index is None:
            raise SnapshotUnsupported(
                f"index {name!r} missing on {table.name!r}"
            )
        return index

    def _binding(self, obj):
        return RowBinding([OutputCol(name, qualifier) for qualifier, name in obj])

    def _expr(self, obj):
        if obj is None:
            return None
        return eir.compile_ir(eir.from_obj(obj), self.ctx)

    def _exprs(self, objs):
        return [self._expr(o) for o in objs]

    def build(self, node):
        builder = getattr(self, "_build_" + node["op"], None)
        if builder is None:
            raise SnapshotUnsupported(f"unknown snapshot operator {node['op']!r}")
        op = builder(node)
        return stamp_estimates(op, node.get("est_rows"), node.get("est_cost"))

    def _build_SeqScan(self, node):
        return ops.SeqScan(
            self._table(node["table"]),
            self._binding(node["binding"]),
            predicate=self._expr(node["predicate"]),
        )

    def _build_IndexSeek(self, node):
        table = self._table(node["table"])
        return ops.IndexSeek(
            table,
            self._index(table, node["index"]),
            self._exprs(node["keys"]),
            self._binding(node["binding"]),
            predicate=self._expr(node["predicate"]),
        )

    def _build_IndexRangeScan(self, node):
        table = self._table(node["table"])
        return ops.IndexRangeScan(
            table,
            self._index(table, node["index"]),
            self._binding(node["binding"]),
            low=None if node["low"] is None else tuple(node["low"]),
            high=None if node["high"] is None else tuple(node["high"]),
            low_inclusive=node["low_inclusive"],
            high_inclusive=node["high_inclusive"],
            predicate=self._expr(node["predicate"]),
        )

    def _build_Filter(self, node):
        return ops.Filter(
            self.build(node["child"]),
            self._expr(node["predicate"]),
            output=self._binding(node["binding"]),
        )

    def _build_Project(self, node):
        return ops.Project(
            self.build(node["child"]),
            self._exprs(node["exprs"]),
            self._binding(node["binding"]),
        )

    def _join_args(self, node):
        return (
            self.build(node["left"]),
            self.build(node["right"]),
            self._exprs(node["left_keys"]),
            self._exprs(node["right_keys"]),
        )

    def _build_HashJoin(self, node):
        left, right, lk, rk = self._join_args(node)
        return ops.HashJoin(
            left, right, lk, rk,
            self._binding(node["binding"]),
            residual=self._expr(node["residual"]),
        )

    def _build_MergeJoin(self, node):
        left, right, lk, rk = self._join_args(node)
        return ops.MergeJoin(
            left, right, lk, rk,
            self._binding(node["binding"]),
            residual=self._expr(node["residual"]),
        )

    def _build_HashSemiJoin(self, node):
        left, right, lk, rk = self._join_args(node)
        return ops.HashSemiJoin(left, right, lk, rk, output=self._binding(node["binding"]))

    def _build_HashAntiJoin(self, node):
        left, right, lk, rk = self._join_args(node)
        return ops.HashAntiJoin(left, right, lk, rk, output=self._binding(node["binding"]))

    def _build_IndexNLJoin(self, node):
        return ops.IndexNLJoin(
            self.build(node["outer"]),
            self.build(node["inner"]),
            self._binding(node["binding"]),
            residual=self._expr(node["residual"]),
        )

    def _build_Sort(self, node):
        return ops.Sort(
            self.build(node["child"]),
            self._exprs(node["keys"]),
            list(node["descending"]),
            output=self._binding(node["binding"]),
        )

    def _build_HashAggregate(self, node):
        return ops.HashAggregate(
            self.build(node["child"]),
            self._exprs(node["groups"]),
            [ops.AggregateSpec(func, self._expr(arg)) for func, arg in node["aggs"]],
            self._binding(node["binding"]),
            having=self._expr(node["having"]),
        )

    def _build_Distinct(self, node):
        return ops.Distinct(self.build(node["child"]))

    def _build_Limit(self, node):
        return ops.Limit(self.build(node["child"]), node["limit"])

    def _build_SwitchUnion(self, node):
        guard = node["guard"]
        catalog = self.host.catalog
        try:
            view = catalog.matview(guard["view"])
        except Exception:
            raise SnapshotUnsupported(
                f"view {guard['view']!r} missing on this node"
            ) from None
        selector = self.host.make_currency_guard(
            view, guard["bound"], shard=guard["shard"]
        )
        return ops.SwitchUnion(
            [self.build(child) for child in node["inputs"]],
            selector,
            self._binding(node["binding"]),
            label=node["label"],
        )

    def _build_RemoteQuery(self, node):
        host = self.host
        shards = node["shards"]
        if shards is None:
            executor = host.remote_executor
        else:
            shards = tuple(shards)

            def executor(sql, _host=host, _shards=shards):
                return _host.remote_executor(sql, shards=_shards)

        return ops.RemoteQuery(
            node["sql"], self._binding(node["binding"]), executor, shards=shards
        )


class SnapshotPlan:
    """An instantiated snapshot, duck-typed to
    :class:`~repro.optimizer.optimizer.OptimizedPlan`: ``root()`` /
    ``column_names`` / ``cost`` / ``est_rows`` / ``summary()``.  It slots
    straight into the MTCache plan cache and executor."""

    kind = "snapshot"
    query_info = None

    def __init__(self, snapshot, host, reuse_root=True):
        self.snapshot = snapshot
        self.column_names = list(snapshot["column_names"])
        self.reuse_root = reuse_root
        self._host = host
        self._root = None
        self._summary = None

    @property
    def cost(self):
        return self.snapshot["cost"]

    @property
    def est_rows(self):
        return self.snapshot["est_rows"]

    def root(self):
        if self._root is not None:
            return self._root
        root = _Instantiator(self._host).build(self.snapshot["root"])
        if self.reuse_root:
            self._root = root
        return root

    def explain(self):
        return self.root().explain()

    def summary(self):
        if self._summary is None:
            from repro.optimizer.optimizer import _summarize

            self._summary = _summarize(self.root())
        return self._summary

    def __repr__(self):
        return f"SnapshotPlan(cost={self.cost}, columns={self.column_names})"


def instantiate_snapshot(snapshot, host, reuse_root=True):
    """Turn a snapshot dict into an executable :class:`SnapshotPlan` on
    ``host``, building (and thereby validating) the operator tree once.
    Raises :class:`SnapshotUnsupported` on version mismatch or when any
    named table/index/view does not exist on the host."""
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotUnsupported(
            f"snapshot format v{version!r} (this node speaks v{SNAPSHOT_VERSION})"
        )
    plan = SnapshotPlan(snapshot, host, reuse_root=reuse_root)
    plan.root()  # build eagerly: fail here, not at execute time
    return plan
