"""Precompiled plan snapshots.

:mod:`repro.plan.snapshot` serializes an optimized plan — operator tree,
compiled predicates (as the restricted IR of :mod:`repro.engine.ir`),
placement and currency-guard parameters — into a compact, versioned,
JSON-compatible form that any cache node can instantiate without
re-parsing or re-optimizing the SQL.  :mod:`repro.plan.store` is the
fleet-shared keyed store those snapshots live in.
"""

from repro.plan.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotPlan,
    SnapshotUnsupported,
    instantiate_snapshot,
    serialize_plan,
)
from repro.plan.store import PlanSnapshotStore

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotPlan",
    "SnapshotUnsupported",
    "instantiate_snapshot",
    "serialize_plan",
    "PlanSnapshotStore",
]
