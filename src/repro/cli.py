"""An interactive shell for exploring C&C queries against MTCache.

Run ``python -m repro.cli`` to get a prompt wired to the paper's §4
environment (TPCD back-end + cust_prj / orders_prj cache).  Type SQL —
including CURRENCY clauses — or meta-commands:

.. code-block:: text

    \\advance N      advance simulated time by N seconds
    \\now            show the simulated clock
    \\regions        per-region staleness and view freshness
    \\views          materialized view definitions
    \\tables         back-end tables and row counts
    \\plan SQL       shorthand for EXPLAIN SQL
    \\explain SQL    EXPLAIN ANALYZE: run and show estimate-vs-actual
    \\trace          ASCII tree of the most recent query trace
    \\events         recent structured events (guards, breakers, faults)
    \\metrics        Prometheus-style dump of the cache metrics registry
    \\fleet          fleet status (when a CacheFleet is attached)
    \\chaos          run a seeded chaos schedule; print the invariant summary
    \\help           this text
    \\quit           leave

The shell is also importable: :class:`Shell` consumes command lines and
writes to any file-like object, which is how the tests drive it.
"""

import sys

from repro.common.errors import ReproError

HELP = """Commands:
  SQL statements (SELECT/INSERT/UPDATE/DELETE, EXPLAIN SELECT ...,
  BEGIN TIMEORDERED / END TIMEORDERED) run against the cache.
  \\advance N   advance simulated time by N seconds
  \\now         show the simulated clock
  \\regions     per-region staleness and view freshness
  \\views       materialized view definitions
  \\tables      back-end tables and row counts
  \\plan SQL    shorthand for EXPLAIN SQL
  \\explain SQL EXPLAIN ANALYZE: execute and show estimate-vs-actual,
               loops, batches, per-node wall time and Q-error
  \\trace [json] [ID]  render a recorded query trace (default: latest)
               as an ASCII tree, or as Chrome trace_event JSON
  \\events [N]  last N structured events (guard fallbacks, breaker
               transitions, outages, agent stalls, replication)
  \\log [N]     last N executed queries with their routing
  \\metrics     Prometheus-style dump of the cache metrics registry
  \\fleet       fleet status: router policy, per-node lifecycle + health,
               network faults (outages, stalls, partitions)
  \\chaos [seed] [duration]  run a seeded fault schedule against the
               attached fleet (crashes, outages, partitions, stalls)
               and print the fault history + C&C invariant summary
  \\help        this text
  \\quit        leave
"""


class Shell:
    """Dispatches command lines against an MTCache (or a CacheFleet).

    Handing the shell a :class:`~repro.fleet.fleet.CacheFleet` routes SQL
    through the fleet's front door; catalog-ish meta-commands
    (``\\regions``, ``\\views``, ...) then inspect the fleet's first node,
    and ``\\fleet`` shows the fleet-wide picture.
    """

    def __init__(self, cache, out=None, fleet=None):
        if fleet is None and hasattr(cache, "router") and hasattr(cache, "nodes"):
            fleet = cache
        self.fleet = fleet
        self.cache = fleet.nodes[0] if cache is fleet and fleet is not None else cache
        self.out = out or sys.stdout
        self.done = False

    def write(self, text=""):
        print(text, file=self.out)

    # ------------------------------------------------------------------
    def handle(self, line):
        """Process one input line; returns False when the shell should
        exit."""
        line = line.strip()
        if not line:
            return True
        try:
            if line.startswith("\\"):
                self._meta(line)
            else:
                self._sql(line.rstrip(";"))
        except ReproError as exc:
            self.write(f"error: {exc}")
        except Exception as exc:  # surface, don't crash the shell
            self.write(f"internal error: {type(exc).__name__}: {exc}")
        return not self.done

    # ------------------------------------------------------------------
    def _meta(self, line):
        parts = line.split(None, 1)
        command = parts[0].lower()
        argument = parts[1] if len(parts) > 1 else ""
        if command in ("\\quit", "\\q", "\\exit"):
            self.done = True
        elif command == "\\help":
            self.write(HELP)
        elif command == "\\advance":
            seconds = float(argument)
            fired = self.cache.run_for(seconds)
            self.write(f"advanced {seconds:g}s (events fired: {fired}); "
                       f"now = {self.cache.clock.now():g}")
        elif command == "\\now":
            self.write(f"simulated time: {self.cache.clock.now():g}")
        elif command == "\\regions":
            self._regions()
        elif command == "\\views":
            for view in self.cache.catalog.matviews():
                self.write(f"{view.name} = {view.definition_sql()}  "
                           f"[region {view.region}]")
        elif command == "\\tables":
            for entry in self.cache.backend.catalog.tables():
                self.write(f"{entry.name}: {entry.table.row_count} rows")
        elif command == "\\plan":
            self._sql(f"EXPLAIN {argument.rstrip(';')}")
        elif command == "\\explain":
            result = self.cache.explain(argument.rstrip(";"), analyze=True)
            self._print_result(result)
            if result.trace_id is not None:
                self.write(f"trace: {result.trace_id} (see \\trace)")
        elif command == "\\trace":
            self._trace(argument)
        elif command == "\\events":
            self._events(argument)
        elif command == "\\metrics":
            registry = self.fleet.metrics if self.fleet is not None else self.cache.metrics
            text = registry.render_text()
            self.write(text.rstrip("\n") if text else "(no metrics recorded)")
        elif command == "\\fleet":
            self._fleet()
        elif command == "\\chaos":
            self._chaos(argument)
        elif command == "\\log":
            n = int(argument) if argument else 10
            entries = self.cache.query_log.recent(n)
            if not entries:
                self.write("(no queries logged)")
            for entry in entries:
                where = "local" if entry.served_locally else "remote/mixed"
                self.write(
                    f"t={entry.sim_time:8.2f} {where:12} rows={entry.rows:<6} "
                    f"{entry.summary:35} {entry.sql[:60]}"
                )
            stats = self.cache.query_log.summary()
            self.write(
                f"window: {stats['queries']} queries, "
                f"{stats['local_fraction']:.0%} local, "
                f"{stats['remote_queries']} back-end queries"
            )
        else:
            self.write(f"unknown command {command!r}; try \\help")

    def _regions(self):
        status = self.cache.status()
        if not status:
            self.write("(no currency regions)")
            return
        for cid, info in sorted(status.items()):
            bound = info["staleness_bound"]
            bound_text = f"{bound:.2f}s" if bound is not None else "unknown"
            self.write(
                f"{cid}: interval={info['update_interval']:g} "
                f"delay={info['update_delay']:g} staleness<= {bound_text}"
            )
            for name, view in sorted(info["views"].items()):
                self.write(
                    f"  {name}: {view['rows']} rows, "
                    f"snapshot age {view['snapshot_age']:.2f}s"
                )

    def _fleet(self):
        if self.fleet is None:
            self.write("(no fleet attached; pass a CacheFleet to the shell)")
            return
        status = self.fleet.status()
        self.write(f"policy: {status['policy']}   nodes: {len(status['nodes'])}")
        backend = status["backend"]
        line = f"backend: {backend['kind']} partitions={backend['partitions']}"
        rows = backend.get("rows_per_shard")
        if rows:
            line += " rows=[" + ",".join(str(n) for n in rows) + "]"
        self.write(line)
        for shard in backend.get("shards", []):
            if shard["shard"] is None:
                continue  # unsharded back-ends report one placeholder row
            replicas = ", ".join(
                f"r{r['replica']} applied={r['applied_txn']} lag={r['lag']}"
                for r in shard["replicas"]
            ) or "none"
            self.write(
                f"  p{shard['shard']}: primary={shard['primary'].upper()} "
                f"epoch={shard['epoch']} replicas=[{replicas}]"
            )
        for name, info in sorted(status["nodes"].items()):
            staleness = info["staleness"]
            staleness_text = f"{staleness:.2f}s" if staleness is not None else "unknown"
            self.write(
                f"  {name}: {info['lifecycle']} routed={info['routed']} "
                f"inflight={info['inflight']} "
                f"breaker={info['breaker']} staleness<= {staleness_text} "
                f"local={info['local_fraction']:.0%}"
            )
        net = status["network"]
        partitioned = ",".join(net["partitioned"]) or "none"
        self.write(
            f"network: latency={net['latency']:g}s drop_rate={net['drop_rate']:g} "
            f"outage={'ACTIVE' if net['outage_active'] else 'none'} "
            f"agent_stall={'ACTIVE' if net['agents_stalled'] else 'none'} "
            f"partitioned={partitioned}"
        )

    def _chaos(self, argument):
        """Run one seeded chaos schedule against the attached fleet and
        print its invariant summary (``\\chaos [seed] [duration]``)."""
        if self.fleet is None:
            self.write("(no fleet attached; pass a CacheFleet to the shell)")
            return
        from repro.chaos import ChaosScheduler

        parts = argument.split()
        seed = int(parts[0]) if parts else 11
        duration = float(parts[1]) if len(parts) > 1 else 30.0
        chaos = ChaosScheduler(self.fleet, seed=seed)
        chaos.random_schedule(duration)
        report = chaos.run(duration)
        self.write(f"chaos: seed={seed} duration={duration:g}s "
                   f"faults={len(report.faults)}")
        for line in report.history_lines():
            self.write(f"  {line}")
        summary = report.summary()
        self.write(
            f"queries={summary['queries']} errors={summary['errors']} "
            f"outcomes={summary['outcomes']} "
            f"served_ok={summary['served_ok_fraction_in_fault_windows']:.1%}"
        )
        for recovery in summary["recoveries"]:
            self.write(
                f"recovered {recovery['node']} in {recovery['seconds']:.2f}s "
                f"(crashed t={recovery['crashed_at']:g})"
            )
        for promo in summary["promotions"]:
            self.write(
                f"promoted shard p{promo['shard']} in {promo['seconds']:.2f}s "
                f"(crashed t={promo['crashed_at']:g}, epoch {promo['epoch']})"
            )
        n = summary["invariant_violations"]
        if n:
            self.write(f"INVARIANT VIOLATIONS: {n}")
            for violation in report.violations:
                self.write(f"  [{violation.invariant}] {violation}")
        else:
            self.write(f"invariants: OK "
                       f"({summary['results_checked']} results, "
                       f"{summary['views_checked']} views audited)")

    def _trace_logs(self):
        logs = []
        if self.fleet is not None:
            logs.append(self.fleet.traces)
        if getattr(self.cache, "traces", None) is not None:
            logs.append(self.cache.traces)
        return logs

    def _trace(self, argument):
        from repro.obs.trace import TraceExporter

        as_json = False
        trace_id = None
        for word in argument.split():
            if word.lower() == "json":
                as_json = True
            else:
                trace_id = word
        trace = None
        for log in self._trace_logs():
            trace = log.get(trace_id) if trace_id is not None else log.latest()
            if trace is not None:
                break
        if trace is None:
            self.write("(no trace recorded)" if trace_id is None
                       else f"(no trace {trace_id!r})")
            return
        exporter = TraceExporter()
        if as_json:
            self.write(exporter.chrome_json(trace))
        else:
            self.write(exporter.ascii_tree(trace))

    def _events(self, argument):
        n = int(argument) if argument else 20
        logs = []
        if self.fleet is not None:
            logs.append(self.fleet.metrics.events)
            for node in self.fleet.nodes:
                logs.append(node.metrics.events)
        else:
            logs.append(self.cache.metrics.events)
        events = sorted(
            (event for log in logs for event in log.recent(n)),
            key=lambda e: e.time if e.time is not None else -1.0,
        )[-n:]
        if not events:
            self.write("(no events recorded)")
            return
        for event in events:
            when = f"{event.time:8.2f}" if event.time is not None else "       ?"
            self.write(
                f"t={when} [{event.severity:7}] {event.kind}: {event.message}"
            )
        totals = self._session_guard_totals()
        if any(totals.values()):
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(totals.items()))
            self.write(f"session guards: {rendered}")

    def _session_guard_totals(self):
        """Aggregate ``session_guard_total`` outcomes across every node
        (or the single cache): {outcome: count}."""
        registries = (
            [node.metrics for node in self.fleet.nodes]
            if self.fleet is not None else [self.cache.metrics]
        )
        totals = {}
        for reg in registries:
            for key, counter in reg.family("session_guard_total").items():
                outcome = dict(key).get("outcome", "-")
                totals[outcome] = totals.get(outcome, 0) + counter.value
        return totals

    # ------------------------------------------------------------------
    def _sql(self, sql):
        target = self.fleet if self.fleet is not None else self.cache
        result = target.execute(sql)
        if result is None:  # BEGIN/END TIMEORDERED
            self.write("ok")
            return
        if isinstance(result, int):
            self.write(f"{result} row(s) affected")
            return
        if hasattr(result, "columns"):
            self._print_result(result)
            return
        self.write("ok")

    def _print_result(self, result, max_rows=25):
        if result.columns == ["plan"]:
            for (line,) in result.rows:
                self.write(line)
            return
        widths = [
            max(len(str(col)), *(len(self._fmt(r[i])) for r in result.rows), 1)
            if result.rows
            else len(str(col))
            for i, col in enumerate(result.columns)
        ]
        header = " | ".join(c.ljust(w) for c, w in zip(result.columns, widths))
        self.write(header)
        self.write("-+-".join("-" * w for w in widths))
        for row in result.rows[:max_rows]:
            self.write(" | ".join(self._fmt(v).ljust(w) for v, w in zip(row, widths)))
        if len(result.rows) > max_rows:
            self.write(f"... ({len(result.rows)} rows total)")
        else:
            self.write(f"({len(result.rows)} row(s))")
        if result.plan is not None and hasattr(result.plan, "summary"):
            self.write(f"plan: {result.plan.summary()}")
        node = getattr(result, "node", None)
        if node is not None:
            self.write(f"node: {node}")
        if result.context is not None and result.context.branches:
            branches = ", ".join(
                f"{label}->{'local' if index == 0 else 'remote'}"
                for label, index in result.context.branches
            )
            self.write(f"guards: {branches}")
        for warning in getattr(result, "warnings", []):
            self.write(f"warning: {warning}")

    @staticmethod
    def _fmt(value):
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)


def run_script(cache, lines, out=None):
    """Feed a sequence of command lines to a Shell (testing hook)."""
    shell = Shell(cache, out=out)
    for line in lines:
        if not shell.handle(line):
            break
    return shell


def main(argv=None):
    """Entry point: the paper's environment plus an interactive loop."""
    print("building the paper's SIGMOD'04 environment (TPCD + MTCache)...")
    from repro.workloads.experiment import build_paper_setup

    setup = build_paper_setup(scale_factor=0.002)
    shell = Shell(setup.cache)
    print("ready. \\help for commands; try:")
    print("  SELECT c.c_custkey, c.c_name FROM customer c "
          "WHERE c.c_custkey < 5 CURRENCY BOUND 10 MIN ON (c)")
    while True:
        try:
            line = input("mtcache> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not shell.handle(line):
            return 0


if __name__ == "__main__":
    sys.exit(main())
