"""The cost model.

Costs are abstract units roughly proportional to row touches; network terms
dominate remote plans the way they do in a real mid-tier deployment, which
is what drives the paper's plan-1-vs-plan-2 choice (ship the join result vs
ship the two sources and join locally) and the Q6/Q7 index-vs-local-scan
choice.

The SwitchUnion formula is the paper's §3.2.4:

    c = p * c_local + (1 - p) * c_remote + c_guard

with ``p`` from formula (1):

    p = 0              if B - d <= 0
    p = (B - d) / f    if 0 < B - d <= f
    p = 1              if B - d > f

``f = 0`` (continuous propagation) degenerates to a step function, which the
formula above handles by the convention 0/0 -> use the B > d test.
"""

import math


def guard_probability(bound, delay, interval):
    """Probability that a currency guard passes (paper formula (1)).

    ``bound`` is the query's currency bound B, ``delay`` the propagation
    delay d, ``interval`` the propagation interval f.  Unbounded B gives 1.
    """
    if bound is None or math.isinf(bound):
        return 1.0
    slack = bound - delay
    if slack <= 0:
        return 0.0
    if interval <= 0:
        return 1.0  # continuous propagation and B > d
    if slack > interval:
        return 1.0
    return slack / interval


class CostModel:
    """Tunable constants plus derived per-operator cost formulas."""

    def __init__(
        self,
        seq_row=1.0,
        index_descent=8.0,
        index_row=1.2,
        filter_row=0.2,
        project_row=0.1,
        hash_build_row=1.6,
        hash_probe_row=1.1,
        merge_row=0.8,
        sort_row_log=0.25,
        agg_row=1.2,
        remote_query_overhead=4000.0,
        net_byte=1.0,
        guard_cost=25.0,
        output_row=0.05,
        batch_size=256,
        batch_dispatch=0.5,
        fused_row_factor=0.55,
    ):
        self.seq_row = seq_row
        self.index_descent = index_descent
        self.index_row = index_row
        self.filter_row = filter_row
        self.project_row = project_row
        self.hash_build_row = hash_build_row
        self.hash_probe_row = hash_probe_row
        self.merge_row = merge_row
        self.sort_row_log = sort_row_log
        self.agg_row = agg_row
        #: Fixed cost of issuing one remote query (connection, parse, bind).
        self.remote_query_overhead = remote_query_overhead
        #: Cost per byte shipped from the back-end to the cache.
        self.net_byte = net_byte
        #: Cost of evaluating one currency guard (heartbeat row + filter).
        self.guard_cost = guard_cost
        self.output_row = output_row
        #: Chunk size of the batch engine; per-operator dispatch is paid
        #: once per batch, not once per row.
        self.batch_size = batch_size
        #: Fixed cost of handing one chunk between operators.
        self.batch_dispatch = batch_dispatch
        #: CPU discount of a fused scan pipeline relative to the row
        #: engine: position-resolved closures over bare tuples in one
        #: loop, versus a per-row environment in every operator.
        self.fused_row_factor = fused_row_factor

    # ------------------------------------------------------------------
    # Batch engine
    # ------------------------------------------------------------------
    def batches_of(self, rows):
        """How many chunks the batch engine moves for ``rows`` rows."""
        if self.batch_size <= 1:
            return max(0.0, rows)
        return math.ceil(max(0.0, rows) / self.batch_size)

    def fused_pipeline(self, per_row_cost, rows):
        """Cost of a fused local pipeline over ``rows`` input rows.

        ``per_row_cost`` is the row-engine per-row cost of the fused
        stages combined (e.g. ``seq_row + filter_row``); the batch
        engine pays the fused discount per row plus dispatch per chunk.
        """
        return (
            max(1.0, rows) * per_row_cost * self.fused_row_factor
            + self.batches_of(rows) * self.batch_dispatch
        )

    def row_engine_variant(self):
        """A copy of this model describing the legacy row engine
        (``batch_size=1``): no fused discount, no batch dispatch."""
        clone = CostModel.__new__(CostModel)
        clone.__dict__.update(self.__dict__)
        clone.batch_size = 1
        clone.batch_dispatch = 0.0
        clone.fused_row_factor = 1.0
        return clone

    #: Additional per-row discount of a columnar fused pipeline over the
    #: batch engine's: filters run as one generated comprehension per
    #: predicate over column buffers, projections pick columns, rows
    #: materialize once at the boundary.  Kept mild — the guarded
    #: local-vs-remote tradeoff (switch_union) must not flip on engine
    #: choice alone.
    columnar_row_factor = 0.75

    def engine_variant(self, engine):
        """The model matching an execution engine: "row" maps to
        :meth:`row_engine_variant`, "batch" to this model unchanged,
        "columnar" to a clone with the columnar discount folded into the
        fused-pipeline factor and halved batch dispatch (a columnar scan
        moves one batch per table, not one per 256 rows)."""
        if engine == "row":
            return self.row_engine_variant()
        if engine == "batch" or engine is None:
            return self
        if engine != "columnar":
            raise ValueError(f"unknown engine for cost model: {engine!r}")
        clone = CostModel.__new__(CostModel)
        clone.__dict__.update(self.__dict__)
        clone.fused_row_factor = self.fused_row_factor * self.columnar_row_factor
        clone.batch_dispatch = self.batch_dispatch * 0.5
        return clone

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def seq_scan(self, table_rows):
        return max(1.0, table_rows) * self.seq_row

    def index_seek(self, matched_rows):
        return self.index_descent + max(0.0, matched_rows) * self.index_row

    def index_range(self, matched_rows):
        return self.index_descent + max(0.0, matched_rows) * self.index_row

    def filter(self, input_rows):
        return input_rows * self.filter_row

    def project(self, input_rows):
        return input_rows * self.project_row

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def hash_join(self, probe_rows, build_rows, output_rows):
        return (
            build_rows * self.hash_build_row
            + probe_rows * self.hash_probe_row
            + output_rows * self.output_row
        )

    def merge_join(self, left_rows, right_rows, output_rows):
        return (left_rows + right_rows) * self.merge_row + output_rows * self.output_row

    def index_nl_join(self, outer_rows, rows_per_probe, output_rows):
        return (
            outer_rows * (self.index_descent + rows_per_probe * self.index_row)
            + output_rows * self.output_row
        )

    # ------------------------------------------------------------------
    # Other operators
    # ------------------------------------------------------------------
    def sort(self, rows):
        if rows <= 1:
            return 1.0
        return rows * math.log2(rows) * self.sort_row_log

    def aggregate(self, input_rows):
        return input_rows * self.agg_row

    def transfer(self, rows, row_width):
        """Network cost of shipping ``rows`` rows of ``row_width`` bytes."""
        return self.remote_query_overhead + rows * row_width * self.net_byte

    def switch_union(self, p, local_cost, remote_cost):
        """Paper §3.2.4 expected cost of a guarded access."""
        return p * local_cost + (1.0 - p) * remote_cost + self.guard_cost


def q_error(estimate, actual, eps=1.0):
    """Cardinality Q-error: ``max(est/act, act/est)`` with both sides
    clamped to ``eps`` so zero-row results stay finite.  1.0 is a perfect
    estimate; EXPLAIN ANALYZE feeds these into the ``cost_model_q_error``
    histogram to monitor cost-model drift."""
    est = max(float(estimate), eps)
    act = max(float(actual), eps)
    return max(est / act, act / est)
