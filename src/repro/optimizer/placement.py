"""Placement providers: where can each operand's data come from?

The optimizer itself is placement-agnostic.  A :class:`PlacementProvider`
supplies access-path candidates per operand; the back-end provider only
knows base tables, while the cache provider (in :mod:`repro.cache.mtcache`)
adds matching local materialized views — guarded by SwitchUnions when a
finite currency bound applies — and remote-query candidates.
"""

from repro.cc.properties import BACKEND_REGION, ConsistencyProperty
from repro.engine.expressions import ExpressionContext, OutputCol, RowBinding, compile_expr
from repro.engine import operators as ops
from repro.engine.ir import IRUnsupported, compile_ir, const_ir
from repro.sql import ast


def _const_key_fns(values):
    """Key evaluators for plan-time constants, carrying their IR so the
    plan can snapshot (falls back to bare closures for exotic values)."""
    out = []
    for v in values:
        try:
            out.append(compile_ir(const_ir(v)))
        except IRUnsupported:
            out.append(lambda env, v=v: v)
    return out


def combine_conjuncts(conjuncts):
    """AND together a conjunct list (None for an empty list)."""
    result = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.BinaryOp("and", result, conjunct)
    return result


def estimate_selectivity(stats, conjuncts, sargs):
    """Combined selectivity of an operand's local predicates.

    Sargs use column statistics; conjuncts that yielded no sargs get a
    default.  Independence is assumed throughout (System-R style).
    """
    selectivity = 1.0
    sarg_exprs = {id(s.expr) for s in sargs}
    by_column = {}
    for sarg in sargs:
        by_column.setdefault(sarg.column, []).append(sarg)
    for column, column_sargs in by_column.items():
        col_stats = stats.column(column)
        eq = [s for s in column_sargs if s.op == "="]
        if eq:
            selectivity *= col_stats.eq_selectivity()
            continue
        in_lists = [s for s in column_sargs if s.op == "in"]
        if in_lists:
            shortest = min(len(s.value) for s in in_lists)
            selectivity *= min(1.0, shortest * col_stats.eq_selectivity())
            continue
        low = high = None
        low_inc = high_inc = True
        for s in column_sargs:
            if s.op in (">", ">="):
                if low is None or s.value > low:
                    low = s.value
                    low_inc = s.op == ">="
            elif s.op in ("<", "<="):
                if high is None or s.value < high:
                    high = s.value
                    high_inc = s.op == "<="
        selectivity *= col_stats.range_selectivity(
            low=low, high=high, low_inclusive=low_inc, high_inclusive=high_inc
        )
    for conjunct in conjuncts:
        if id(conjunct) not in sarg_exprs and not _covered_by_sargs(conjunct, sargs):
            selectivity *= 0.25
    return max(selectivity, 1e-9)


def _covered_by_sargs(conjunct, sargs):
    return any(s.expr is conjunct for s in sargs)


def width_of(binding, stats_lookup):
    """Sum of average column widths for a binding.

    ``stats_lookup(qualifier, name)`` returns a ColumnStats or None.
    """
    total = 0.0
    for col in binding.columns:
        stats = stats_lookup(col.qualifier, col.name)
        total += stats.avg_width if stats is not None else 8.0
    return total


class PlacementProvider:
    """Interface the optimizer uses to discover data placements."""

    def __init__(self, cost_model, clock=None):
        self.cost_model = cost_model
        self.clock = clock
        self.expr_ctx = ExpressionContext(clock=clock)

    def access_candidates(self, operand, query_info):
        """Candidates for accessing one operand.  Must be non-empty unless
        the operand is genuinely inaccessible."""
        raise NotImplementedError

    def subset_remote_candidate(self, aliases, query_info):
        """A single remote query computing the join of a whole alias subset
        (None when there is no remote server, i.e. on the back-end)."""
        return None

    def whole_query_candidate(self, query_info):
        """A candidate shipping the entire statement (aggregation and all)
        to the remote server; None on the back-end."""
        return None

    def nl_inner_sources(self, operand, join_columns):
        """Sources usable as the inner of an index nested-loops join.

        Yields ``(table, index, binding, delivered, skip_conjuncts)`` for
        every local source of ``operand`` that has an index keyed (at least
        prefix-wise) on ``join_columns``.  Default: none.
        """
        return ()

    def semi_inner_source(self, semi):
        """The build side of a hash semi join for an IN-subquery.

        Returns ``(build_fn, key_expr_binding, cost, rows, delivered)`` or
        None when this placement cannot supply the inner relation (the
        caller then falls back to naive subquery evaluation).
        """
        return None

    # ------------------------------------------------------------------
    # Shared machinery: access paths over a heap table
    # ------------------------------------------------------------------
    def base_table_candidates(
        self,
        table,
        alias,
        conjuncts,
        sargs,
        stats,
        delivered,
        kind_prefix,
        binding=None,
        skip_conjuncts=(),
    ):
        """Seq-scan and index access candidates over ``table``.

        ``conjuncts``/``sargs`` are the operand's local predicates;
        ``skip_conjuncts`` are predicates already enforced by the source
        (e.g. a view's definition predicate) that need not be re-applied.
        ``delivered`` is the ConsistencyProperty of data from this source.
        """
        from repro.optimizer.candidates import Candidate

        cm = self.cost_model
        binding = binding or RowBinding(
            [OutputCol(c.name, alias) for c in table.schema.columns]
        )
        live_conjuncts = [c for c in conjuncts if c not in skip_conjuncts]
        selectivity = estimate_selectivity(stats, live_conjuncts, [s for s in sargs if s.expr not in skip_conjuncts])
        base_rows = stats.row_count
        out_rows = max(base_rows * selectivity, 0.0)
        width = width_of(binding, lambda q, n: stats.column(n))

        candidates = []

        # --- sequential scan -------------------------------------------
        predicate_expr = combine_conjuncts(live_conjuncts)
        def build_seq(predicate_expr=predicate_expr, binding=binding):
            predicate = (
                compile_expr(predicate_expr, binding, self.expr_ctx)
                if predicate_expr is not None
                else None
            )
            return ops.SeqScan(table, binding, predicate=predicate)

        # Local scans run as fused batch pipelines (scan+filter in one
        # loop), so their CPU term gets the fused discount.
        seq_cost = cm.fused_pipeline(
            cm.seq_row + (cm.filter_row if live_conjuncts else 0.0), base_rows
        )
        candidates.append(
            Candidate(
                build_seq,
                seq_cost,
                out_rows,
                width,
                binding,
                delivered,
                [alias],
                f"{kind_prefix}-seq",
                detail=table.name,
            )
        )

        # --- full ordered scan over the clustered index -----------------
        # Slightly costlier than the heap scan, but delivers the clustered
        # sort order, enabling merge joins above.
        clustered = table.clustered_index()
        if clustered is not None:
            sort_order = tuple((alias, c) for c in clustered.column_names)

            def build_ordered(clustered=clustered, predicate_expr=predicate_expr, binding=binding):
                predicate = (
                    compile_expr(predicate_expr, binding, self.expr_ctx)
                    if predicate_expr is not None
                    else None
                )
                return ops.IndexRangeScan(table, clustered, binding, predicate=predicate)

            ordered_cost = cm.index_descent + cm.fused_pipeline(
                cm.index_row + (cm.filter_row if live_conjuncts else 0.0), base_rows
            )
            candidates.append(
                Candidate(
                    build_ordered,
                    ordered_cost,
                    out_rows,
                    width,
                    binding,
                    delivered,
                    [alias],
                    f"{kind_prefix}-ordered",
                    detail=f"{table.name}.{clustered.name}",
                    sort_order=sort_order,
                )
            )

        # --- index paths ------------------------------------------------
        live_sargs = [s for s in sargs if s.expr not in skip_conjuncts]
        for index in table.indexes.values():
            plan = _match_index(index, live_sargs)
            if plan is None:
                continue
            eq_values, range_low, range_high, low_inc, high_inc, used_exprs = plan
            prefix_sel = _prefix_selectivity(
                stats, index, eq_values, range_low, range_high, low_inc, high_inc
            )
            matched = max(base_rows * prefix_sel, 0.0)
            residual = [c for c in live_conjuncts if c not in used_exprs]
            cost = cm.index_descent + cm.fused_pipeline(
                cm.index_row + (cm.filter_row if residual else 0.0), matched
            )

            def build_index(
                index=index,
                eq_values=eq_values,
                range_low=range_low,
                range_high=range_high,
                low_inc=low_inc,
                high_inc=high_inc,
                residual=tuple(residual),
                binding=binding,
            ):
                residual_expr = combine_conjuncts(list(residual))
                predicate = (
                    compile_expr(residual_expr, binding, self.expr_ctx)
                    if residual_expr is not None
                    else None
                )
                if range_low is None and range_high is None:
                    key_fns = _const_key_fns(eq_values)
                    return ops.IndexSeek(table, index, key_fns, binding, predicate=predicate)
                low = tuple(eq_values) + ((range_low,) if range_low is not None else ())
                high = tuple(eq_values) + ((range_high,) if range_high is not None else ())
                return ops.IndexRangeScan(
                    table,
                    index,
                    binding,
                    low=low if low else None,
                    high=high if high else None,
                    low_inclusive=low_inc,
                    high_inclusive=high_inc,
                    predicate=predicate,
                )

            candidates.append(
                Candidate(
                    build_index,
                    cost,
                    out_rows,
                    width,
                    binding,
                    delivered,
                    [alias],
                    f"{kind_prefix}-index",
                    detail=f"{table.name}.{index.name}",
                    sort_order=tuple((alias, c) for c in index.column_names),
                )
            )
        return candidates


def _match_index(index, sargs):
    """Match sargs against an index key prefix.

    Returns (eq_values, range_low, range_high, low_inc, high_inc,
    used_exprs) or None if the index is unusable.
    """
    by_column = {}
    for sarg in sargs:
        by_column.setdefault(sarg.column, []).append(sarg)

    eq_values = []
    used_exprs = set()
    position = 0
    for position, column in enumerate(index.column_names):
        column_sargs = by_column.get(column)
        if not column_sargs:
            break
        eq = next((s for s in column_sargs if s.op == "="), None)
        if eq is None:
            break
        eq_values.append(eq.value)
        used_exprs.add(eq.expr)
    else:
        position = len(index.column_names)

    # Optional range on the next key column.
    range_low = range_high = None
    low_inc = high_inc = True
    if position < len(index.column_names):
        column_sargs = by_column.get(index.column_names[position], [])
        for s in column_sargs:
            if s.op in (">", ">="):
                if range_low is None or s.value > range_low:
                    range_low = s.value
                    low_inc = s.op == ">="
                used_exprs.add(s.expr)
            elif s.op in ("<", "<="):
                if range_high is None or s.value < range_high:
                    range_high = s.value
                    high_inc = s.op == "<="
                used_exprs.add(s.expr)

    if not eq_values and range_low is None and range_high is None:
        return None
    return eq_values, range_low, range_high, low_inc, high_inc, used_exprs


def _prefix_selectivity(stats, index, eq_values, range_low, range_high, low_inc, high_inc):
    selectivity = 1.0
    for i, _ in enumerate(eq_values):
        selectivity *= stats.column(index.column_names[i]).eq_selectivity()
    if range_low is not None or range_high is not None:
        column = index.column_names[len(eq_values)]
        selectivity *= stats.column(column).range_selectivity(
            low=range_low, high=range_high, low_inclusive=low_inc, high_inclusive=high_inc
        )
    return selectivity


class BackendPlacement(PlacementProvider):
    """Placement on the back-end (master) server: base tables only.

    Everything is local and current, so the delivered property of every
    access is the reserved back-end region and all constraints are
    trivially satisfiable.
    """

    def __init__(self, catalog, cost_model, clock=None):
        super().__init__(cost_model, clock=clock)
        self.catalog = catalog

    def access_candidates(self, operand, query_info):
        delivered = ConsistencyProperty.single(BACKEND_REGION, [operand.alias])
        return self.base_table_candidates(
            operand.entry.table,
            operand.alias,
            operand.conjuncts,
            operand.sargs,
            operand.stats,
            delivered,
            "base",
        )

    def nl_inner_sources(self, operand, join_columns):
        table = operand.entry.table
        binding = RowBinding([OutputCol(c.name, operand.alias) for c in table.schema.columns])
        delivered = ConsistencyProperty.single(BACKEND_REGION, [operand.alias])
        for index in table.indexes.values():
            if index.column_names and index.column_names[0] in join_columns:
                yield table, index, binding, delivered, ()

    def semi_inner_source(self, semi):
        entry = self.catalog.table(semi.inner_table)
        table = entry.table
        binding = RowBinding(
            [OutputCol(c.name, semi.inner_alias) for c in table.schema.columns]
        )

        def build(table=table, binding=binding, where=semi.inner_where):
            predicate = (
                compile_expr(where, binding, self.expr_ctx)
                if where is not None
                else None
            )
            return ops.SeqScan(table, binding, predicate=predicate)

        rows = entry.stats.row_count * (0.25 if semi.inner_where is not None else 1.0)
        cost = self.cost_model.seq_scan(entry.stats.row_count) + (
            self.cost_model.filter(entry.stats.row_count)
            if semi.inner_where is not None
            else 0.0
        )
        delivered = ConsistencyProperty.single(BACKEND_REGION, [semi.inner_alias])
        return build, binding, cost, rows, delivered
