"""Plan candidates: costed, property-carrying plan fragments.

The optimizer's search space is a table of candidates per operand subset.
Each candidate knows how to *build* its physical operator tree on demand
(losing candidates never construct operators), its estimated cost / output
cardinality / row width, the :class:`RowBinding` of its output, and its
delivered consistency property.
"""


def stamp_estimates(op, rows, cost=None):
    """Attach plan-time estimates to a built operator (EXPLAIN ANALYZE).

    Used by build closures for operators that are not a candidate's root
    (finishing sorts/aggregates/limits, NL-join inners); returns ``op``
    so it can wrap a return expression.
    """
    op.est_rows = rows
    op.est_cost = cost
    return op


class Candidate:
    """A costed plan fragment covering a set of FROM-clause operands."""

    __slots__ = (
        "build",
        "cost",
        "rows",
        "width",
        "binding",
        "delivered",
        "aliases",
        "kind",
        "detail",
        "sort_order",
        "_built",
    )

    def __init__(
        self,
        build,
        cost,
        rows,
        width,
        binding,
        delivered,
        aliases,
        kind,
        detail="",
        sort_order=(),
    ):
        self.build = build
        self.cost = cost
        self.rows = rows
        self.width = width
        self.binding = binding
        self.delivered = delivered
        self.aliases = frozenset(aliases)
        #: A short machine-checkable tag: "seq", "index", "remote",
        #: "local-view", "guarded-view", "hash-join", "nl-join",
        #: "merge-join", "remote-subset", "remote-query", ...
        self.kind = kind
        self.detail = detail
        #: Delivered sort property: tuple of (qualifier, column) pairs the
        #: output is ordered by, ascending.  The classic plan property the
        #: paper models its consistency property on.
        self.sort_order = tuple(sort_order)
        self._built = None

    def operator(self):
        """Build (once) and return the physical operator tree.

        The built root is stamped with this candidate's cardinality/cost
        estimates (``est_rows`` / ``est_cost``) for EXPLAIN ANALYZE;
        nested candidates stamp the interior roots they build, so most of
        the tree gets plan-time estimates for free.  A build that already
        annotated its root (finishing operators) wins.
        """
        if self._built is None:
            self._built = op = self.build()
            if op.est_rows is None:
                op.est_rows = self.rows
                op.est_cost = self.cost
        return self._built

    def signature(self):
        """Canonical form of the delivered properties, used to keep the
        best candidate per property during dynamic programming.  Includes
        the sort order: an ordered-but-costlier plan may still win once a
        merge join above exploits the order."""
        return (
            frozenset((region, ops) for region, ops in self.delivered.groups),
            self.sort_order,
        )

    def __repr__(self):
        return (
            f"Candidate({self.kind}:{self.detail} aliases={sorted(self.aliases)} "
            f"cost={self.cost:.1f} rows={self.rows:.0f})"
        )
