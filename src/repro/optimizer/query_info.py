"""Query analysis: from a parsed Select to an optimizable form.

``analyze_select`` resolves names against a catalog, splits the WHERE clause
into per-operand conjuncts / equijoin conjuncts / residuals, extracts
sargable predicates for index selection, expands ``*`` items, classifies
aggregation, and computes the normalized C&C constraint.

Single-block SPJ(+aggregate/order/distinct/limit) queries go through the
full cost-based search; blocks with FROM-subqueries or WHERE-subqueries are
flagged ``complex`` and are planned by the naive recursive path (on the
back-end) or shipped whole (on the cache).
"""

from repro.common.errors import CatalogError, OptimizerError
from repro.cc.constraint import constraint_from_select
from repro.sql import ast


class Sarg:
    """A sargable predicate on one column: ``col <op> constant``.

    ``op`` is one of = < <= > >=.  BETWEEN contributes two sargs.
    """

    __slots__ = ("column", "op", "value", "expr")

    def __init__(self, column, op, value, expr):
        self.column = column
        self.op = op
        self.value = value
        self.expr = expr  # original conjunct (for remote SQL round-trip)

    def __repr__(self):
        return f"Sarg({self.column} {self.op} {self.value!r})"


class OperandInfo:
    """One base-table instance in the FROM clause."""

    def __init__(self, alias, table_name, entry):
        self.alias = alias
        self.table_name = table_name
        self.entry = entry  # catalog TableEntry
        self.conjuncts = []  # single-operand predicates (Expr)
        self.sargs = []  # Sarg list extracted from conjuncts
        self.needed_columns = set()  # columns referenced anywhere in the query

    @property
    def schema(self):
        return self.entry.schema

    @property
    def stats(self):
        return self.entry.stats

    def __repr__(self):
        return f"OperandInfo({self.alias} -> {self.table_name})"


class SemiJoinInfo:
    """An uncorrelated ``col IN (SELECT inner_col FROM t [WHERE …])``
    conjunct (or its NOT IN counterpart), eligible for a hash semi/anti
    join.

    ``conjunct`` keeps the original expression for the fallback path
    (naive subquery evaluation) when a placement cannot supply the inner
    side.
    """

    __slots__ = ("outer_ref", "inner_table", "inner_alias", "inner_ref",
                 "inner_where", "conjunct", "negated")

    def __init__(self, outer_ref, inner_table, inner_alias, inner_ref, inner_where,
                 conjunct, negated=False):
        self.outer_ref = outer_ref
        self.inner_table = inner_table
        self.inner_alias = inner_alias
        self.inner_ref = inner_ref
        self.inner_where = inner_where
        self.conjunct = conjunct
        #: True for NOT IN (anti join).
        self.negated = negated

    def __repr__(self):
        op = "NOT IN" if self.negated else "IN"
        return (
            f"SemiJoinInfo({self.outer_ref.to_sql()} {op} "
            f"{self.inner_table}.{self.inner_ref.name})"
        )


def _try_semi_join(conjunct, catalog):
    """Recognize an eligible IN-subquery conjunct; returns SemiJoinInfo or
    None.  Eligible: outer operand a plain column, inner a single-block
    single-table projection of one plain column, uncorrelated (every inner
    reference resolves against the inner table).  Negated conjuncts
    (NOT IN) become anti joins."""
    if not isinstance(conjunct, ast.InSubquery):
        return None
    if not isinstance(conjunct.operand, ast.ColumnRef):
        return None
    select = conjunct.select
    if (
        select.group_by
        or select.having is not None
        or select.distinct
        or select.limit is not None
        or select.currency is not None
    ):
        return None
    if len(select.from_items) != 1 or not isinstance(select.from_items[0], ast.FromTable):
        return None
    from_item = select.from_items[0]
    if not catalog.has_table(from_item.name):
        return None
    schema = catalog.table(from_item.name).schema
    if len(select.items) != 1 or select.items[0].star:
        return None
    inner_ref = select.items[0].expr
    if not isinstance(inner_ref, ast.ColumnRef):
        return None
    inner_exprs = [inner_ref] + ([select.where] if select.where is not None else [])
    for expr in inner_exprs:
        if _has_subquery(expr):
            return None
        for ref in expr.column_refs():
            if ref.qualifier is not None and ref.qualifier != from_item.alias:
                return None  # correlated
            if not schema.has_column(ref.name):
                return None  # correlated via unqualified outer column
    return SemiJoinInfo(
        conjunct.operand,
        from_item.name,
        from_item.alias,
        inner_ref,
        select.where,
        conjunct,
        negated=conjunct.negated,
    )


class JoinConjunct:
    """An equijoin predicate ``a.x = b.y`` between two operands."""

    __slots__ = ("left_alias", "left_column", "right_alias", "right_column", "expr")

    def __init__(self, left_alias, left_column, right_alias, right_column, expr):
        self.left_alias = left_alias
        self.left_column = left_column
        self.right_alias = right_alias
        self.right_column = right_column
        self.expr = expr

    def aliases(self):
        return frozenset([self.left_alias, self.right_alias])

    def __repr__(self):
        return (
            f"JoinConjunct({self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column})"
        )


class AggregateItem:
    """One select item in an aggregation query."""

    __slots__ = ("kind", "expr", "name", "func", "arg")

    def __init__(self, kind, expr, name, func=None, arg=None):
        self.kind = kind  # "group" | "agg"
        self.expr = expr
        self.name = name
        self.func = func
        self.arg = arg  # argument expression, None for COUNT(*)


class QueryInfo:
    """Everything the planner needs about a single-block query."""

    def __init__(self, select):
        self.select = select
        self.operands = {}  # alias -> OperandInfo
        self.from_order = []  # aliases in FROM order
        self.join_conjuncts = []
        self.residual_conjuncts = []  # multi-operand non-equijoin predicates
        self.items = []  # expanded (expr, output_name) pairs
        self.is_aggregate = False
        self.group_refs = []  # ColumnRef list
        self.agg_items = []  # AggregateItem list (when is_aggregate)
        self.having = None
        self.order_by = []
        self.distinct = False
        self.limit = None
        self.constraint = None
        self.complex = False  # FROM-subqueries: excluded from DP search
        #: WHERE conjuncts containing subqueries; applied as a filter above
        #: the join (requires a subquery runner — back-end only).
        self.post_conjuncts = []
        #: Uncorrelated IN-subqueries eligible for hash semi joins.
        self.semi_joins = []

    def operand(self, alias):
        return self.operands[alias]

    def aliases(self):
        return list(self.from_order)

    def join_conjuncts_between(self, left_set, right_set):
        """Join conjuncts connecting two disjoint alias sets."""
        out = []
        for jc in self.join_conjuncts:
            if jc.left_alias in left_set and jc.right_alias in right_set:
                out.append((jc, False))
            elif jc.right_alias in left_set and jc.left_alias in right_set:
                out.append((jc, True))  # swapped orientation
        return out

    def __repr__(self):
        return f"QueryInfo(operands={self.from_order}, joins={len(self.join_conjuncts)})"


def _split_conjuncts(expr):
    """Flatten a predicate tree on AND into a conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _has_subquery(expr):
    if expr is None:
        return False
    return any(
        isinstance(node, (ast.ExistsSubquery, ast.InSubquery)) for node in expr.walk()
    )


class _Resolver:
    """Maps column references to (alias, column) pairs."""

    def __init__(self, operands):
        self.operands = operands

    def resolve(self, ref):
        if ref.qualifier is not None:
            info = self.operands.get(ref.qualifier)
            if info is None:
                raise CatalogError(f"unknown alias {ref.qualifier!r} in {ref.to_sql()}")
            if not info.schema.has_column(ref.name):
                raise CatalogError(f"no column {ref.name!r} in {info.table_name}")
            return ref.qualifier, ref.name
        matches = [
            alias for alias, info in self.operands.items() if info.schema.has_column(ref.name)
        ]
        if not matches:
            raise CatalogError(f"unresolved column {ref.name!r}")
        if len(matches) > 1:
            raise CatalogError(f"ambiguous column {ref.name!r} (in {sorted(matches)})")
        return matches[0], ref.name

    def aliases_in(self, expr):
        out = set()
        for ref in expr.column_refs():
            alias, _ = self.resolve(ref)
            out.add(alias)
        return out


def _constant_value(expr):
    """Evaluate a constant literal expression, or return (False, None)."""
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        ok, value = _constant_value(expr.operand)
        if ok and isinstance(value, (int, float)):
            return True, -value
    return False, None


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _extract_sargs(conjunct, resolver, alias):
    """Extract Sargs from a single-operand conjunct, if it is sargable."""
    out = []
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in ("=", "<", "<=", ">", ">="):
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if not isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef):
            left, right, op = right, left, _FLIP[op]
        if isinstance(left, ast.ColumnRef):
            ok, value = _constant_value(right)
            if ok:
                _, column = resolver.resolve(left)
                out.append(Sarg(column, op, value, conjunct))
    elif isinstance(conjunct, ast.Between) and not conjunct.negated:
        lo_ok, lo = _constant_value(conjunct.low)
        hi_ok, hi = _constant_value(conjunct.high)
        if lo_ok and hi_ok and isinstance(conjunct.operand, ast.ColumnRef):
            _, column = resolver.resolve(conjunct.operand)
            out.append(Sarg(column, ">=", lo, conjunct))
            out.append(Sarg(column, "<=", hi, conjunct))
    elif isinstance(conjunct, ast.InList) and not conjunct.negated:
        if isinstance(conjunct.operand, ast.ColumnRef):
            values = []
            for item in conjunct.items:
                ok, value = _constant_value(item)
                if not ok:
                    return out
                values.append(value)
            _, column = resolver.resolve(conjunct.operand)
            out.append(Sarg(column, "in", tuple(values), conjunct))
    return out


def analyze_select(select, catalog):
    """Analyze a Select AST against ``catalog``; returns a QueryInfo.

    Raises OptimizerError for constructs outside the supported subset.
    """
    info = QueryInfo(select)
    info.distinct = select.distinct
    info.limit = select.limit

    # The normalized C&C constraint covers all blocks, including subqueries.
    info.constraint, _ = constraint_from_select(select)

    for item in select.from_items:
        if isinstance(item, ast.FromSubquery):
            info.complex = True
            return info
        if not catalog.has_table(item.name):
            raise CatalogError(f"unknown table: {item.name}")
        if item.alias in info.operands:
            raise OptimizerError(f"duplicate alias in FROM: {item.alias}")
        info.operands[item.alias] = OperandInfo(item.alias, item.name, catalog.table(item.name))
        info.from_order.append(item.alias)

    if _has_subquery(select.having):
        info.complex = True
        return info

    resolver = _Resolver(info.operands)

    # ------------------------------------------------------------------
    # WHERE classification
    # ------------------------------------------------------------------
    for conjunct in _split_conjuncts(select.where):
        if _has_subquery(conjunct):
            semi = _try_semi_join(conjunct, catalog)
            if semi is not None:
                # The outer operand needs the compared column.
                alias, column = resolver.resolve(semi.outer_ref)
                info.operands[alias].needed_columns.add(column)
                info.semi_joins.append(semi)
            else:
                info.post_conjuncts.append(conjunct)
            continue
        aliases = resolver.aliases_in(conjunct)
        if len(aliases) <= 1:
            alias = next(iter(aliases)) if aliases else info.from_order[0]
            operand = info.operands[alias]
            operand.conjuncts.append(conjunct)
            operand.sargs.extend(_extract_sargs(conjunct, resolver, alias))
        elif len(aliases) == 2 and _is_equijoin(conjunct):
            la, lc = resolver.resolve(conjunct.left)
            ra, rc = resolver.resolve(conjunct.right)
            info.join_conjuncts.append(JoinConjunct(la, lc, ra, rc, conjunct))
        else:
            info.residual_conjuncts.append(conjunct)

    # ------------------------------------------------------------------
    # Select list expansion & aggregation detection
    # ------------------------------------------------------------------
    has_agg = bool(select.group_by) or any(
        isinstance(node, ast.FuncCall) and node.is_aggregate
        for item in select.items
        if item.expr is not None
        for node in item.expr.walk()
    )
    info.is_aggregate = has_agg

    expanded = []
    for item in select.items:
        if item.star:
            targets = [item.star_qualifier] if item.star_qualifier else info.from_order
            for alias in targets:
                operand = info.operands.get(alias)
                if operand is None:
                    raise CatalogError(f"unknown alias in star expansion: {alias}")
                for col in operand.schema.columns:
                    expanded.append((ast.ColumnRef(col.name, qualifier=alias), col.name))
        else:
            expanded.append((item.expr, item.output_name()))
    info.items = expanded

    if has_agg:
        if select.distinct:
            raise OptimizerError("DISTINCT with aggregation is not supported")
        info.group_refs = []
        for g in select.group_by:
            if not isinstance(g, ast.ColumnRef):
                raise OptimizerError("GROUP BY supports column references only")
            info.group_refs.append(g)
        group_keys = {resolver.resolve(g) for g in info.group_refs}
        for expr, name in expanded:
            if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
                arg = None
                if not expr.star:
                    if expr.name != "count" and not expr.args:
                        raise OptimizerError(f"{expr.name.upper()} needs an argument")
                    arg = expr.args[0] if expr.args else None
                info.agg_items.append(AggregateItem("agg", expr, name, func=expr.name, arg=arg))
            elif isinstance(expr, ast.ColumnRef):
                if resolver.resolve(expr) not in group_keys:
                    raise OptimizerError(
                        f"column {expr.to_sql()} must appear in GROUP BY"
                    )
                info.agg_items.append(AggregateItem("group", expr, name))
            else:
                raise OptimizerError(
                    "aggregation select items must be grouping columns or aggregates"
                )
        info.having = select.having

    info.order_by = list(select.order_by)

    # ------------------------------------------------------------------
    # Needed columns per operand (for projection pushdown to remote SQL)
    # ------------------------------------------------------------------
    def note_refs(expr):
        if expr is None:
            return
        for ref in expr.column_refs():
            alias, column = resolver.resolve(ref)
            info.operands[alias].needed_columns.add(column)

    for expr, _ in expanded:
        note_refs(expr)
    for conjuncts_owner in info.operands.values():
        for conjunct in conjuncts_owner.conjuncts:
            note_refs(conjunct)
    for jc in info.join_conjuncts:
        info.operands[jc.left_alias].needed_columns.add(jc.left_column)
        info.operands[jc.right_alias].needed_columns.add(jc.right_column)
    for conjunct in info.residual_conjuncts:
        note_refs(conjunct)
    def note_refs_tolerant(expr):
        """HAVING and ORDER BY may reference select-list aliases (e.g. a
        named aggregate), which have no owning operand — skip those."""
        if expr is None:
            return
        for ref in expr.column_refs():
            try:
                alias, column = resolver.resolve(ref)
            except CatalogError:
                continue
            info.operands[alias].needed_columns.add(column)

    for g in info.group_refs:
        note_refs(g)
    note_refs_tolerant(info.having)
    for o in info.order_by:
        note_refs_tolerant(o.expr)

    # Subquery conjuncts may reference any column of any operand (their
    # inner refs are not resolvable here), so be conservative.
    if info.post_conjuncts:
        for operand in info.operands.values():
            operand.needed_columns.update(operand.schema.names())

    # An operand referenced nowhere still needs at least one column so a
    # remote fetch has something to SELECT.
    for operand in info.operands.values():
        if not operand.needed_columns:
            operand.needed_columns.add(operand.schema.columns[0].name)

    return info


def _is_equijoin(conjunct):
    return (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    )
