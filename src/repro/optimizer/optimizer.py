"""The cost-based optimizer (paper §3.2.2).

Search strategy: dynamic programming over operand subsets (the classic
System-R enumeration, adequate for the join sizes a mid-tier cache sees),
keeping — per subset — the cheapest candidate *per delivered consistency
property*.  Keeping one candidate per property is essential: a cheap local
plan and a more expensive remote plan for the same subset are incomparable
until we know which joins sit above them, because the consistency rules may
later disqualify the local one.

Pruning uses the consistency *violation* rule on partial plans and the
*satisfaction* rule on complete plans, exactly as in the paper; candidates
whose guarded view can never meet the currency bound (bound < region delay)
are never generated in the first place.
"""

import itertools

from repro.common.errors import OptimizerError
from repro.cc.properties import satisfies, violates
from repro.obs.metrics import NULL_REGISTRY
from repro.engine import operators as ops
from repro.engine.expressions import OutputCol, RowBinding, compile_expr
from repro.optimizer.candidates import Candidate, stamp_estimates
from repro.optimizer.placement import combine_conjuncts
from repro.optimizer.query_info import analyze_select
from repro.sql import ast


class OptimizedPlan:
    """The output of optimization: a buildable plan plus metadata."""

    def __init__(self, candidate, column_names, query_info):
        self.candidate = candidate
        self.column_names = column_names
        self.query_info = query_info
        #: When True, :meth:`root` memoizes the built operator tree so
        #: repeated (sequential) executions of a cached plan skip the
        #: expression-compilation work.  Operators fully reset state in
        #: ``open``/``close``, so sequential reuse is safe; MTCache turns
        #: this on for plan-cache entries when running the batch engine.
        self.reuse_root = False
        self._root = None
        self._summary = None

    @property
    def cost(self):
        return self.candidate.cost

    @property
    def est_rows(self):
        return self.candidate.rows

    @property
    def est_width(self):
        return self.candidate.width

    @property
    def kind(self):
        return self.candidate.kind

    def root(self):
        """Build and return the physical operator tree.

        With ``reuse_root`` set, the tree is built once and returned on
        every call; otherwise each call builds a fresh tree.
        """
        if self._root is not None:
            return self._root
        root = self.candidate.operator()
        if self.reuse_root:
            self._root = root
        return root

    def explain(self):
        return self.root().explain()

    def summary(self):
        """A compact signature of the plan shape, for tests and benches.

        Examples: ``remote(q)``, ``hashjoin(remote(c), guarded(orders_prj))``.
        The shape is fixed once the plan is built, so it is computed once.
        """
        if self._summary is None:
            self._summary = _summarize(self.root())
        return self._summary

    def __repr__(self):
        return f"OptimizedPlan({self.kind}, cost={self.cost:.1f})"


def _summarize(op):
    if isinstance(op, ops.RemoteQuery):
        return "remote"
    if isinstance(op, ops.SwitchUnion):
        return f"guarded({op.label})"
    if isinstance(op, (ops.HashJoin, ops.MergeJoin, ops.IndexNLJoin)):
        name = {
            ops.HashJoin: "hashjoin",
            ops.MergeJoin: "mergejoin",
            ops.IndexNLJoin: "nljoin",
        }[type(op)]
        children = ", ".join(_summarize(c) for c in op.children())
        return f"{name}({children})"
    if isinstance(op, (ops.SeqScan, ops.IndexSeek, ops.IndexRangeScan)):
        return f"scan({op.table.name})"
    children = list(op.children())
    if len(children) == 1:
        return _summarize(children[0])
    return op.describe()


class Optimizer:
    """Optimizes single-block queries against a placement provider.

    ``early_pruning`` applies the consistency *violation* rule to partial
    plans (the paper's early-discard optimization).  Disabling it only
    delays the check to the complete-plan satisfaction rule — results are
    identical, but the search table holds more candidates; the ablation
    bench measures the difference.  ``stats`` (reset per optimization)
    counts candidates considered / admitted / pruned.
    """

    def __init__(self, placement, early_pruning=True, registry=None):
        self.placement = placement
        self.cost_model = placement.cost_model
        self.early_pruning = early_pruning
        self.stats = {"considered": 0, "admitted": 0, "pruned": 0}
        #: Metrics registry (candidate counters, enumeration span); the
        #: cache points this at its own registry, the back-end leaves the
        #: no-op default.
        self.registry = registry if registry is not None else NULL_REGISTRY

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def optimize(self, select, catalog):
        """Optimize a Select AST; returns an OptimizedPlan.

        Raises OptimizerError for complex (multi-block) queries — callers
        fall back to their engine-specific paths (naive recursive planning
        on the back-end, whole-query shipping on the cache).
        """
        query_info = analyze_select(select, catalog)
        if query_info.complex:
            raise OptimizerError("complex query: not optimizable by DP search")
        return self.optimize_info(query_info)

    def estimate(self, select, catalog):
        """Cost/cardinality estimate without caring about the plan."""
        plan = self.optimize(select, catalog)
        return plan.cost, plan.est_rows, plan.est_width

    def optimize_info(self, query_info):
        required = query_info.constraint
        self.stats = {"considered": 0, "admitted": 0, "pruned": 0}
        registry = self.registry
        with registry.span("enumerate_joins"):
            best_by_subset = self._enumerate_joins(query_info, required)

        all_aliases = frozenset(query_info.aliases())
        finalists = []
        for candidate in best_by_subset.get(all_aliases, {}).values():
            finished = self._finish(candidate, query_info)
            if finished is not None:
                finalists.append(finished)

        whole = self.placement.whole_query_candidate(query_info)
        if whole is not None and not violates(whole.delivered, required):
            finalists.append(whole)

        for outcome in ("considered", "admitted", "pruned"):
            registry.counter(
                "optimizer_candidates_total", labels={"outcome": outcome},
                help="DP-search candidates by outcome",
            ).inc(self.stats[outcome])

        valid = [c for c in finalists if satisfies(c.delivered, required)]
        if not valid:
            raise OptimizerError(
                f"no plan satisfies the C&C constraint {required!r}"
            )
        best = min(valid, key=lambda c: c.cost)
        column_names = [name for _, name in query_info.items]
        return OptimizedPlan(best, column_names, query_info)

    # ------------------------------------------------------------------
    # Join enumeration
    # ------------------------------------------------------------------
    def _enumerate_joins(self, query_info, required):
        aliases = query_info.aliases()
        table = {}  # frozenset(aliases) -> {signature: Candidate}

        def admit(subset, candidate):
            self.stats["considered"] += 1
            if self.early_pruning and violates(candidate.delivered, required):
                self.stats["pruned"] += 1
                return
            bucket = table.setdefault(subset, {})
            signature = candidate.signature()
            incumbent = bucket.get(signature)
            if incumbent is None or candidate.cost < incumbent.cost:
                bucket[signature] = candidate
                self.stats["admitted"] += 1

        for alias in aliases:
            operand = query_info.operand(alias)
            subset = frozenset([alias])
            for candidate in self.placement.access_candidates(operand, query_info):
                admit(subset, candidate)
            remote = self.placement.subset_remote_candidate(subset, query_info)
            if remote is not None:
                admit(subset, remote)

        for size in range(2, len(aliases) + 1):
            for combo in itertools.combinations(aliases, size):
                subset = frozenset(combo)
                # Joins of every (left, right) partition.
                for left_subset in _proper_subsets(subset):
                    right_subset = subset - left_subset
                    left_bucket = table.get(left_subset)
                    right_bucket = table.get(right_subset)
                    if not left_bucket or not right_bucket:
                        continue
                    join_conjuncts = query_info.join_conjuncts_between(left_subset, right_subset)
                    # An empty conjunct list degrades HashJoin to a cross
                    # product (single hash bucket); allowed but expensive,
                    # so real join orders always win when one exists.
                    for left in left_bucket.values():
                        for right in right_bucket.values():
                            for candidate in self._join_candidates(
                                left, right, join_conjuncts, subset, query_info
                            ):
                                admit(subset, candidate)
                remote = self.placement.subset_remote_candidate(subset, query_info)
                if remote is not None:
                    admit(subset, remote)
        return table

    def _join_candidates(self, left, right, join_conjuncts, subset, query_info):
        """Physical join alternatives for one (left, right) candidate pair."""
        cm = self.cost_model
        binding = left.binding.concat(right.binding)
        delivered = left.delivered.join(right.delivered)

        # Estimated output cardinality: containment-of-values.
        out_rows = left.rows * right.rows
        for jc, swapped in join_conjuncts:
            left_stats = query_info.operand(jc.left_alias).stats.column(jc.left_column)
            right_stats = query_info.operand(jc.right_alias).stats.column(jc.right_column)
            ndv = max(left_stats.ndv, right_stats.ndv, 1)
            out_rows /= ndv
        out_rows = max(out_rows, 0.0)

        # Residual predicates that become applicable at this subset.
        residuals = [
            conjunct
            for conjunct in query_info.residual_conjuncts
            if _refs_within(conjunct, subset, query_info)
            and not _refs_within(conjunct, left.aliases, query_info)
            and not _refs_within(conjunct, right.aliases, query_info)
        ]
        width = left.width + right.width

        def make_key_fns(candidate_binding, refs):
            def build():
                return [
                    compile_expr(ref, candidate_binding, self.placement.expr_ctx)
                    for ref in refs
                ]

            return build

        left_refs = []
        right_refs = []
        for jc, swapped in join_conjuncts:
            if not swapped:
                left_refs.append(ast.ColumnRef(jc.left_column, qualifier=jc.left_alias))
                right_refs.append(ast.ColumnRef(jc.right_column, qualifier=jc.right_alias))
            else:
                left_refs.append(ast.ColumnRef(jc.right_column, qualifier=jc.right_alias))
                right_refs.append(ast.ColumnRef(jc.left_column, qualifier=jc.left_alias))

        residual_expr = combine_conjuncts(residuals)

        def build_hash(left=left, right=right, binding=binding):
            residual = (
                compile_expr(residual_expr, binding, self.placement.expr_ctx)
                if residual_expr is not None
                else None
            )
            return ops.HashJoin(
                left.operator(),
                right.operator(),
                make_key_fns(left.binding, left_refs)(),
                make_key_fns(right.binding, right_refs)(),
                binding,
                residual=residual,
            )

        cost = (
            left.cost
            + right.cost
            + cm.hash_join(left.rows, right.rows, out_rows)
            + (cm.filter(out_rows) if residuals else 0.0)
        )
        yield Candidate(
            build_hash,
            cost,
            out_rows * (0.25 if residuals else 1.0),
            width,
            binding,
            delivered,
            subset,
            "hash-join",
            detail=f"{sorted(left.aliases)}x{sorted(right.aliases)}",
            # Our hash join streams the probe (left) side in order.
            sort_order=left.sort_order,
        )

        # Merge join: valid when both children deliver the join keys as a
        # prefix of their sort orders, pairwise aligned.
        aligned = _align_merge_keys(left.sort_order, right.sort_order, left_refs, right_refs)
        if aligned is not None:
            merge_left_refs, merge_right_refs = aligned

            def build_merge(left=left, right=right, binding=binding):
                residual = (
                    compile_expr(residual_expr, binding, self.placement.expr_ctx)
                    if residual_expr is not None
                    else None
                )
                return ops.MergeJoin(
                    left.operator(),
                    right.operator(),
                    [
                        compile_expr(ref, left.binding, self.placement.expr_ctx)
                        for ref in merge_left_refs
                    ],
                    [
                        compile_expr(ref, right.binding, self.placement.expr_ctx)
                        for ref in merge_right_refs
                    ],
                    binding,
                    residual=residual,
                )

            merge_cost = (
                left.cost
                + right.cost
                + cm.merge_join(left.rows, right.rows, out_rows)
                + (cm.filter(out_rows) if residuals else 0.0)
            )
            yield Candidate(
                build_merge,
                merge_cost,
                out_rows * (0.25 if residuals else 1.0),
                width,
                binding,
                delivered,
                subset,
                "merge-join",
                detail=f"{sorted(left.aliases)}x{sorted(right.aliases)}",
                sort_order=left.sort_order,
            )

        # Index nested-loops: inner is a single operand with an index whose
        # key prefix is covered by the join columns (placement decides which
        # sources qualify, e.g. base tables on the back-end).
        if len(right.aliases) == 1 and join_conjuncts:
            inner_alias = next(iter(right.aliases))
            inner_operand = query_info.operand(inner_alias)
            # inner join column -> outer-side reference
            col_to_outer = {}
            for (jc, swapped), outer_ref in zip(join_conjuncts, left_refs):
                inner_col = jc.right_column if not swapped else jc.left_column
                col_to_outer.setdefault(inner_col, outer_ref)
            for source in self.placement.nl_inner_sources(inner_operand, set(col_to_outer)):
                table, index, inner_binding, inner_delivered, skip = source
                # Key columns must form a prefix of the index key, in index
                # order; require the full join-column set to be used.
                prefix = []
                for col in index.column_names:
                    if col in col_to_outer:
                        prefix.append(col)
                    else:
                        break
                if len(prefix) != len(col_to_outer):
                    continue
                ordered_outer_refs = [col_to_outer[col] for col in prefix]
                inner_conjuncts = [c for c in inner_operand.conjuncts if c not in skip]
                residual_all = combine_conjuncts(residuals)
                nl_binding = left.binding.concat(inner_binding)
                rows_per_probe = max(out_rows / max(left.rows, 1.0), 0.0)

                def build_nl(
                    left=left,
                    table=table,
                    index=index,
                    inner_binding=inner_binding,
                    inner_conjuncts=tuple(inner_conjuncts),
                    ordered_outer_refs=tuple(ordered_outer_refs),
                    nl_binding=nl_binding,
                    residual_all=residual_all,
                    rows_per_probe=rows_per_probe,
                ):
                    # Key fns resolve outer columns through the correlated
                    # environment (local binding is empty).
                    key_binding = RowBinding([], outer=left.binding)
                    key_fns = [
                        compile_expr(ref, key_binding, self.placement.expr_ctx)
                        for ref in ordered_outer_refs
                    ]
                    inner_pred_expr = combine_conjuncts(list(inner_conjuncts))
                    inner_pred = (
                        compile_expr(inner_pred_expr, inner_binding, self.placement.expr_ctx)
                        if inner_pred_expr is not None
                        else None
                    )
                    inner = stamp_estimates(
                        ops.IndexSeek(table, index, key_fns, inner_binding,
                                      predicate=inner_pred),
                        rows_per_probe,
                    )
                    residual = (
                        compile_expr(residual_all, nl_binding, self.placement.expr_ctx)
                        if residual_all is not None
                        else None
                    )
                    return ops.IndexNLJoin(left.operator(), inner, nl_binding, residual=residual)

                nl_cost = (
                    left.cost
                    + cm.index_nl_join(left.rows, rows_per_probe, out_rows)
                    + (cm.filter(out_rows) if residuals else 0.0)
                )
                yield Candidate(
                    build_nl,
                    nl_cost,
                    out_rows * (0.25 if residuals else 1.0),
                    left.width + right.width,
                    nl_binding,
                    left.delivered.join(inner_delivered),
                    subset,
                    "nl-join",
                    detail=f"{sorted(left.aliases)}->{table.name}.{index.name}",
                    # Nested loops preserve the outer side's order.
                    sort_order=left.sort_order,
                )

    # ------------------------------------------------------------------
    # Finishing: projection, aggregation, order, distinct, limit
    # ------------------------------------------------------------------
    def _finish(self, candidate, query_info):
        cm = self.cost_model
        expr_ctx = self.placement.expr_ctx
        binding = candidate.binding
        cost = candidate.cost
        rows = candidate.rows

        # Subquery conjuncts run as a filter above the join; they need a
        # subquery runner in the expression context (back-end only).
        if query_info.post_conjuncts:
            if expr_ctx.subquery_runner is None:
                return None
            post_expr = combine_conjuncts(query_info.post_conjuncts)
            prev_candidate = candidate
            cost += cm.filter(rows) * 4.0  # subqueries are expensive per row
            rows = max(1.0, rows * 0.25)

            def build_post(prev_candidate=prev_candidate, post_expr=post_expr,
                           binding=binding, est=(rows, cost)):
                predicate = compile_expr(post_expr, binding, expr_ctx)
                return stamp_estimates(
                    ops.Filter(prev_candidate.operator(), predicate, output=binding), *est
                )
            candidate = Candidate(
                build_post,
                cost,
                rows,
                prev_candidate.width,
                binding,
                prev_candidate.delivered,
                prev_candidate.aliases,
                prev_candidate.kind,
                detail=prev_candidate.detail,
            )

        # Uncorrelated IN-subqueries become hash semi joins when the
        # placement can supply the inner relation; otherwise they fall
        # back to naive per-row evaluation through the subquery runner.
        for semi in query_info.semi_joins:
            source = self.placement.semi_inner_source(semi)
            prev_candidate = candidate
            if source is None:
                if expr_ctx.subquery_runner is None:
                    return None
                cost += cm.filter(rows) * 4.0
                rows = max(1.0, rows * 0.5)

                def build_fallback(prev_candidate=prev_candidate, semi=semi,
                                   binding=binding, est=(rows, cost)):
                    predicate = compile_expr(semi.conjunct, binding, expr_ctx)
                    return stamp_estimates(
                        ops.Filter(prev_candidate.operator(), predicate, output=binding),
                        *est,
                    )

                candidate = Candidate(
                    build_fallback, cost, rows, prev_candidate.width, binding,
                    prev_candidate.delivered, prev_candidate.aliases,
                    prev_candidate.kind, detail=prev_candidate.detail,
                )
                continue
            build_inner, inner_binding, inner_cost, inner_rows, inner_delivered = source
            cost += inner_cost + cm.hash_join(rows, inner_rows, rows * 0.5)
            rows = max(1.0, rows * 0.5)

            def build_semi(prev_candidate=prev_candidate, semi=semi, binding=binding,
                           build_inner=build_inner, inner_binding=inner_binding,
                           est=(rows, cost)):
                left_key = compile_expr(semi.outer_ref, binding, expr_ctx)
                right_key = compile_expr(semi.inner_ref, inner_binding, expr_ctx)
                operator = ops.HashAntiJoin if semi.negated else ops.HashSemiJoin
                return stamp_estimates(
                    operator(
                        prev_candidate.operator(), build_inner(), [left_key], [right_key],
                        output=binding,
                    ),
                    *est,
                )
            candidate = Candidate(
                build_semi,
                cost,
                rows,
                prev_candidate.width,
                binding,
                prev_candidate.delivered.join(inner_delivered),
                prev_candidate.aliases,
                prev_candidate.kind,
                detail=prev_candidate.detail,
            )

        if query_info.is_aggregate:
            build_child = candidate
            group_refs = query_info.group_refs
            agg_items = query_info.agg_items
            agg_specs_info = [item for item in agg_items if item.kind == "agg"]
            group_items = [item for item in agg_items if item.kind == "group"]

            # Aggregate output: group columns (in GROUP BY order) then
            # aggregates (in select-list order).
            agg_binding = RowBinding(
                [OutputCol(g.name, g.qualifier) for g in group_refs]
                + [OutputCol(item.name) for item in agg_specs_info]
            )

            having_expr = query_info.having
            group_ndv = 1.0
            for g in group_refs:
                stats = query_info.operand(_qualifier_of(g, query_info)).stats
                group_ndv *= max(stats.column(g.name).ndv, 1)
            out_rows = min(rows, group_ndv) if group_refs else 1.0
            cost += cm.aggregate(rows) + cm.project(out_rows)
            rows = out_rows

            def build_agg(est=(rows, cost)):
                child = build_child.operator()
                group_fns = [compile_expr(g, binding, expr_ctx) for g in group_refs]
                specs = []
                for item in agg_specs_info:
                    arg_fn = (
                        compile_expr(item.arg, binding, expr_ctx)
                        if item.arg is not None
                        else None
                    )
                    specs.append(ops.AggregateSpec(item.func, arg_fn))
                having = (
                    compile_expr(having_expr, agg_binding, expr_ctx)
                    if having_expr is not None
                    else None
                )
                agg = stamp_estimates(
                    ops.HashAggregate(child, group_fns, specs, agg_binding, having=having),
                    est[0],
                )
                # Re-order to the select-list order and name outputs.
                out_binding = RowBinding([OutputCol(item.name) for item in agg_items])
                exprs = []
                for item in agg_items:
                    if item.kind == "group":
                        exprs.append(compile_expr(item.expr, agg_binding, expr_ctx))
                    else:
                        exprs.append(
                            compile_expr(ast.ColumnRef(item.name), agg_binding, expr_ctx)
                        )
                return stamp_estimates(ops.Project(agg, exprs, out_binding), *est)
            out_binding = RowBinding([OutputCol(item.name) for item in agg_items])
            build = build_agg
        else:
            items = query_info.items
            out_binding = RowBinding([OutputCol(name) for _, name in items])

            # ORDER BY may reference columns that are not in the select
            # list (standard SQL); the whole sort then runs *before* the
            # projection, against the full join binding.
            sort_placement = _sort_placement(query_info.order_by, binding, out_binding)

            def build_project(candidate=candidate, items=items, out_binding=out_binding,
                              sort_placement=sort_placement, est_rows=rows):
                child = candidate.operator()
                if sort_placement == "pre":
                    key_fns = [
                        compile_expr(o.expr, binding, expr_ctx)
                        for o in query_info.order_by
                    ]
                    descending = [o.descending for o in query_info.order_by]
                    child = stamp_estimates(
                        ops.Sort(child, key_fns, descending, output=binding), est_rows
                    )
                exprs = [compile_expr(expr, binding, expr_ctx) for expr, _ in items]
                return stamp_estimates(ops.Project(child, exprs, out_binding), est_rows)

            # Plain projection runs fused in the batch engine (tuple
            # re-ordering over chunks), so it takes the fused discount.
            cost += cm.fused_pipeline(cm.project_row, rows)
            if sort_placement == "pre":
                cost += cm.sort(rows)
            build = build_project

        # DISTINCT
        if query_info.distinct:
            prev_build = build
            cost += cm.aggregate(rows)
            rows = max(1.0, rows * 0.9)

            def build_distinct(prev_build=prev_build, est=(rows, cost)):
                return stamp_estimates(ops.Distinct(prev_build()), *est)

            build = build_distinct

        # ORDER BY (compiled against the output binding: select aliases),
        # unless the sort already ran before the projection.
        if query_info.order_by and (
            query_info.is_aggregate or _sort_placement(query_info.order_by, binding, out_binding) == "post"
        ):
            prev_build = build
            order_items = query_info.order_by

            cost += cm.sort(rows)

            def build_sort(prev_build=prev_build, order_items=order_items,
                           out_binding=out_binding, est=(rows, cost)):
                child = prev_build()
                key_fns = [
                    compile_expr(rebind_to_output(o.expr, out_binding), out_binding, expr_ctx)
                    for o in order_items
                ]
                descending = [o.descending for o in order_items]
                return stamp_estimates(
                    ops.Sort(child, key_fns, descending, output=out_binding), *est
                )

            build = build_sort

        # LIMIT
        if query_info.limit is not None:
            prev_build = build
            limit = query_info.limit
            rows = min(rows, float(limit))

            def build_limit(prev_build=prev_build, limit=limit, est=(rows, cost)):
                return stamp_estimates(ops.Limit(prev_build(), limit), *est)

            build = build_limit

        return Candidate(
            build,
            cost,
            rows,
            candidate.width,
            out_binding,
            candidate.delivered,
            candidate.aliases,
            candidate.kind,
            detail=candidate.detail,
        )


def _align_merge_keys(left_order, right_order, left_refs, right_refs):
    """Reorder the join-key pairs so both sides' sort orders cover them as
    aligned prefixes; returns (left_refs, right_refs) or None.

    ``left_refs[i]`` joins with ``right_refs[i]``; a merge join needs both
    inputs sorted by the keys in the *same* pairwise sequence.
    """
    if not left_refs:
        return None
    pairs = {}
    for lref, rref in zip(left_refs, right_refs):
        pairs[(lref.qualifier, lref.name)] = (lref, rref)
    ordered = []
    for position, key in enumerate(left_order):
        if key not in pairs:
            break
        lref, rref = pairs[key]
        if position >= len(right_order) or right_order[position] != (rref.qualifier, rref.name):
            return None
        ordered.append((lref, rref))
    if len(ordered) != len(pairs):
        return None
    return [l for l, _ in ordered], [r for _, r in ordered]


def _resolves_in(expr, binding):
    """Can every column reference in ``expr`` be resolved in ``binding``?"""
    for ref in expr.column_refs():
        rebound = rebind_to_output(ref, binding)
        if not any(col.matches(rebound) for col in binding.columns):
            return False
    return True


def _sort_placement(order_by, pre_binding, post_binding):
    """Where the ORDER BY sort must run: "post" (after projection, the
    normal case — keys are select-list outputs) or "pre" (before it, when
    a key references a non-selected column).  Mixed requirements that fit
    neither binding raise."""
    if not order_by:
        return "post"
    if all(_resolves_in(o.expr, post_binding) for o in order_by):
        return "post"
    if all(_resolves_in(o.expr, pre_binding) for o in order_by):
        return "pre"
    raise OptimizerError(
        "ORDER BY mixes select-list aliases with non-selected columns"
    )


def rebind_to_output(expr, out_binding):
    """Rewrite an ORDER BY expression against the projected output binding.

    Projection strips qualifiers, so ``ORDER BY d.dname`` must resolve to
    output column ``dname``.  Qualified references that no longer resolve
    are replaced by their bare name when that name is unique in the output.
    """
    if isinstance(expr, ast.ColumnRef) and expr.qualifier is not None:
        if not any(col.matches(expr) for col in out_binding.columns):
            names = [col.name for col in out_binding.columns]
            if names.count(expr.name) == 1:
                return ast.ColumnRef(expr.name)
    return expr


def _proper_subsets(subset):
    """Non-empty proper subsets of a frozenset (each partition seen once per
    orientation; both orientations are enumerated for join-side choice)."""
    items = sorted(subset)
    out = []
    for size in range(1, len(items)):
        for combo in itertools.combinations(items, size):
            out.append(frozenset(combo))
    return out


def _refs_within(expr, aliases, query_info):
    """True if every column reference in ``expr`` resolves within ``aliases``."""
    for ref in expr.column_refs():
        if ref.qualifier is not None:
            if ref.qualifier not in aliases:
                return False
        else:
            owners = [
                alias
                for alias in query_info.aliases()
                if query_info.operand(alias).schema.has_column(ref.name)
            ]
            if len(owners) != 1 or owners[0] not in aliases:
                return False
    return True


def _qualifier_of(ref, query_info):
    if ref.qualifier is not None:
        return ref.qualifier
    for alias in query_info.aliases():
        if query_info.operand(alias).schema.has_column(ref.name):
            return alias
    raise OptimizerError(f"cannot resolve {ref.to_sql()}")
