"""Cost-based query optimizer with integrated C&C checking.

The optimizer mirrors the paper's §3.2: the normalized C&C constraint is the
*required* consistency property; every candidate plan carries a *delivered*
consistency property computed bottom-up; conflicting/violating candidates
are pruned as early as possible; and local view accesses under a finite
currency bound are wrapped in SwitchUnion operators with currency guards,
costed with the guard probability ``p = clamp((B − d) / f, 0, 1)``.
"""

from repro.optimizer.cost import CostModel, guard_probability
from repro.optimizer.candidates import Candidate
from repro.optimizer.optimizer import Optimizer, OptimizedPlan
from repro.optimizer.placement import BackendPlacement, PlacementProvider
from repro.optimizer.query_info import OperandInfo, QueryInfo, analyze_select

__all__ = [
    "BackendPlacement",
    "Candidate",
    "CostModel",
    "OperandInfo",
    "OptimizedPlan",
    "Optimizer",
    "PlacementProvider",
    "QueryInfo",
    "analyze_select",
    "guard_probability",
]
