"""C&C constraints and their normalization (paper §3.2.1).

A C&C constraint is a set of tuples ``<b, S>`` where ``S`` is a set of input
operands (table instances, identified by their FROM-clause alias) and ``b``
is a currency bound in seconds.  The *normalized form* requires that

1. all input operands are base-table instances (derived tables / views have
   been expanded), and
2. the operand sets are pairwise disjoint.

Normalization unions the constraints from every SFW block of the query,
expands derived-table references, then repeatedly merges tuples with
overlapping operand sets, taking the *minimum* bound (two tuples sharing an
operand force all their operands onto one snapshot, which must satisfy the
tighter bound).

Queries without any currency clause get the *tightest* default — bound 0 on
a single consistency class of all inputs — so they retain traditional
semantics (always computed from the latest back-end snapshot).  Operands not
mentioned by any clause in a query that does have clauses get singleton
bound-0 tuples: unmentioned inputs must be current but need not be mutually
consistent with anything else.
"""

from repro.common.errors import ConsistencyError
from repro.sql import ast


class CCTuple:
    """One ``<bound, operand-set>`` element of a C&C constraint.

    ``by_columns`` carries the grouping columns (``BY R.isbn``) through
    normalization.  The prototype — like the paper's — enforces table-level
    consistency, so grouping columns do not relax anything at run time; they
    are preserved for the semantics checker.
    """

    __slots__ = ("bound", "operands", "by_columns")

    def __init__(self, bound, operands, by_columns=()):
        self.bound = float(bound)
        self.operands = frozenset(o.lower() for o in operands)
        self.by_columns = tuple(by_columns)

    def __eq__(self, other):
        return (
            isinstance(other, CCTuple)
            and self.bound == other.bound
            and self.operands == other.operands
        )

    def __hash__(self):
        return hash((self.bound, self.operands))

    def __repr__(self):
        ops = ", ".join(sorted(self.operands))
        by = f" by {[c.to_sql() for c in self.by_columns]}" if self.by_columns else ""
        return f"<{self.bound:g}s on ({ops}){by}>"


class CCConstraint:
    """A set of CCTuples, with normalization and bound lookups."""

    def __init__(self, tuples=()):
        self.tuples = list(tuples)

    @classmethod
    def default(cls, operands):
        """The tightest constraint: bound 0, all operands one class."""
        if not operands:
            return cls([])
        return cls([CCTuple(0.0, operands)])

    def union(self, other):
        """Combine two constraints (constraints are sets of tuples)."""
        return CCConstraint(self.tuples + list(other.tuples))

    @property
    def operands(self):
        out = set()
        for t in self.tuples:
            out |= t.operands
        return out

    def is_normalized(self):
        """True if the operand sets are pairwise disjoint."""
        seen = set()
        for t in self.tuples:
            if t.operands & seen:
                return False
            seen |= t.operands
        return True

    def normalize(self, expansion=None, all_operands=None):
        """Return the normalized constraint.

        ``expansion`` maps a derived-table alias to the set of base operands
        it is computed from; entries are expanded recursively.
        ``all_operands`` is the full set of base operands of the query: any
        operand not covered by a clause gets a singleton bound-0 tuple.
        """
        expansion = expansion or {}

        def expand(op):
            seen = set()
            frontier = [op]
            out = set()
            while frontier:
                current = frontier.pop()
                if current in seen:
                    raise ConsistencyError(f"cyclic view expansion at {current!r}")
                seen.add(current)
                if current in expansion:
                    frontier.extend(expansion[current])
                else:
                    out.add(current)
            return out

        work = []
        for t in self.tuples:
            expanded = set()
            for op in t.operands:
                expanded |= expand(op)
            work.append(CCTuple(t.bound, expanded, t.by_columns))

        # Repeatedly merge tuples with overlapping operand sets; the merged
        # bound is the min (the shared snapshot must satisfy both).
        merged = True
        while merged:
            merged = False
            for i in range(len(work)):
                for j in range(i + 1, len(work)):
                    if work[i].operands & work[j].operands:
                        a, b = work[i], work[j]
                        combined = CCTuple(
                            min(a.bound, b.bound),
                            a.operands | b.operands,
                            a.by_columns + b.by_columns,
                        )
                        work = [t for k, t in enumerate(work) if k not in (i, j)]
                        work.append(combined)
                        merged = True
                        break
                if merged:
                    break

        if all_operands is not None:
            covered = set()
            for t in work:
                covered |= t.operands
            for op in sorted(set(o.lower() for o in all_operands) - covered):
                work.append(CCTuple(0.0, [op]))

        return CCConstraint(sorted(work, key=lambda t: sorted(t.operands)))

    def bound_for(self, operand):
        """The currency bound applying to ``operand`` (inf if unconstrained)."""
        operand = operand.lower()
        for t in self.tuples:
            if operand in t.operands:
                return t.bound
        return ast.UNBOUNDED

    def class_of(self, operand):
        """The consistency class (operand set) containing ``operand``."""
        operand = operand.lower()
        for t in self.tuples:
            if operand in t.operands:
                return t.operands
        return frozenset([operand])

    def __eq__(self, other):
        return isinstance(other, CCConstraint) and set(self.tuples) == set(other.tuples)

    def __len__(self):
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __repr__(self):
        return "CCConstraint{" + ", ".join(repr(t) for t in self.tuples) + "}"


def _collect_clauses(select, scope, expansion, operands, clauses):
    """Walk a Select block tree gathering currency specs and operand info.

    ``scope`` maps visible aliases (current + outer blocks) to operand ids.
    Operand ids are the FROM aliases themselves, which the caller guarantees
    unique per query by rejecting duplicates.
    """
    local_scope = dict(scope)
    for item in select.from_items:
        alias = item.alias
        if alias in operands or alias in expansion:
            raise ConsistencyError(f"duplicate table alias in query: {alias!r}")
        if isinstance(item, ast.FromSubquery):
            inner_ops = set()
            _collect_clauses(item.select, local_scope, expansion, inner_ops, clauses)
            expansion[alias] = inner_ops
            operands.update(inner_ops)
        else:
            operands.add(alias)
        local_scope[alias] = alias

    # Subqueries in WHERE/HAVING also contribute blocks (paper §2.2, Q3).
    for expr in _subquery_exprs(select):
        inner_ops = set()
        _collect_clauses(expr, local_scope, expansion, inner_ops, clauses)
        operands.update(inner_ops)

    if select.currency is not None:
        for spec in select.currency.specs:
            resolved = []
            for target in spec.targets:
                if target not in local_scope:
                    raise ConsistencyError(
                        f"currency clause references unknown input {target!r}"
                    )
                resolved.append(local_scope[target])
            clauses.append(CCTuple(spec.bound, resolved, spec.by_columns))


def _subquery_exprs(select):
    """Yield Select nodes nested in WHERE/HAVING expressions of one block."""
    roots = [e for e in (select.where, select.having) if e is not None]
    for root in roots:
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.ExistsSubquery, ast.InSubquery)):
                yield node.select
            elif isinstance(node, ast.Expr):
                stack.extend(node.children())


def constraint_from_select(select):
    """Build the normalized C&C constraint for a parsed SELECT statement.

    Returns ``(constraint, operands)`` where ``operands`` is the set of base
    input-operand aliases of the (extended) query.
    """
    expansion = {}
    operands = set()
    clauses = []
    _collect_clauses(select, {}, expansion, operands, clauses)
    if not clauses:
        return CCConstraint.default(sorted(operands)), operands
    raw = CCConstraint(clauses)
    return raw.normalize(expansion=expansion, all_operands=operands), operands
