"""Timeline (inter-statement) consistency — paper §2.3 and appendix §8.7.

Queries within a ``BEGIN TIMEORDERED … END TIMEORDERED`` bracket must
perceive time as moving forward: a later query may not use data older than
the data used by any earlier query in the bracket.  We track this with a
*watermark* — the largest snapshot time used so far.  During the bracket,
currency guards additionally require the local view's snapshot time to be at
least the watermark; remote reads (always the latest snapshot) trivially
qualify and advance the watermark to the current time.

Forward movement of time is **not** enforced by default; the session opts in
explicitly, exactly as the paper specifies.
"""

from repro.common.errors import ConsistencyError


class TimelineSession:
    """Per-session timeline consistency state."""

    def __init__(self):
        self.active = False
        self.watermark = 0.0

    def begin(self):
        if self.active:
            raise ConsistencyError("already inside a TIMEORDERED bracket")
        self.active = True
        self.watermark = 0.0

    def end(self):
        if not self.active:
            raise ConsistencyError("END TIMEORDERED outside a bracket")
        self.active = False
        self.watermark = 0.0

    def admits(self, snapshot_time):
        """Can data with the given snapshot time be used by the next query?"""
        if not self.active:
            return True
        return snapshot_time >= self.watermark

    def observe(self, snapshot_time):
        """Record that a query consumed data as of ``snapshot_time``."""
        if self.active and snapshot_time > self.watermark:
            self.watermark = snapshot_time

    def __repr__(self):
        state = f"watermark={self.watermark}" if self.active else "inactive"
        return f"<TimelineSession {state}>"
