"""Required and delivered consistency plan properties (paper §3.2.2).

The *required* property of a query is its normalized
:class:`~repro.cc.constraint.CCConstraint`.  The *delivered* property of a
physical (sub)plan is a set of ``<region, operand-set>`` tuples: which
currency region each input operand's data comes from.  The rules below are
the paper's verbatim:

* **Conflicting** — one operand delivered from two different regions (e.g.
  a join of two projection views of the same table living in different
  regions) can never satisfy any constraint.
* **Satisfaction** (complete plans) — not conflicting, and every required
  consistency class is contained in a single delivered group.
* **Violation** (partial plans, for early pruning) — conflicting, or some
  delivered group straddles two required classes (it can then never end up
  inside a single class).

SwitchUnion needs special care: it *selects* one child at run time, so two
operands are only guaranteed mutually consistent if they are grouped
together in **every** child.  We model that by intersecting the children's
partitions, labelling each resulting group with the tuple of per-child
regions.
"""

#: Reserved region id for data fetched from the back-end (master) server.
#: All remote fetches within one query execution see the latest snapshot and
#: are mutually consistent (the simulation executes queries serially, which
#: is the Strict-2PL reading of the paper's model).
BACKEND_REGION = "__backend__"


class ConsistencyProperty:
    """A delivered consistency property: tuples of (region id, operands).

    Region ids are ordinarily strings (region ``cid`` or BACKEND_REGION);
    SwitchUnion produces composite ids — tuples of the per-child ids — which
    compare equal only when every child agreed.
    """

    def __init__(self, groups=()):
        # Mapping region -> frozenset(operands) would lose conflicting
        # duplicates, so store a list of (region, frozenset) pairs.
        self.groups = [(r, frozenset(o.lower() for o in ops)) for r, ops in groups]

    @classmethod
    def single(cls, region, operands):
        return cls([(region, operands)])

    @property
    def operands(self):
        out = set()
        for _, ops in self.groups:
            out |= ops
        return out

    def region_of(self, operand):
        """Region the operand is delivered from (first match)."""
        operand = operand.lower()
        for region, ops in self.groups:
            if operand in ops:
                return region
        return None

    # ------------------------------------------------------------------
    # Combination rules, one per operator category (paper §3.2.2)
    # ------------------------------------------------------------------
    def copy(self):
        """Single-input operators (filter/project/aggregate/sort) pass the
        property through unchanged."""
        return ConsistencyProperty(self.groups)

    def join(self, other):
        """Join operators union the children's tuples, merging tuples with
        equal region ids."""
        merged = {}
        extras = []
        for region, ops in list(self.groups) + list(other.groups):
            if region in merged:
                merged[region] = merged[region] | ops
            else:
                merged[region] = ops
        out = [(region, ops) for region, ops in merged.items()]
        return ConsistencyProperty(out + extras)

    @staticmethod
    def switch_union(children):
        """Delivered property of a SwitchUnion over ``children`` properties.

        Operands must be identical across children (they compute the same
        logical expression).  Two operands stay grouped only if grouped in
        every child; the group's region id becomes the tuple of per-child
        region ids.
        """
        if not children:
            return ConsistencyProperty()
        operand_set = children[0].operands
        for child in children[1:]:
            if child.operands != operand_set:
                raise ValueError(
                    "SwitchUnion children must cover the same operands: "
                    f"{sorted(operand_set)} vs {sorted(child.operands)}"
                )
        # Signature of an operand = tuple of the group it belongs to per
        # child; operands with equal signatures stay together.
        signatures = {}
        for op in operand_set:
            signature = tuple(child.region_of(op) for child in children)
            signatures.setdefault(signature, set()).add(op)
        groups = [(signature, frozenset(ops)) for signature, ops in signatures.items()]
        return ConsistencyProperty(sorted(groups, key=lambda g: sorted(g[1])))

    def __eq__(self, other):
        return isinstance(other, ConsistencyProperty) and sorted(
            self.groups, key=str
        ) == sorted(other.groups, key=str)

    def __repr__(self):
        inner = ", ".join(f"<{r!r}: {sorted(ops)}>" for r, ops in self.groups)
        return "ConsistencyProperty{" + inner + "}"


def is_conflicting(delivered):
    """Paper's *conflicting consistency property* rule: two tuples with
    different regions share an operand."""
    for i, (region_i, ops_i) in enumerate(delivered.groups):
        for region_j, ops_j in delivered.groups[i + 1 :]:
            if ops_i & ops_j and region_i != region_j:
                return True
    return False


def satisfies(delivered, required):
    """Paper's *consistency satisfaction rule* (complete plans only):
    not conflicting, and every required class fits in one delivered group."""
    if is_conflicting(delivered):
        return False
    for cc_tuple in required:
        if not any(cc_tuple.operands <= ops for _, ops in delivered.groups):
            return False
    return True


def violates(delivered, required):
    """Early-pruning rule for partial plans: True when no completion of the
    plan can satisfy ``required``.

    The paper's literal rule (2) — *some delivered group intersects more
    than one required class* — would also prune the always-valid full-remote
    plan whenever a query has two consistency classes (the single back-end
    group intersects both, yet trivially satisfies the constraint).  We use
    the sound variant instead: a required class is unsatisfiable once its
    operands are delivered from two *different* regions, because subsequent
    operators only ever merge groups with equal region ids.  The literal
    rule is kept as :func:`violates_paper_literal` for comparison.
    """
    if is_conflicting(delivered):
        return True
    for cc_tuple in required:
        regions = set()
        for region, ops in delivered.groups:
            if ops & cc_tuple.operands:
                regions.add(region)
                if len(regions) > 1:
                    return True
    return False


def violates_paper_literal(delivered, required):
    """The violation rule exactly as printed in the paper (§3.2.2)."""
    if is_conflicting(delivered):
        return True
    for _, ops in delivered.groups:
        touched = sum(1 for cc_tuple in required if ops & cc_tuple.operands)
        if touched > 1:
            return True
    return False
