"""Currency & consistency constraint model (the paper's §2 and §3.2).

* :mod:`repro.cc.constraint` — C&C constraints, normalization (§3.2.1).
* :mod:`repro.cc.properties` — required/delivered consistency plan
  properties and the satisfaction / violation / conflict rules (§3.2.2).
* :mod:`repro.cc.timeline` — session timeline consistency (§2.3).
"""

from repro.cc.constraint import CCConstraint, CCTuple, constraint_from_select
from repro.cc.properties import (
    BACKEND_REGION,
    ConsistencyProperty,
    is_conflicting,
    satisfies,
    violates,
)
from repro.cc.timeline import TimelineSession

__all__ = [
    "BACKEND_REGION",
    "CCConstraint",
    "CCTuple",
    "ConsistencyProperty",
    "TimelineSession",
    "constraint_from_select",
    "is_conflicting",
    "satisfies",
    "violates",
]
