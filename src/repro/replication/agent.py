"""Distribution agents (paper §3.1).

A distribution agent owns one currency region: the set of local materialized
views it refreshes, plus the region's local heartbeat table.  On every wake
it replays the back-end replication log *in commit order*, one transaction
at a time, applying each change to every subscribed view whose predicate the
row satisfies.  Because a region's views are only ever updated together by
the same agent, they are mutually consistent at all times — which is the
invariant the compile-time consistency checker relies on.

The propagation **delay** models delivery latency: an agent waking at time
``t`` applies transactions committed up to ``t − delay``, so immediately
after propagation the region's data is exactly ``delay`` stale — the bottom
of the paper's Figure 3.2 sawtooth.
"""

from repro.common.errors import ReplicationError
from repro.engine.expressions import OutputCol, RowBinding, evaluator
from repro.obs.metrics import NULL_REGISTRY
from repro.replication.heartbeat import HEARTBEAT_TABLE, local_heartbeat_name
from repro.txn.log import Operation


class _ViewSubscription:
    """Precompiled application state for one materialized view."""

    def __init__(self, view, base_table):
        self.view = view
        base_schema = base_table.schema
        self.positions = [base_schema.index_of(c) for c in view.columns]
        if view.predicate is not None:
            binding = RowBinding([OutputCol(c.name) for c in base_schema.columns])
            self.predicate = evaluator(view.predicate, binding)
        else:
            self.predicate = None
        # Position of the base table's primary-key columns inside the view
        # row, used to locate rows for UPDATE/DELETE application.
        if not base_table.primary_key:
            raise ReplicationError(
                f"base table {base_table.name} needs a primary key for replication"
            )
        view_cols = [c.lower() for c in view.columns]
        for pk_col in base_table.primary_key:
            if pk_col not in view_cols:
                raise ReplicationError(
                    f"view {view.view_name if hasattr(view, 'view_name') else view.name}: "
                    f"primary key column {pk_col} must be included for replication"
                )

    def project(self, base_values):
        return tuple(base_values[p] for p in self.positions)

    def satisfies(self, base_values):
        return self.predicate is None or self.predicate(base_values) is True


class DistributionAgent:
    """Propagates committed back-end changes to one currency region."""

    def __init__(self, region_info, backend_catalog, replication_log, cache_catalog, clock,
                 registry=None, checkpoints=None, shard_id=None, checkpoint_key=None):
        self.region = region_info
        self.backend_catalog = backend_catalog
        self.log = replication_log
        self.cache_catalog = cache_catalog
        self.clock = clock
        #: Partition this agent tails (None: unsharded back-end).  On a
        #: sharded deployment a region runs one agent per partition; each
        #: writes its own entry in ``view.shard_snapshots`` and the view's
        #: scalar ``snapshot_time`` is the minimum over shards — a result
        #: is only as current as its stalest contributing shard.
        self.shard_id = shard_id
        #: Key for durable checkpoints and scheduler events.  Distinct per
        #: shard agent (e.g. ``"r#p1"``) so sibling agents of one region
        #: don't clobber each other's resume cutoffs.
        self.checkpoint_key = checkpoint_key if checkpoint_key is not None else region_info.cid
        self.applied_txn = 0
        self.snapshot_time = 0.0
        self._subscriptions = {}  # base table name -> [_ViewSubscription]
        self._local_heartbeat = None
        self._event = None
        self._interval = None
        #: Metrics registry: refresh counts, records applied, staleness
        #: gauge — all labelled by region.  The owning cache sets this.
        self.registry = registry if registry is not None else NULL_REGISTRY
        #: Durable resume cutoff (survives agent death).  None disables
        #: checkpointing; the owning cache passes its CheckpointStore.
        self.checkpoints = checkpoints
        #: Simulated time of the last propagation wake that actually ran
        #: (injected stall windows skip the wake without touching this),
        #: which is what the failover supervisor watches.
        self.last_progress_at = clock.now()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def attach_heartbeat(self, local_heartbeat_table):
        """Register the cache-local heartbeat table for this region."""
        self._local_heartbeat = local_heartbeat_table

    def subscribe(self, view, truncate=True):
        """Subscribe a materialized view and populate it from the back-end.

        To keep the whole region on a single snapshot, any pending changes
        are first propagated with zero delay, bringing existing views to
        "now"; the new view is then populated by scanning the base table.

        ``truncate=False`` keeps existing view rows: on a sharded back-end
        M sibling agents subscribe the *same* view (each contributing its
        partition's rows), so only the first caller may wipe it — the
        orchestrating cache passes ``truncate=False`` when the view is
        known to be freshly created (and therefore already empty).
        """
        base_entry = self.backend_catalog.table(view.base_table)
        subscription = _ViewSubscription(view, base_entry.table)
        self.propagate(cutoff=self.clock.now())
        if truncate:
            view.table.truncate()
        for _, values in base_entry.table.scan():
            if subscription.satisfies(values):
                view.table.insert(subscription.project(values))
        now = self.clock.now()
        self._subscriptions.setdefault(view.base_table, []).append(subscription)
        # This agent's slice of the region is now synchronized to "now".
        self.snapshot_time = now
        self._sync_view(view)
        self._sync_views_metadata()
        self._checkpoint()

    def unsubscribe(self, view):
        """Remove a view's subscription (it stops receiving updates)."""
        subscriptions = self._subscriptions.get(view.base_table, [])
        self._subscriptions[view.base_table] = [
            s for s in subscriptions if s.view is not view
        ]
        if not self._subscriptions[view.base_table]:
            del self._subscriptions[view.base_table]

    def start(self, scheduler, interval=None):
        """Begin periodic propagation on the scheduler."""
        interval = interval if interval is not None else self.region.update_interval
        self._interval = interval
        if self._event is not None:
            self._event.cancel()
        self._event = scheduler.every(
            interval, self.propagate, name=f"agent:{self.checkpoint_key}"
        )
        return self._event

    def stop(self):
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def propagate(self, cutoff=None):
        """Apply all log records committed at or before ``cutoff``.

        The default cutoff is ``now − update_delay``.  Returns the number of
        records applied.
        """
        self.last_progress_at = self.clock.now()
        if cutoff is None:
            cutoff = self.clock.now() - self.region.update_delay
        if cutoff < self.snapshot_time:
            return 0
        applied = 0
        # Skip against the cutoff held at entry, not the live counter: a
        # multi-statement transaction emits several records under one txn
        # id, and advancing ``applied_txn`` on the first would skip its
        # siblings.  All records of a txn share one commit_time, so a txn
        # never straddles the cutoff break below.
        resume_floor = self.applied_txn
        for record in self.log.records:
            if record.txn_id <= resume_floor:
                continue
            if record.commit_time > cutoff:
                break
            if self._apply(record):
                applied += 1
            self.applied_txn = max(self.applied_txn, record.txn_id)
        self.snapshot_time = max(self.snapshot_time, cutoff)
        self._sync_views_metadata()
        self._checkpoint()
        labels = {"region": self.region.cid}
        if self.shard_id is not None:
            labels["shard"] = str(self.shard_id)
        registry = self.registry
        registry.counter("replication_refreshes_total", labels=labels,
                         help="agent propagation runs").inc()
        if applied:
            registry.counter("replication_records_applied_total", labels=labels,
                             help="log records applied to local views").inc(applied)
            registry.event(
                "replication",
                f"agent {self.region.cid} applied {applied} records "
                f"(through txn {self.applied_txn})",
                severity="debug", time=self.clock.now(),
                region=self.region.cid, applied=applied,
            )
        bound = self.staleness_bound()
        if bound is not None:
            registry.gauge("replication_staleness_seconds", labels=labels,
                           help="guaranteed staleness bound from the local heartbeat"
                           ).set(bound)
        return applied

    def _sync_view(self, view):
        """Publish this agent's snapshot onto one view's metadata.

        Unsharded: the agent owns the view outright.  Sharded: the agent
        owns one entry of ``view.shard_snapshots`` and the scalar
        ``snapshot_time`` is normalized to the minimum over shards (the
        per-shard C&C rule: worst contributing shard wins).
        """
        view.applied_txn = self.applied_txn
        if self.shard_id is None:
            view.snapshot_time = self.snapshot_time
        else:
            view.shard_snapshots[self.shard_id] = self.snapshot_time
            view.snapshot_time = min(view.shard_snapshots.values())

    def _sync_views_metadata(self):
        for subs in self._subscriptions.values():
            for sub in subs:
                self._sync_view(sub.view)

    # ------------------------------------------------------------------
    # Durability & failover
    # ------------------------------------------------------------------
    def _checkpoint(self):
        if self.checkpoints is not None:
            self.checkpoints.save(
                self.checkpoint_key, self.applied_txn, self.snapshot_time,
                saved_at=self.clock.now(),
            )

    def adopt(self, other):
        """Take over ``other``'s subscriptions and local heartbeat table.

        The standby writes to the *same* local views — it is the same
        region, just a fresh process.  Resume state (``applied_txn`` /
        ``snapshot_time``) is NOT copied: a promoted standby must trust
        only the durable checkpoint, never the dead primary's memory.
        """
        self._subscriptions = {
            table: list(subs) for table, subs in other._subscriptions.items()
        }
        self._local_heartbeat = other._local_heartbeat
        self._interval = other._interval
        return self

    def resume_from_checkpoint(self):
        """Restore the durable cutoff (no-op without a store/checkpoint).

        The next :meth:`propagate` then replays the log from there; the
        stretch between the checkpoint and whatever the dead agent had
        actually applied is re-applied, which :meth:`_apply` tolerates.
        """
        if self.checkpoints is None:
            return None
        checkpoint = self.checkpoints.load(self.checkpoint_key)
        if checkpoint is None:
            return None
        self.applied_txn = checkpoint.applied_txn
        self.snapshot_time = checkpoint.snapshot_time
        return checkpoint

    def _apply(self, record):
        """Apply one log record; returns True if anything changed locally."""
        if record.table == HEARTBEAT_TABLE:
            return self._apply_heartbeat(record)
        subscriptions = self._subscriptions.get(record.table)
        if not subscriptions:
            return False
        changed = False
        for sub in subscriptions:
            if self._apply_to_view(sub, record):
                changed = True
        return changed

    def _apply_to_view(self, sub, record):
        """Apply one record to one view — idempotently.

        Every op locates the current local row by primary key first, so
        INSERT degrades to an upsert: re-applying an already-applied log
        prefix (checkpointed failover, replayed restart) leaves the view
        byte-identical instead of duplicating rows.
        """
        view_table = sub.view.table
        ci = view_table.clustered_index()
        rid = None
        for candidate in ci.seek(record.pk):
            rid = candidate
            break
        if record.op is Operation.DELETE:
            if rid is not None:
                view_table.delete(rid)
                return True
            return False
        # INSERT / UPDATE: the row may enter, leave, or change within the
        # view; both upsert against the current local state.
        now_in = sub.satisfies(record.values)
        if rid is not None and now_in:
            view_table.update(rid, sub.project(record.values), xtime=record.txn_id,
                              commit_time=record.commit_time)
            return True
        if rid is not None and not now_in:
            view_table.delete(rid)
            return True
        if rid is None and now_in:
            view_table.insert(sub.project(record.values), xtime=record.txn_id,
                              commit_time=record.commit_time)
            return True
        return False

    def _apply_heartbeat(self, record):
        """Replicate this region's heartbeat row into the local table."""
        if self._local_heartbeat is None:
            return False
        cid = record.pk[0]
        if cid != self.region.cid:
            return False
        if record.op is not Operation.INSERT and record.op is not Operation.UPDATE:
            return False
        existing = None
        for rid, values in self._local_heartbeat.scan():
            if values[0] == cid:
                existing = rid
                break
        if existing is None:
            self._local_heartbeat.insert(record.values, xtime=record.txn_id,
                                         commit_time=record.commit_time)
        else:
            self._local_heartbeat.update(existing, record.values, xtime=record.txn_id,
                                         commit_time=record.commit_time)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def local_heartbeat_value(self):
        """The replicated heartbeat timestamp (None before first beat)."""
        if self._local_heartbeat is None:
            return None
        for _, values in self._local_heartbeat.scan():
            return values[1]
        return None

    def staleness_bound(self):
        """Guaranteed upper bound on this region's staleness, from the
        local heartbeat (None if no heartbeat has arrived yet)."""
        ts = self.local_heartbeat_value()
        if ts is None:
            return None
        return self.clock.now() - ts

    def __repr__(self):
        return (
            f"<DistributionAgent region={self.region.cid} applied_txn={self.applied_txn} "
            f"snapshot_time={self.snapshot_time:.3f}>"
        )

    @staticmethod
    def local_heartbeat_table_name(cid):
        return local_heartbeat_name(cid)
