"""Replication: heartbeat service and distribution agents maintaining the
cache's materialized views one region at a time, in commit order — plus
the durability plumbing (checkpointed resume cutoffs, standby promotion)
that keeps regions maintained across agent death."""

from repro.replication.agent import DistributionAgent
from repro.replication.checkpoint import Checkpoint, CheckpointStore
from repro.replication.failover import AgentSupervisor
from repro.replication.heartbeat import (
    HEARTBEAT_TABLE,
    HeartbeatService,
    heartbeat_schema,
    local_heartbeat_name,
)
from repro.replication.row_refresh import RowRefreshAgent, RowSync

__all__ = [
    "AgentSupervisor",
    "Checkpoint",
    "CheckpointStore",
    "DistributionAgent",
    "HEARTBEAT_TABLE",
    "HeartbeatService",
    "RowRefreshAgent",
    "RowSync",
    "heartbeat_schema",
    "local_heartbeat_name",
]
