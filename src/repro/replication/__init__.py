"""Replication: heartbeat service and distribution agents maintaining the
cache's materialized views one region at a time, in commit order."""

from repro.replication.agent import DistributionAgent
from repro.replication.heartbeat import (
    HEARTBEAT_TABLE,
    HeartbeatService,
    heartbeat_schema,
    local_heartbeat_name,
)
from repro.replication.row_refresh import RowRefreshAgent, RowSync

__all__ = [
    "DistributionAgent",
    "HEARTBEAT_TABLE",
    "HeartbeatService",
    "RowRefreshAgent",
    "RowSync",
    "heartbeat_schema",
    "local_heartbeat_name",
]
