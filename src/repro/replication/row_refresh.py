"""Row-level view refresh (quasi-copy-style maintenance).

The paper's related work contrasts its transactional, commit-order
replication with maintenance-centric schemes (quasi-copies, divergence
caching) that refresh *individual objects* independently.  A view
maintained that way is generally **not** snapshot consistent across rows —
each row reflects the master at its own refresh time — but every row (or
every group refreshed together) is internally consistent.  This is exactly
the situation the appendix's per-group consistency model (§8.6) describes,
and the reason the paper's currency clause has ``BY`` grouping columns.

:class:`RowRefreshAgent` maintains a materialized view by copying rows
straight from the master, one row or one group at a time, recording each
row's *sync point* (the master transaction id it reflects).  The
:mod:`repro.semantics.groups` checker consumes those sync points to decide
which grouping granularities the view can satisfy.

Views maintained this way are deliberately *not* registered with the
cost-based optimizer (which requires region-level snapshot consistency,
like the paper's prototype); they exist to make the appendix's finer
granularities executable and testable.
"""

from repro.common.errors import ReplicationError
from repro.engine.expressions import OutputCol, RowBinding, evaluator


class RowSync:
    """Sync metadata for one view row."""

    __slots__ = ("sync_txn", "refresh_time")

    def __init__(self, sync_txn, refresh_time):
        self.sync_txn = sync_txn
        self.refresh_time = refresh_time

    def __repr__(self):
        return f"RowSync(txn={self.sync_txn}, t={self.refresh_time:.3f})"


class RowRefreshAgent:
    """Maintains a view by refreshing individual rows from the master."""

    def __init__(self, view, backend_catalog, txn_manager, clock):
        self.view = view
        self.backend_catalog = backend_catalog
        self.txn_manager = txn_manager
        self.clock = clock
        base_entry = backend_catalog.table(view.base_table)
        self.base_table = base_entry.table
        if not self.base_table.primary_key:
            raise ReplicationError(
                f"row refresh needs a primary key on {view.base_table}"
            )
        self._positions = [
            self.base_table.schema.index_of(c) for c in view.columns
        ]
        if view.predicate is not None:
            binding = RowBinding(
                [OutputCol(c.name) for c in self.base_table.schema.columns]
            )
            self._predicate = evaluator(view.predicate, binding)
        else:
            self._predicate = None
        #: pk -> RowSync for every row currently in the view.
        self.sync = {}
        self._round_robin = 0

    # ------------------------------------------------------------------
    def _project(self, values):
        return tuple(values[p] for p in self._positions)

    def _satisfies(self, values):
        return self._predicate is None or self._predicate(values) is True

    def refresh_row(self, pk):
        """Bring one row (identified by master pk) up to date.

        Reads the master's current committed state: the row is inserted,
        updated or deleted in the view accordingly, and its sync point set
        to the master's latest transaction.  Returns True if the view
        changed.
        """
        pk = tuple(pk)
        sync = RowSync(self.txn_manager.last_txn_id, self.clock.now())
        master_rid = self.base_table.pk_lookup(pk)
        view_table = self.view.table
        view_rid = None
        ci = view_table.clustered_index()
        if ci is not None:
            for rid in ci.seek(pk):
                view_rid = rid
                break

        if master_rid is None or not self._satisfies(self.base_table.row(master_rid)):
            self.sync.pop(pk, None)
            if view_rid is not None:
                view_table.delete(view_rid)
                return True
            return False

        values = self._project(self.base_table.row(master_rid))
        self.sync[pk] = sync
        if view_rid is None:
            view_table.insert(values, xtime=sync.sync_txn, commit_time=sync.refresh_time)
            return True
        if view_table.row(view_rid) != values:
            view_table.update(view_rid, values, xtime=sync.sync_txn,
                              commit_time=sync.refresh_time)
            return True
        # Value unchanged, but the sync point still advances.
        return False

    def refresh_group(self, by_positions, group_key):
        """Refresh every master row whose by-column values equal
        ``group_key`` — the whole group moves to one snapshot together."""
        refreshed = 0
        for _, values in list(self.base_table.scan()):
            if tuple(values[p] for p in by_positions) == tuple(group_key):
                self.refresh_row(self.base_table.clustered_index().key_of(values))
                refreshed += 1
        return refreshed

    def refresh_round(self, n=1):
        """Refresh ``n`` rows round-robin over the master's current keys."""
        keys = [key for key, _ in self.base_table.clustered_index().scan()]
        if not keys:
            return 0
        refreshed = 0
        for _ in range(n):
            key = keys[self._round_robin % len(keys)]
            self._round_robin += 1
            self.refresh_row(key)
            refreshed += 1
        return refreshed

    def refresh_all(self):
        """Refresh every row; afterwards the view is snapshot consistent."""
        master_keys = {key for key, _ in self.base_table.clustered_index().scan()}
        for key in list(self.sync):
            if key not in master_keys:
                self.refresh_row(key)
        count = 0
        for key in sorted(master_keys):
            self.refresh_row(key)
            count += 1
        self.view.applied_txn = self.txn_manager.last_txn_id
        self.view.snapshot_time = self.clock.now()
        return count

    def sync_of(self, pk):
        """The sync point recorded for one view row (None if unknown)."""
        return self.sync.get(tuple(pk))

    def __repr__(self):
        return f"<RowRefreshAgent view={self.view.name} rows={len(self.sync)}>"
