"""Standby promotion for stalled distribution agents.

A region's data only stays inside its currency bound while its agent
keeps waking up; an agent that dies (or is stalled by an injected fault)
lets the region drift arbitrarily stale.  :class:`AgentSupervisor`
watches one region's primary agent on the simulated clock and, when the
agent has made no propagation progress for longer than
``stall_threshold`` seconds, promotes a **standby**: a fresh
:class:`~repro.replication.agent.DistributionAgent` that adopts the same
subscriptions and local heartbeat table, resumes from the durable
:class:`~repro.replication.checkpoint.CheckpointStore` cutoff, and
replays the log suffix idempotently — no row is double-applied even when
the checkpoint lags what the dead primary had applied.

The promoted agent is registered under the owning cache's ``agents``
dict (so guards, status and metrics follow it) and is *not* routed
through the network's stall windows: promotion models failing over to a
healthy host, which is the only reason to promote at all.
"""

from repro.obs.metrics import NULL_REGISTRY
from repro.replication.agent import DistributionAgent

__all__ = ["AgentSupervisor"]


class AgentSupervisor:
    """Watches one region's agent; promotes a standby when it stalls."""

    def __init__(self, cache, cid, *, stall_threshold, check_interval=None,
                 registry=None, node=""):
        self.cache = cache
        #: The supervised agent's key in ``cache.agents``: the region cid,
        #: or ``"{cid}#p{shard}"`` for one partition agent of a sharded
        #: region (each shard agent gets its own supervisor).
        self.cid = cid
        self.stall_threshold = stall_threshold
        agent = cache.agents.get(cid)
        region = agent.region if agent is not None else cache.catalog.region(cid)
        self.check_interval = (
            check_interval if check_interval is not None
            else region.update_interval
        )
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.node = node
        self.promotions = 0
        self._event = None

    # ------------------------------------------------------------------
    def start(self, scheduler=None):
        scheduler = scheduler if scheduler is not None else self.cache.scheduler
        if self._event is not None:
            self._event.cancel()
        self._event = scheduler.every(
            self.check_interval, self.check, name=f"supervisor:{self.cid}"
        )
        return self._event

    def stop(self):
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # ------------------------------------------------------------------
    def check(self):
        """One health probe: promote if the primary stalled too long."""
        agent = self.cache.agents.get(self.cid)
        if agent is None:
            return False
        idle = self.cache.clock.now() - agent.last_progress_at
        if idle <= self.stall_threshold:
            return False
        self.promote(
            reason=f"no propagation progress for {idle:g}s "
                   f"(threshold {self.stall_threshold:g}s)"
        )
        return True

    def promote(self, reason=""):
        """Replace the primary with a standby resumed from the checkpoint."""
        cache = self.cache
        old = cache.agents[self.cid]
        old.stop()
        # The standby tails the *same* replication source as the dead
        # primary (its partition's catalog and log, not necessarily the
        # whole back-end) and inherits its checkpoint identity.
        standby = DistributionAgent(
            old.region, old.backend_catalog, old.log,
            cache.catalog, cache.clock,
            registry=old.registry, checkpoints=old.checkpoints,
            shard_id=old.shard_id, checkpoint_key=old.checkpoint_key,
        )
        standby.adopt(old)
        checkpoint = standby.resume_from_checkpoint()
        # Catch the region up immediately, then resume the normal cadence.
        standby.propagate()
        standby.start(cache.scheduler, interval=old._interval)
        cache.agents[self.cid] = standby
        self.promotions += 1
        now = cache.clock.now()
        self.registry.counter(
            "replication_failovers_total", labels={"region": self.cid},
            help="standby agents promoted over stalled primaries",
        ).inc()
        self.registry.event(
            "failover",
            f"promoted standby agent for {self.cid}"
            + (f" on {self.node}" if self.node else "")
            + (f": {reason}" if reason else "")
            + (f" (resumed from txn {checkpoint.applied_txn})"
               if checkpoint is not None else " (no checkpoint; full replay)"),
            severity="warning", time=now, region=self.cid,
            node=self.node or "-",
            resumed_txn=checkpoint.applied_txn if checkpoint else 0,
        )
        return standby

    def __repr__(self):
        return (
            f"<AgentSupervisor region={self.cid} threshold="
            f"{self.stall_threshold:g}s promotions={self.promotions}>"
        )
