"""Durable resume cutoffs for distribution agents.

A :class:`CheckpointStore` models the one piece of agent state that
survives a process death: the ``(applied_txn, snapshot_time)`` cutoff the
agent had durably reached.  A restarted (or promoted standby) agent
resumes from the stored cutoff and replays the replication-log suffix;
because :meth:`DistributionAgent._apply` is idempotent, replaying a
prefix that was already applied — the cutoff necessarily lags anything a
crashed agent applied after its last checkpoint — is harmless.

The store is deliberately tiny: an in-memory dict standing in for a
fsync'd file per region.  What matters for the chaos harness is the
*lifetime*: the store is owned by the cache (the "disk"), not the agent
(the "process"), so agent failover and node restart see it.
"""

__all__ = ["Checkpoint", "CheckpointStore"]


class Checkpoint:
    """One region's durable resume cutoff."""

    __slots__ = ("cid", "applied_txn", "snapshot_time", "saved_at")

    def __init__(self, cid, applied_txn, snapshot_time, saved_at=None):
        self.cid = cid
        self.applied_txn = applied_txn
        self.snapshot_time = snapshot_time
        self.saved_at = saved_at

    def __repr__(self):
        return (
            f"Checkpoint({self.cid!r}, applied_txn={self.applied_txn}, "
            f"snapshot_time={self.snapshot_time:.3f})"
        )


class CheckpointStore:
    """cid -> :class:`Checkpoint`; survives agent and node "crashes"."""

    def __init__(self):
        self._data = {}
        #: Total saves, for tests asserting checkpoint cadence.
        self.saves = 0

    def save(self, cid, applied_txn, snapshot_time, saved_at=None):
        self._data[cid] = Checkpoint(cid, applied_txn, snapshot_time, saved_at)
        self.saves += 1
        return self._data[cid]

    def load(self, cid):
        """The region's checkpoint, or None if never saved."""
        return self._data.get(cid)

    def clear(self, cid=None):
        if cid is None:
            self._data.clear()
        else:
            self._data.pop(cid, None)

    def __contains__(self, cid):
        return cid in self._data

    def __len__(self):
        return len(self._data)

    def __repr__(self):
        return f"<CheckpointStore regions={sorted(self._data)}>"
