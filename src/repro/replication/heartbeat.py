"""The heartbeat mechanism (paper §3.1).

A global ``heartbeat`` table on the back-end holds one row per currency
region: ``(cid, ts)``.  At regular intervals each region's "heart beats" —
a stored-procedure-like job sets the row's timestamp to the current time
*through the transaction manager*, so heartbeat updates flow down the
replication log like any other update and are applied to the cache by the
region's distribution agent in commit order.

The replicated copy on the cache (one single-row table per region, named by
:func:`local_heartbeat_name`) therefore always carries a timestamp ``T``
such that **all** back-end updates up to ``T`` have been applied locally:
at wall-clock time ``t`` the region's data is guaranteed no more than
``t − T`` stale.  That difference is exactly what currency guards test.
"""

from repro.storage.schema import Column, DataType, Schema

#: Name of the global heartbeat table on the back-end.
HEARTBEAT_TABLE = "heartbeat"


def heartbeat_schema():
    """Schema shared by the global and local heartbeat tables."""
    return Schema(
        [
            Column("cid", DataType.STRING, nullable=False),
            Column("ts", DataType.FLOAT, nullable=False),
        ]
    )


def local_heartbeat_name(cid):
    """Name of the cache-local heartbeat table for region ``cid``."""
    return f"heartbeat_{cid}".lower()


class HeartbeatService:
    """Beats region rows in the back-end heartbeat table.

    Each region may beat at its own rate (the reason the paper prefers one
    row per region over a single shared row).
    """

    def __init__(self, txn_manager, clock, scheduler=None, registry=None):
        self.txn_manager = txn_manager
        self.clock = clock
        self.scheduler = scheduler
        self._events = {}
        #: Metrics registry (beat counters per region); duck-typed so the
        #: module stays import-light — defaults to a no-op shim.
        self.registry = registry

    def register_region(self, cid, beat_interval=2.0, start=True):
        """Create the region's heartbeat row and optionally start beating."""
        def _insert(txn):
            txn.insert(HEARTBEAT_TABLE, (cid, self.clock.now()))

        self.txn_manager.run(_insert)
        if start and self.scheduler is not None:
            self.start(cid, beat_interval)

    def start(self, cid, beat_interval):
        if cid in self._events:
            self._events[cid].cancel()
        self._events[cid] = self.scheduler.every(
            beat_interval, lambda: self.beat(cid), name=f"heartbeat:{cid}"
        )

    def stop(self, cid):
        event = self._events.pop(cid, None)
        if event is not None:
            event.cancel()

    def beat(self, cid):
        """Set the region's heartbeat timestamp to the current time."""
        now = self.clock.now()

        def _update(txn):
            txn.update(HEARTBEAT_TABLE, (cid,), (cid, now))

        self.txn_manager.run(_update)
        if self.registry is not None:
            self.registry.counter("heartbeat_beats_total", labels={"region": cid},
                                  help="heartbeat updates written on the back-end").inc()
