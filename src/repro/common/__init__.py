"""Shared infrastructure: errors, clocks, event scheduling and value types."""

from repro.common.clock import Clock, SimulatedClock, WallClock
from repro.common.errors import (
    CatalogError,
    ConsistencyError,
    CurrencyError,
    ExecutionError,
    OptimizerError,
    ParseError,
    ReplicationError,
    ReproError,
    StorageError,
    TransactionError,
)
from repro.common.scheduler import EventScheduler, ScheduledEvent

__all__ = [
    "CatalogError",
    "Clock",
    "ConsistencyError",
    "CurrencyError",
    "EventScheduler",
    "ExecutionError",
    "OptimizerError",
    "ParseError",
    "ReplicationError",
    "ReproError",
    "ScheduledEvent",
    "SimulatedClock",
    "StorageError",
    "TransactionError",
    "WallClock",
]
