"""A small discrete-event scheduler driving the simulated clock.

Distribution agents and heartbeat services register periodic events; tests
and benchmarks call :meth:`EventScheduler.run_until` to advance simulated
time, firing events in timestamp order.  Ties are broken by registration
order so runs are fully deterministic.
"""

import heapq
import itertools


class ScheduledEvent:
    """A one-shot or periodic callback scheduled on the simulator timeline."""

    __slots__ = ("time", "seq", "callback", "period", "cancelled", "name")

    def __init__(self, time, seq, callback, period=None, name=""):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.period = period
        self.cancelled = False
        self.name = name

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self):
        """Prevent any future firings of this event."""
        self.cancelled = True

    def __repr__(self):
        kind = "periodic" if self.period else "one-shot"
        return f"<ScheduledEvent {self.name or self.callback!r} {kind} t={self.time}>"


class EventScheduler:
    """Fires callbacks in simulated-time order against a SimulatedClock."""

    def __init__(self, clock):
        self.clock = clock
        self._heap = []
        self._counter = itertools.count()

    def at(self, when, callback, name=""):
        """Schedule ``callback`` to fire once at absolute time ``when``."""
        if when < self.clock.now():
            raise ValueError(f"cannot schedule in the past ({when} < {self.clock.now()})")
        event = ScheduledEvent(when, next(self._counter), callback, name=name)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay, callback, name=""):
        """Schedule ``callback`` to fire once ``delay`` seconds from now."""
        return self.at(self.clock.now() + delay, callback, name=name)

    def every(self, period, callback, start=None, name=""):
        """Schedule ``callback`` to fire every ``period`` seconds.

        The first firing is at ``start`` (absolute) if given, else one period
        from now.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        first = start if start is not None else self.clock.now() + period
        event = ScheduledEvent(first, next(self._counter), callback, period=period, name=name)
        heapq.heappush(self._heap, event)
        return event

    def run_until(self, t):
        """Fire all events with time <= ``t``, then set the clock to ``t``.

        Returns the number of callbacks fired.  Periodic events are
        rescheduled after each firing; callbacks may schedule further events.
        """
        fired = 0
        while self._heap and self._heap[0].time <= t:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.set(max(event.time, self.clock.now()))
            event.callback()
            fired += 1
            if event.period and not event.cancelled:
                event.time += event.period
                event.seq = next(self._counter)
                heapq.heappush(self._heap, event)
        self.clock.set(max(t, self.clock.now()))
        return fired

    def run_for(self, delta):
        """Advance simulated time by ``delta`` seconds, firing due events."""
        return self.run_until(self.clock.now() + delta)

    @property
    def pending(self):
        """Number of scheduled (non-cancelled) events still in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)
