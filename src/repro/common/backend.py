"""The storage-tier ``Backend`` protocol.

Everything above the storage tier — :class:`~repro.cache.mtcache.MTCache`,
the distribution agents, :class:`~repro.fleet.node.FleetNode`, the chaos
harness — consumes this surface instead of the concrete
:class:`~repro.cache.backend.BackendServer`, so a single-node back-end and
a hash-partitioned :class:`~repro.shard.ShardedBackend` are the same code
path.  The protocol is the union of what those consumers actually touch:

* **execution** — ``execute`` / ``execute_remote`` / ``estimate``;
* **DDL & statistics** — ``create_table`` / ``refresh_statistics``;
* **replication surface** — :meth:`Backend.replication_sources` enumerates
  the independent (catalog, log) pairs agents must tail: one for a single
  server, one *per partition* for a sharded deployment;
* **heartbeat surface** — ``backend.heartbeats.register_region`` /
  ``stop``, fanned out to every partition by sharded implementations;
* **topology** — ``partition_count`` / ``shard_of`` / ``partition_column``
  / ``describe_topology`` let the optimizer pin single-shard plans and let
  monitoring report the shard layout.

Shared attributes (``clock``, ``scheduler``, ``catalog``, ``cost_model``)
stay plain attributes; implementations set them in ``__init__``.
"""

import zlib

__all__ = [
    "Backend",
    "ReplicationSource",
    "stable_shard_hash",
]


def stable_shard_hash(value):
    """A deterministic 32-bit hash for partition routing.

    Python's builtin ``hash`` is salted per process for strings, which
    would scatter the same key to different shards across runs; routing
    must be stable so logs, benchmarks and equivalence tests replay
    identically.  Integers use a Knuth multiplicative mix (plain
    ``key % M`` would correlate with sequential key ranges); everything
    else hashes its ``repr`` bytes through CRC-32.
    """
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return (value * 0x9E3779B1) & 0xFFFFFFFF
    return zlib.crc32(repr(value).encode("utf-8")) & 0xFFFFFFFF


class ReplicationSource:
    """One independently replicated storage unit: a partition (or the
    whole back-end) with its own catalog and transaction log.

    Distribution agents tail exactly one source; a currency region on a
    sharded deployment therefore runs one agent *per source*, and the
    region's effective snapshot is the minimum over its sources.
    """

    __slots__ = ("shard_id", "name", "catalog", "log")

    def __init__(self, shard_id, name, catalog, log):
        #: None for an unsharded back-end; the partition index otherwise.
        self.shard_id = shard_id
        self.name = name
        self.catalog = catalog
        self.log = log

    def __repr__(self):
        return f"<ReplicationSource {self.name} shard={self.shard_id}>"


class Backend:
    """Abstract base of every storage back-end the cache tier can attach.

    Subclasses must provide the execution surface (:meth:`execute`,
    :meth:`execute_remote`, :meth:`estimate`, :meth:`create_table`,
    :meth:`refresh_statistics`, :meth:`run_for`) plus the shared
    attributes ``clock``, ``scheduler``, ``catalog``, ``cost_model`` and
    ``heartbeats``.  The topology methods below default to the
    single-node answers, so :class:`~repro.cache.backend.BackendServer`
    inherits them unchanged and only sharded implementations override.
    """

    # ------------------------------------------------------------------
    # Execution surface (must be provided by implementations)
    # ------------------------------------------------------------------
    def execute(self, sql_or_stmt, ctx=None):
        raise NotImplementedError

    def execute_remote(self, sql, shards=None):
        """Rows-only endpoint for the cache's RemoteQuery operators.

        ``shards`` is an optional pin: an iterable of partition indexes
        the statement is known to touch (the optimizer supplies it for
        single-shard point plans).  Unsharded back-ends ignore it.
        """
        raise NotImplementedError

    def estimate(self, select):
        raise NotImplementedError

    def create_table(self, sql_or_stmt):
        raise NotImplementedError

    def refresh_statistics(self, table_name=None):
        raise NotImplementedError

    def run_for(self, seconds):
        raise NotImplementedError

    def execute_dml(self, stmt):
        """Execute one DML statement and report its commit floor.

        Returns ``(rowcount, commits)`` where ``commits`` is a list of
        ``(source_name, txn_id)`` pairs — one per replication source the
        statement actually committed on, carrying the transaction id a
        read-your-writes session must see applied before a local replica
        of that source may serve its reads.

        The default implementation diffs each source's replication-log
        tail around :meth:`execute`, so it is shard-precise for free: on
        a sharded back-end only the partitions the DML touched grow new
        log records, and untouched partitions contribute no floor.
        """
        sources = self.replication_sources()
        before = [len(source.log.records) for source in sources]
        rowcount = self.execute(stmt)
        commits = []
        for source, n in zip(sources, before):
            records = source.log.records
            if len(records) > n:
                commits.append((source.name, records[-1].txn_id))
        return rowcount, commits

    # ------------------------------------------------------------------
    # Topology (single-node defaults)
    # ------------------------------------------------------------------
    @property
    def ddl_epoch(self):
        """Monotonic schema/statistics version: implementations bump it on
        every DDL and statistics refresh, so plan caches and snapshot
        stores can detect staleness without subscribing to DDL events.
        The protocol default (0, never moving) keeps duck-typed stubs
        working: their plans simply never expire by epoch."""
        return 0

    @property
    def partition_count(self):
        """Number of storage partitions (1 for a single server)."""
        return 1

    def replication_sources(self):
        """The (catalog, log) pairs distribution agents must tail."""
        return [
            ReplicationSource(None, "backend", self.catalog, self.txn_manager.log)
        ]

    def transaction_managers(self):
        """``(source_name, TransactionManager)`` per replication source —
        the commit points a history recorder observes.  Source names
        match :meth:`replication_sources` (and therefore the commit
        floors :meth:`execute_dml` reports)."""
        return [("backend", self.txn_manager)]

    def partition_column(self, table_name):
        """The column a table is hash-partitioned on (None: unpartitioned,
        all rows on one storage unit)."""
        return None

    def shard_of(self, table_name, key):
        """Partition index owning rows of ``table_name`` with the given
        partition-column value (None: the table is not partitioned)."""
        return None

    def shards_available(self, shards=None):
        """True when every partition in ``shards`` (all, if None) has a
        live primary serving reads and writes.  Single-node back-ends
        have no role machinery, so they are always available at this
        layer — network faults are modelled above, in the fleet shim."""
        return True

    def dml_shards(self, stmt):
        """Best-effort pin: the partitions a DML statement would run on,
        or None when unknown.  Lets the fleet scope write availability to
        the owning shard during a failover elsewhere."""
        return None

    def bulk_load(self, table_name, rows):
        """Load pre-built value tuples through the transaction manager
        (they still flow down the replication log, in one batch commit).
        Returns the number of rows loaded."""
        rows = [tuple(r) for r in rows]

        def _apply(txn):
            for row in rows:
                txn.insert(table_name, row)

        self.txn_manager.run(_apply)
        return len(rows)

    def describe_topology(self):
        """Monitoring snapshot of the storage layout (``status()`` /
        ``\\fleet`` render this)."""
        return {
            "kind": type(self).__name__,
            "partitions": self.partition_count,
            "tables": sorted(t.name for t in self.catalog.tables()),
            "shards": [
                {"shard": None, "epoch": 0, "primary": "up", "replicas": []}
            ],
        }
