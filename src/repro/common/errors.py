"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so applications can catch
everything raised by this package with a single ``except`` clause while still
being able to distinguish subsystems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParseError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed.

    Carries the approximate character position to help users locate the
    offending token.
    """

    def __init__(self, message, position=None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class CatalogError(ReproError):
    """Raised for unknown or duplicate tables, views, indexes or columns."""


class StorageError(ReproError):
    """Raised by the storage layer (bad rows, key violations, missing rows)."""


class TransactionError(ReproError):
    """Raised for illegal transaction state transitions."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution."""


class OptimizerError(ReproError):
    """Raised when no valid plan exists for a query.

    The most common cause is a consistency constraint that no combination of
    local views and remote queries can satisfy (which cannot happen when a
    back-end is reachable, since the back-end always satisfies the tightest
    constraint).
    """


class ConsistencyError(ReproError):
    """Raised when a delivered result would violate a consistency constraint."""


class CurrencyError(ReproError):
    """Raised when a currency bound cannot be met (e.g. no remote fallback)."""


class ReplicationError(ReproError):
    """Raised by the replication subsystem (bad subscriptions, regions)."""


class FleetStateError(ReproError):
    """Raised when a fleet operation is illegal in the current node
    lifecycle state (e.g. restarting a node that is not crashed, or
    routing a query when every node is crashed or draining)."""


class InvariantViolation(ReproError):
    """Raised (or collected) by the chaos harness when a delivered result
    or recovered state breaks a C&C guarantee.

    ``invariant`` is a short machine-readable tag (``"currency_bound"``,
    ``"single_snapshot"``, ``"convergence"``); ``attrs`` carries the
    structured evidence (node, view, bound, observed staleness, ...).
    """

    def __init__(self, invariant, message, **attrs):
        super().__init__(message)
        self.invariant = invariant
        self.attrs = attrs


class NetworkError(ReproError):
    """Raised when a simulated network call fails (drop, timeout, outage).

    ``reason`` is a short machine-readable tag: ``"drop"``, ``"timeout"``
    or ``"outage"`` — the fleet layer labels its retry metrics with it.
    """

    def __init__(self, message, reason="error"):
        super().__init__(message)
        self.reason = reason


class CircuitOpenError(NetworkError):
    """Raised when a node's circuit breaker refuses a back-end call.

    The breaker opens after repeated back-end failures; while open, remote
    calls fail fast instead of waiting out another timeout.
    """

    def __init__(self, message):
        super().__init__(message, reason="circuit_open")
