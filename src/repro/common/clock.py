"""Clock abstractions.

The paper's currency guarantees are all expressed in terms of elapsed wall
time (staleness bounds, propagation intervals, heartbeat timestamps).  To make
experiments deterministic we run the whole system — transaction commit
timestamps, distribution agents, heartbeats and the ``getdate()`` SQL function
— off a single :class:`Clock`.  Production code would use :class:`WallClock`;
tests and benchmarks use :class:`SimulatedClock`, advanced explicitly or by an
:class:`~repro.common.scheduler.EventScheduler`.
"""

import time


class Clock:
    """Abstract time source.  Times are floats in seconds."""

    def now(self):
        """Return the current time in seconds."""
        raise NotImplementedError


class WallClock(Clock):
    """Real time, via :func:`time.monotonic` offset to an epoch of zero."""

    def __init__(self):
        self._epoch = time.monotonic()

    def now(self):
        return time.monotonic() - self._epoch


class SimulatedClock(Clock):
    """A manually advanced clock for deterministic simulation.

    Time never moves backwards; :meth:`advance` with a negative delta raises
    ``ValueError``.
    """

    def __init__(self, start=0.0):
        self._now = float(start)

    def now(self):
        return self._now

    def advance(self, delta):
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot move time backwards (delta={delta})")
        self._now += delta
        return self._now

    def set(self, t):
        """Jump to absolute time ``t`` (must not be in the past)."""
        if t < self._now:
            raise ValueError(f"cannot move time backwards (now={self._now}, t={t})")
        self._now = float(t)
        return self._now
