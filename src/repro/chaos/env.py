"""Canned fleet environments for chaos runs (CLI, CI smoke, benchmarks).

One shared recipe so ``python -m repro.chaos``, the ``\\chaos`` shell
command, the determinism tests and the recovery benchmark all exercise
the same topology: a small back-end table, an N-node fleet with fast
agent cadence, short breaker cooldowns, warm-up windows, and stalled-
agent failover armed on every node.  The recipe is expressed as a
:class:`~repro.fleet.config.FleetConfig`, so the same entry points can
run it over a hash-partitioned back-end by passing ``partitions > 1``
(or a fully custom ``config``).
"""

from repro.fleet import FleetConfig
from repro.workloads.driver import point_lookup_factory
from repro.workloads.ledger import LedgerWorkload

__all__ = [
    "build_demo_fleet",
    "build_ledger_fleet",
    "default_point_lookup_factory",
]


def build_demo_fleet(n_nodes=3, n_rows=400, *, partitions=1, replicas=0,
                     config=None, policy="round_robin",
                     failover_threshold=2.5, warmup_seconds=1.0,
                     reset_timeout=0.5, record_history=False, **node_kwargs):
    """A ready-to-break fleet: region ``r`` + view ``profile_copy``.

    Fast knobs relative to the fleet benchmarks — 1 s agent cadence,
    0.5 s heartbeats, 0.5 s breaker cooldown — so a 60 s chaos schedule
    sees many propagation cycles, and a 2.5 s stall already counts as a
    dead agent.  ``partitions > 1`` shards the back-end; passing a
    ``config`` overrides the topology knobs entirely (its ``node_kwargs``
    still gain the demo's fast failover defaults unless it sets them).
    ``record_history=True`` attaches a shared
    :class:`~repro.history.recorder.HistoryRecorder` so the run can be
    certified afterwards.
    """
    if config is None:
        config = FleetConfig(
            nodes=n_nodes, partitions=partitions, replicas=replicas,
            policy=policy, reset_timeout=reset_timeout,
            record_history=record_history,
        )
    elif record_history:
        config.record_history = True
    defaults = {
        "warmup_seconds": warmup_seconds,
        "failover_threshold": failover_threshold,
        **node_kwargs,
    }
    config.node_kwargs = {**defaults, **config.node_kwargs}
    fleet = config.build()
    backend = fleet.backend
    backend.create_table(
        "CREATE TABLE profile (id INT NOT NULL, score INT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    for start in range(0, n_rows, 100):
        chunk = min(100, n_rows - start)
        values = ", ".join(
            f"({i}, {i % 100})" for i in range(start, start + chunk)
        )
        backend.execute(f"INSERT INTO profile VALUES {values}")
    backend.refresh_statistics()
    fleet.create_region("r", 1.0, 0.25, heartbeat_interval=0.5)
    fleet.create_matview("profile_copy", "profile", ["id", "score"], region="r")
    fleet.run_for(3.0)
    return fleet


def build_ledger_fleet(n_nodes=3, *, partitions=1, replicas=0, config=None,
                       policy="round_robin", failover_threshold=2.5,
                       warmup_seconds=1.0, reset_timeout=0.5,
                       n_accounts=64, write_rate=0.1, workload_seed=7,
                       record_history=False, **node_kwargs):
    """A fleet plus an installed double-entry ledger workload.

    Same fast fault-tolerance knobs as :func:`build_demo_fleet`, but the
    schema is the ledger's (strict ``ledger`` + relaxed ``accounts``)
    and the returned :class:`~repro.workloads.ledger.LedgerWorkload`
    carries the writing session.  Returns ``(fleet, workload)``; pass
    the workload to :meth:`ChaosScheduler.run(workload=...)
    <repro.chaos.scheduler.ChaosScheduler.run>`.
    """
    if config is None:
        config = FleetConfig(
            nodes=n_nodes, partitions=partitions, replicas=replicas,
            policy=policy, reset_timeout=reset_timeout,
            record_history=record_history,
        )
    elif record_history:
        config.record_history = True
    defaults = {
        "warmup_seconds": warmup_seconds,
        "failover_threshold": failover_threshold,
        **node_kwargs,
    }
    config.node_kwargs = {**defaults, **config.node_kwargs}
    fleet = config.build()
    workload = LedgerWorkload(
        fleet, n_accounts=n_accounts, seed=workload_seed,
        write_rate=write_rate,
    ).install()
    fleet.run_for(3.0)
    return fleet, workload


def default_point_lookup_factory(fleet):
    """Guarded point lookups against the fleet's first materialized view,
    with the key range read off the backing base table (unioned over the
    back-end's partitions when sharded)."""
    node = fleet.nodes[0]
    views = node.catalog.matviews()
    if not views:
        raise ValueError("fleet has no materialized views to query")
    view = views[0]
    keys = []
    pk = None
    for source in node.backend.replication_sources():
        entry = source.catalog.table(view.base_table)
        pk = entry.table.primary_key[0]
        position = entry.table.schema.index_of(pk)
        keys.extend(values[position] for _, values in entry.table.scan())
    lo, hi = (min(keys), max(keys)) if keys else (0, 0)
    return point_lookup_factory(view.base_table, pk, (lo, hi),
                                alias=view.base_table[0])
