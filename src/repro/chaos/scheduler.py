"""Seed-deterministic chaos schedules over a cache fleet.

:class:`ChaosScheduler` composes fault injections — node crashes (with
scheduled restarts), back-end outages, node partitions, agent stalls —
into a schedule on the *simulated* clock, drives a
:class:`~repro.workloads.driver.WorkloadDriver` workload through the
fault window, audits every delivered result with an
:class:`~repro.chaos.invariants.InvariantChecker`, and finishes with a
recovery pass (clear faults, restart what is still down, catch every
agent up, check convergence).

Everything is seeded: the fault placement (``seed``), the network's
drop coin-flips, and the workload's query/think-time sampling all come
from seeded generators running on simulated time — so one seed is one
exact history.  :meth:`ChaosReport.history_lines` renders that history
from the fleet's event log using simulated timestamps only; two runs
with the same seed must produce byte-identical lines, which is exactly
what the CI chaos-smoke job diffs.
"""

import random

from repro.chaos.invariants import InvariantChecker
from repro.fleet.node import NodeLifecycle
from repro.workloads.driver import WorkloadDriver

__all__ = ["ChaosReport", "ChaosScheduler", "HISTORY_KINDS"]

#: Event kinds that make up a chaos run's canonical history.  All are
#: recorded with simulated timestamps into the *fleet* registry's event
#: log (per-node guard/replication chatter stays in the node registries,
#: so the 256-entry fleet ring comfortably holds a whole run).
HISTORY_KINDS = frozenset({
    "outage", "partition", "agent_stall", "lifecycle",
    "failover", "breaker", "invariant", "certify",
    "backend_crash", "promotion",
})


class ChaosReport:
    """Everything one chaos run produced, with sim-time accounting."""

    def __init__(self, *, seed, duration, start, end, fleet, driver_report,
                 outcomes, checker, faults, fault_windows,
                 workload_summary=None, certification=None):
        self.seed = seed
        self.duration = duration
        self.start = start
        self.end = end
        self.fleet = fleet
        self.report = driver_report
        #: ``(sim_time, status)`` per query, status in
        #: ``{"fresh", "degraded", "error"}``.
        self.outcomes = outcomes
        self.checker = checker
        self.violations = checker.violations
        self.faults = faults
        #: ``(start, end)`` sim intervals during which a fault was live
        #: (``end=None``: until the run ended).
        self.fault_windows = fault_windows
        #: The workload's own deterministic summary (ledger transfers,
        #: routing split, ...) when the run drove one; None otherwise.
        self.workload_summary = workload_summary
        #: :meth:`~repro.history.certify.CertificationReport.summary` of
        #: the run's recorded history, when the fleet recorded one.
        self.certification = certification

    # ------------------------------------------------------------------
    def history_lines(self):
        """The run's fault/recovery history, one deterministic line per
        event — simulated timestamps only, never wall clock."""
        events = [
            e for e in self.fleet.metrics.events
            if e.kind in HISTORY_KINDS
        ]
        return [
            f"t={e.time:g} [{e.severity}] {e.kind}: {e.message}"
            for e in events
        ]

    def recoveries(self):
        """Per completed crash→up cycle: ``(node, crashed_at, up_at,
        recovery_seconds)``, from the lifecycle events."""
        pending = {}
        out = []
        for event in self.fleet.metrics.events:
            if event.kind != "lifecycle":
                continue
            node = event.attrs.get("node")
            state = event.attrs.get("state")
            if state == "crashed":
                pending[node] = event.time
            elif state == "up" and node in pending:
                crashed_at = pending.pop(node)
                out.append((node, crashed_at, event.time,
                            event.time - crashed_at))
        return out

    def promotions(self):
        """Per completed primary-crash→promotion cycle: ``(shard,
        crashed_at, promoted_at, failover_seconds, epoch)`` — the
        back-end tier's counterpart of :meth:`recoveries`."""
        pending = {}
        out = []
        for event in self.fleet.metrics.events:
            if event.kind == "backend_crash" and event.severity == "error":
                pending[event.attrs.get("shard")] = event.time
            elif event.kind == "promotion":
                shard = event.attrs.get("shard")
                if shard in pending:
                    crashed_at = pending.pop(shard)
                    out.append((shard, crashed_at, event.time,
                                event.time - crashed_at,
                                event.attrs.get("epoch")))
        return out

    def served_fraction(self, windows=None):
        """Fraction of queries inside the fault windows that were served —
        fresh or *explicitly* degraded — rather than erroring.  1.0 when
        no query landed inside a window."""
        windows = self.fault_windows if windows is None else windows
        resolved = [
            (start, self.end if end is None else end)
            for start, end in windows
        ]
        total = ok = 0
        for when, status in self.outcomes:
            if not any(start <= when <= end for start, end in resolved):
                continue
            total += 1
            if status != "error":
                ok += 1
        return ok / total if total else 1.0

    def summary(self):
        """Deterministic scalar summary (safe to print / diff / JSON)."""
        counts = {}
        for _, status in self.outcomes:
            counts[status] = counts.get(status, 0) + 1
        out = {
            "seed": self.seed,
            "duration_s": self.duration,
            "queries": self.report.queries + self.report.errors,
            "outcomes": dict(sorted(counts.items())),
            "errors": self.report.errors,
            "faults_injected": len(self.faults),
            "invariant_violations": len(self.violations),
            "invariant_violations_by_check": self._violations_by_check(),
            "results_checked": self.checker.results_checked,
            "views_checked": self.checker.views_checked,
            "recoveries": [
                {"node": node, "crashed_at": round(crashed, 6),
                 "up_at": round(up, 6), "seconds": round(delta, 6)}
                for node, crashed, up, delta in self.recoveries()
            ],
            "promotions": [
                {"shard": shard, "crashed_at": round(crashed, 6),
                 "promoted_at": round(up, 6), "seconds": round(delta, 6),
                 "epoch": epoch}
                for shard, crashed, up, delta, epoch in self.promotions()
            ],
            "served_ok_fraction_in_fault_windows":
                round(self.served_fraction(), 6),
        }
        if getattr(self.checker, "replicas_checked", 0):
            out["replicas_checked"] = self.checker.replicas_checked
        ryw_checked = getattr(self.checker, "ryw_checked", 0)
        if ryw_checked:
            out["read_your_writes"] = {
                "checked": ryw_checked,
                "satisfied": self.checker.ryw_satisfied,
                "excused_degraded": self.checker.ryw_excused,
            }
        if self.workload_summary is not None:
            out["workload"] = self.workload_summary
        if self.certification is not None:
            out["certification"] = self.certification
        return out

    def _violations_by_check(self):
        """Violation counts grouped by the invariant that fired, sorted
        by check name — ``{}`` on a clean run."""
        by_check = {}
        for violation in self.violations:
            name = getattr(violation, "invariant", None) or "unknown"
            by_check[name] = by_check.get(name, 0) + 1
        return dict(sorted(by_check.items()))

    def __repr__(self):
        return (
            f"<ChaosReport seed={self.seed} faults={len(self.faults)} "
            f"violations={len(self.violations)}>"
        )


class ChaosScheduler:
    """Builds and runs one seeded fault schedule against a fleet."""

    def __init__(self, fleet, seed=0):
        self.fleet = fleet
        self.seed = seed
        self.rng = random.Random(seed)
        self.faults = []  # descriptions, in injection order
        self.fault_windows = []  # (abs start, abs end | None)

    # ------------------------------------------------------------------
    # Schedule construction (offsets are relative to "now")
    # ------------------------------------------------------------------
    def crash(self, node, at, restart_after=None):
        """Crash ``node`` ``at`` seconds from now; optionally restart it
        ``restart_after`` seconds after the crash."""
        scheduler = self.fleet.backend.scheduler
        when = self.fleet.clock.now() + at
        target = self.fleet.node(node)

        def do_crash():
            if target.lifecycle is not NodeLifecycle.CRASHED:
                target.crash()

        scheduler.at(when, do_crash, name=f"chaos:crash:{node}")
        if restart_after is not None:
            def do_restart():
                if target.lifecycle is NodeLifecycle.CRASHED:
                    target.restart()

            scheduler.at(when + restart_after, do_restart,
                         name=f"chaos:restart:{node}")
        self.faults.append({
            "kind": "crash", "node": node, "at": when,
            "restart_after": restart_after,
        })
        self.fault_windows.append(
            (when, when + restart_after if restart_after is not None else None)
        )
        return when

    def outage(self, at, duration):
        """Back-end outage for every node, ``at`` seconds from now."""
        when = self.fleet.clock.now() + at
        self.fleet.network.inject_outage(duration, start=when)
        self.faults.append({
            "kind": "outage", "at": when, "duration": duration,
        })
        self.fault_windows.append((when, when + duration))
        return when

    def partition(self, node, at, duration):
        """Cut one node's back-end link, ``at`` seconds from now."""
        when = self.fleet.clock.now() + at
        self.fleet.network.partition(node, duration, start=when)
        self.faults.append({
            "kind": "partition", "node": node, "at": when,
            "duration": duration,
        })
        self.fault_windows.append((when, when + duration))
        return when

    def stall(self, at, duration, node=None):
        """Stall distribution agents (all nodes, or one) — long stalls
        trip the supervisors' standby promotion."""
        when = self.fleet.clock.now() + at
        self.fleet.network.stall_agents(duration, start=when, node=node)
        self.faults.append({
            "kind": "stall", "node": node, "at": when, "duration": duration,
        })
        self.fault_windows.append((when, when + duration))
        return when

    def shard_outage(self, shard, at, duration):
        """Take one back-end partition dark, ``at`` seconds from now.

        Remote queries pinned to other shards keep flowing; only calls
        that touch ``shard`` (or that declare no shard set) fail during
        the window — the failure mode unique to a sharded back-end.
        """
        when = self.fleet.clock.now() + at
        self.fleet.network.inject_outage(duration, start=when, shard=shard)
        self.faults.append({
            "kind": "shard_outage", "shard": shard, "at": when,
            "duration": duration,
        })
        self.fault_windows.append((when, when + duration))
        return when

    def backend_crash(self, shard, at):
        """Crash one back-end shard primary ``at`` seconds from now.

        With replicas configured, the backend's failure detector promotes
        the freshest standby once the heartbeat silence exceeds its
        timeout; the fault window closes at that promotion (a promotion
        listener patches it), or stays open until recovery for a
        replica-less shard.
        """
        backend = self.fleet.backend
        when = self.fleet.clock.now() + at
        window = [when, None]

        def close(info, shard=shard % backend.partition_count):
            if info["shard"] == shard and window[1] is None:
                window[1] = info["time"]

        backend.add_promotion_listener(close)

        def do_crash():
            if not backend.shard_is_down(shard):
                backend.crash_primary(shard)

        backend.scheduler.at(when, do_crash, name=f"chaos:backend_crash:p{shard}")
        self.faults.append({"kind": "backend_crash", "shard": shard, "at": when})
        self.fault_windows.append(window)
        return when

    def random_schedule(self, duration, *, n_crashes=2, n_outages=1,
                        n_partitions=1, n_stalls=1, n_shard_outages=1,
                        n_backend_crashes=1):
        """Place a full fault mix inside ``duration`` from the seeded rng.

        Crashes restart while the run is still going; stalls are sized to
        outlast the nodes' failover thresholds so supervisors promote.
        Shard outages are only placed over a sharded back-end — and draw
        nothing from the rng otherwise, so adding partitions never
        perturbs the schedule of an unsharded run with the same seed.
        """
        rng = self.rng
        names = [n.name for n in self.fleet.nodes]
        crash_nodes = (
            rng.sample(names, n_crashes) if n_crashes <= len(names)
            else [rng.choice(names) for _ in range(n_crashes)]
        )
        for node in crash_nodes:
            at = rng.uniform(0.1, 0.45) * duration
            restart_after = rng.uniform(0.08, 0.18) * duration
            self.crash(node, at, restart_after=restart_after)
        for _ in range(n_outages):
            self.outage(rng.uniform(0.5, 0.7) * duration,
                        rng.uniform(0.05, 0.12) * duration)
        for _ in range(n_partitions):
            self.partition(rng.choice(names),
                           rng.uniform(0.25, 0.5) * duration,
                           rng.uniform(0.08, 0.15) * duration)
        for _ in range(n_stalls):
            self.stall(rng.uniform(0.1, 0.3) * duration,
                       rng.uniform(0.2, 0.3) * duration)
        partitions = getattr(self.fleet.backend, "partition_count", 1)
        if partitions > 1:
            for _ in range(n_shard_outages):
                self.shard_outage(rng.randrange(partitions),
                                  rng.uniform(0.55, 0.75) * duration,
                                  rng.uniform(0.05, 0.1) * duration)
        # Primary crashes only make sense with standbys to promote — and,
        # like shard outages, draw nothing from the rng otherwise, so
        # turning replicas on/off never perturbs the rest of the schedule.
        if getattr(self.fleet.backend, "replica_count", 0) > 0:
            for _ in range(n_backend_crashes):
                self.backend_crash(rng.randrange(partitions),
                                   rng.uniform(0.3, 0.5) * duration)
        return self.faults

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration, factory=None, *, bounds=(0.0, 2.0, 600.0),
            think_time=0.2, checker=None, settle=None, workload=None):
        """Drive the workload through the schedule, then recover + audit.

        ``duration`` simulated seconds of mixed-bound workload (mean
        ``think_time`` between queries); every delivered result is
        audited by ``checker`` (default: a fresh collecting
        :class:`InvariantChecker`).  After the window: faults are
        cleared, still-crashed nodes restarted, every agent is caught up
        to "now", and convergence is checked.  Returns a
        :class:`ChaosReport`.

        Pass ``workload`` (e.g. an installed
        :class:`~repro.workloads.ledger.LedgerWorkload`) to drive a
        stateful mixed read/write stream instead of the stateless
        ``factory``: the workload gets the same per-result hooks and the
        checker (for read-your-writes audits), and its own
        post-recovery ``audit`` (balance conservation) runs before the
        convergence check; its ``summary()`` lands in the report.
        """
        fleet = self.fleet
        clock = fleet.clock
        checker = checker if checker is not None else InvariantChecker(fleet)
        start = clock.now()
        end = start + duration
        outcomes = []

        def on_result(bound, result):
            status = "degraded" if result.warnings else "fresh"
            outcomes.append((clock.now(), status))
            checker.check_result(result, bound)

        def on_error(bound, exc):
            outcomes.append((clock.now(), "error"))

        if workload is not None:
            report = workload.drive(
                duration, think_time=think_time, raise_errors=False,
                on_result=on_result, on_error=on_error, checker=checker,
            )
        else:
            if factory is None:
                from repro.chaos.env import default_point_lookup_factory
                factory = default_point_lookup_factory(fleet)
            driver = WorkloadDriver(fleet, seed=self.seed + 1000)
            n_queries = max(1, int(duration / think_time)) if think_time else 1
            report = driver.run(
                factory, list(bounds), n_queries, think_time=think_time,
                raise_errors=False, on_result=on_result, on_error=on_error,
            )
        if clock.now() < end:
            fleet.run_for(end - clock.now())

        self._recover(settle=settle)
        if workload is not None and hasattr(workload, "audit"):
            workload.audit(checker)
        checker.check_convergence()
        certification = self._certify()
        return ChaosReport(
            seed=self.seed, duration=duration, start=start, end=clock.now(),
            fleet=fleet, driver_report=report, outcomes=outcomes,
            checker=checker, faults=list(self.faults),
            fault_windows=list(self.fault_windows),
            workload_summary=(
                workload.summary()
                if workload is not None and hasattr(workload, "summary")
                else None
            ),
            certification=certification,
        )

    def _certify(self):
        """Certify the recorded history (when the fleet recorded one)
        against the paper's formal semantics, log the verdict as a
        ``certify`` fleet event, and return the summary dict."""
        recorder = getattr(self.fleet, "history", None)
        if recorder is None:
            return None
        from repro.history.certify import ConsistencyCertifier

        history = recorder.history
        certification = ConsistencyCertifier(history).certify()
        anomalies = len(certification.anomalies)
        self.fleet.metrics.events.record(
            "certify",
            f"certified {len(history)} history records: "
            f"{anomalies} anomalies",
            severity="error" if anomalies else "info",
            time=self.fleet.clock.now(),
            anomalies=anomalies,
            records=len(history),
        )
        return certification.summary()

    def _recover(self, settle=None):
        """Clear faults, restart the dead, catch every agent up to now."""
        fleet = self.fleet
        fleet.network.clear_faults()
        backend = fleet.backend
        if hasattr(backend, "ensure_primaries"):
            # Promote any shard still fenced at run end (chaos recovery
            # must not wait out the failure detector).
            backend.ensure_primaries()
        for node in fleet.nodes:
            if node.lifecycle is NodeLifecycle.CRASHED:
                node.restart()
        if settle is None:
            settle = max(node.warmup_seconds for node in fleet.nodes) + 0.5
        fleet.run_for(settle)
        now = fleet.clock.now()
        for node in fleet.nodes:
            for agent in node.agents.values():
                agent.propagate(cutoff=now)
        if hasattr(backend, "catchup_replicas"):
            backend.catchup_replicas()

    def __repr__(self):
        return f"<ChaosScheduler seed={self.seed} faults={len(self.faults)}>"
