"""Run one seeded chaos schedule from the shell.

    python -m repro.chaos --seed 11 --duration 60
    python -m repro.chaos --workload ledger --seed 23 --duration 45

Prints the run's fault/recovery history (simulated timestamps only) and
a deterministic JSON summary — the same seed must print the same bytes,
which is what the CI chaos-smoke job verifies by diffing two runs.  The
``ledger`` workload replaces the read-only point lookups with the mixed
read/write double-entry stream, adding the read-your-writes and
balance-conservation audits to the invariant set.
"""

import argparse
import json
import sys

from repro.chaos.env import build_demo_fleet, build_ledger_fleet
from repro.chaos.scheduler import ChaosScheduler


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded chaos schedule against a demo cache fleet",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds of workload under faults")
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--partitions", type=int, default=1,
                        help="back-end shard count (1 = single server)")
    parser.add_argument("--workload", choices=("lookup", "ledger"),
                        default="lookup",
                        help="read-only point lookups (default) or the "
                             "mixed read/write double-entry ledger")
    args = parser.parse_args(argv)

    workload = None
    if args.workload == "ledger":
        fleet, workload = build_ledger_fleet(
            n_nodes=args.nodes, partitions=args.partitions,
        )
    else:
        fleet = build_demo_fleet(n_nodes=args.nodes, partitions=args.partitions)
    chaos = ChaosScheduler(fleet, seed=args.seed)
    chaos.random_schedule(args.duration)
    report = chaos.run(args.duration, workload=workload)

    print(f"# chaos seed={args.seed} duration={args.duration:g}s "
          f"nodes={args.nodes} partitions={args.partitions} "
          f"workload={args.workload}")
    for line in report.history_lines():
        print(line)
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    return 1 if report.violations else 0


if __name__ == "__main__":
    sys.exit(main())
