"""Run one seeded chaos schedule from the shell.

    python -m repro.chaos --seed 11 --duration 60
    python -m repro.chaos --workload ledger --seed 23 --duration 45
    python -m repro.chaos --fault backend_crash

Prints the run's fault/recovery history (simulated timestamps only) and
a deterministic JSON summary — the same seed must print the same bytes,
which is what the CI chaos-smoke job verifies by diffing two runs.  The
``ledger`` workload replaces the read-only point lookups with the mixed
read/write double-entry stream, adding the read-your-writes and
balance-conservation audits to the invariant set.

``--fault backend_crash`` scripts the shard-failover scenario instead of
the random mix: one back-end shard primary crashes mid-workload, the
failure detector promotes its freshest replica, and the run records +
certifies its full history — the exit code also fails on certification
anomalies, which is what the CI failover-chaos job gates on.
"""

import argparse
import json
import sys

from repro.chaos.env import build_demo_fleet, build_ledger_fleet
from repro.chaos.scheduler import ChaosScheduler


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded chaos schedule against a demo cache fleet",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds of workload under faults")
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--partitions", type=int, default=1,
                        help="back-end shard count (1 = single server)")
    parser.add_argument("--replicas", type=int, default=None,
                        help="log-shipping standbys per shard (default 0; "
                             "1 under --fault backend_crash)")
    parser.add_argument("--workload", choices=("lookup", "ledger"),
                        default="lookup",
                        help="read-only point lookups (default) or the "
                             "mixed read/write double-entry ledger")
    parser.add_argument("--fault", choices=("random", "backend_crash"),
                        default="random",
                        help="the seeded random fault mix (default), or a "
                             "scripted shard-primary crash with replica "
                             "promotion (records + certifies the history)")
    args = parser.parse_args(argv)

    failover = args.fault == "backend_crash"
    replicas = args.replicas
    if replicas is None:
        replicas = 1 if failover else 0
    if failover and replicas < 1:
        parser.error("--fault backend_crash needs --replicas >= 1")

    build_kwargs = {
        "n_nodes": args.nodes, "partitions": args.partitions,
        "replicas": replicas, "record_history": failover,
    }
    workload = None
    if args.workload == "ledger":
        fleet, workload = build_ledger_fleet(**build_kwargs)
    else:
        fleet = build_demo_fleet(**build_kwargs)
    chaos = ChaosScheduler(fleet, seed=args.seed)
    if failover:
        # One scripted primary crash mid-workload: the shard is seeded,
        # the crash lands at 35% of the run, and the failure detector
        # does the rest.  No other faults, so the served fraction and
        # the certification verdict isolate the failover machinery.
        shard = args.seed % fleet.backend.partition_count
        chaos.backend_crash(shard, 0.35 * args.duration)
    else:
        chaos.random_schedule(args.duration)
    report = chaos.run(args.duration, workload=workload)

    print(f"# chaos seed={args.seed} duration={args.duration:g}s "
          f"nodes={args.nodes} partitions={args.partitions} "
          f"replicas={replicas} workload={args.workload} fault={args.fault}")
    for line in report.history_lines():
        print(line)
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    anomalies = (report.certification or {}).get("anomalies", 0)
    return 1 if (report.violations or anomalies) else 0


if __name__ == "__main__":
    sys.exit(main())
