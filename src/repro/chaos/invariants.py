"""C&C invariant checking for chaos runs.

The whole point of relaxed currency is that relaxation is *declared*:
a query may see stale data, but never staler than its ``CURRENCY
BOUND`` — unless the system says so out loud (the degraded serve-stale
warning).  :class:`InvariantChecker` audits every delivered
:class:`~repro.engine.executor.QueryResult` against that contract while
faults rain down, and audits the recovered caches against the back-end
once the dust settles:

* **currency_bound** — the delivered staleness (``now − snapshot``) of
  every local view read must be within the declared bound, unless the
  result carries an explicit degraded warning;
* **single_snapshot** — all rows of one result must come from one
  snapshot (the harness drives single-class queries, where Guarantee 2
  of §2.4 collapses to "one snapshot per result");
* **convergence** — after recovery (faults cleared, crashed nodes
  restarted, agents caught up) every live node's views must match the
  back-end's current base-table state exactly;
* **read_your_writes** — a session re-reading a transfer it committed
  must see every leg of it, unless the result is explicitly degraded
  (:meth:`InvariantChecker.check_ryw`, driven by the ledger workload);
* **balance_conservation** — double-entry deltas must sum to zero on
  the back-end, with exactly two legs per committed transfer
  (:meth:`InvariantChecker.check_ledger_conservation`).

Violations become structured
:class:`~repro.common.errors.InvariantViolation` records: collected on
the checker (the default — a chaos run wants the full list, not the
first), mirrored into the fleet's event log and a
``chaos_invariant_violations_total`` counter, and raised immediately
when ``raise_on_violation=True``.
"""

from repro.common.errors import InvariantViolation
from repro.replication.agent import _ViewSubscription

__all__ = ["InvariantChecker"]

#: Tolerance (simulated seconds) on the currency-bound comparison, so a
#: guard decision and the audit taken at the same instant never disagree
#: over float round-off.
_SLACK = 1e-6


class InvariantChecker:
    """Audits query results and recovered state against C&C guarantees."""

    def __init__(self, fleet, *, slack=_SLACK, raise_on_violation=False):
        self.fleet = fleet
        self.slack = slack
        self.raise_on_violation = raise_on_violation
        self.violations = []
        self.results_checked = 0
        self.views_checked = 0
        self.replicas_checked = 0
        #: Read-your-writes audit counters (fed by :meth:`check_ryw`):
        #: 100% satisfaction = checked == satisfied + excused and no
        #: ``read_your_writes`` violations recorded.
        self.ryw_checked = 0
        self.ryw_satisfied = 0
        self.ryw_excused = 0

    # ------------------------------------------------------------------
    # Per-result audit (driven from the workload hooks)
    # ------------------------------------------------------------------
    def check_result(self, result, bound, now=None):
        """Audit one delivered result against its declared bound.

        Returns the violations found for this result (empty = clean).

        A scatter-gathered result (``result.shard_results``) is audited
        leg by leg: each single-shard leg must satisfy the bound and the
        one-snapshot rule on its own, while the merged row set is allowed
        to mix per-shard snapshots — that is exactly the per-shard C&C
        rule (the merged result is as current as its stalest leg, which
        the worst leg's own bound check already covers).
        """
        sub_results = getattr(result, "shard_results", None)
        if sub_results:
            found = []
            for sub in sub_results:
                found.extend(self.check_result(sub, bound, now=now))
            return found
        self.results_checked += 1
        now = self.fleet.clock.now() if now is None else now
        found = []
        snapshots = result.context.snapshots_used if result.context else []
        node = getattr(result, "node", "-")
        if bound is not None and bound != float("inf") and snapshots:
            worst = min(snapshots)
            staleness = now - worst
            if staleness > bound + self.slack and not result.warnings:
                found.append(self._record(
                    "currency_bound",
                    f"result from {node} is {staleness:g}s stale, beyond its "
                    f"{bound:g}s bound, with no degraded warning",
                    node=node, bound=bound, staleness=staleness,
                    snapshot=worst, time=now,
                ))
        distinct = sorted(set(snapshots))
        if len(distinct) > 1:
            found.append(self._record(
                "single_snapshot",
                f"result from {node} mixes {len(distinct)} snapshots: "
                f"{distinct}",
                node=node, snapshots=distinct, time=now,
            ))
        return found

    def check_ryw(self, result, expected_rows, tid=None, now=None):
        """Read-your-writes audit: a session re-reading a transfer it
        committed must see every leg of it.

        The session's commit floor makes this a *guarantee*, not a
        probability: either the strict-table guard verified the local
        replica had applied the session's own transaction, or it fell
        back to the back-end (which trivially has it).  The one excuse is
        an explicitly degraded result (``result.warnings``) — a node that
        cannot reach the back-end during an outage serves stale *and says
        so*, the same trade the currency audit honors.
        """
        self.ryw_checked += 1
        rows = getattr(result, "rows", None) or []
        if len(rows) >= expected_rows:
            self.ryw_satisfied += 1
            return []
        if result.warnings:
            self.ryw_excused += 1
            return []
        node = getattr(result, "node", "-")
        now = self.fleet.clock.now() if now is None else now
        return [self._record(
            "read_your_writes",
            f"session re-read of transfer {tid} from {node} returned "
            f"{len(rows)} of {expected_rows} legs with no degraded warning",
            node=node, tid=tid, rows=len(rows),
            expected_rows=expected_rows, time=now,
        )]

    # ------------------------------------------------------------------
    # Post-recovery audit
    # ------------------------------------------------------------------
    def check_ledger_conservation(self, table="ledger", delta_column="delta",
                                  expected_rows=None):
        """Balance conservation: the double-entry deltas on the back-end
        must sum to exactly zero, and (when the workload reports how many
        transfers it committed) the table must hold exactly two legs per
        transfer — a transfer is one atomic transaction, so no fault may
        ever persist half of one.  Sums over every replication source, so
        a sharded back-end is audited across all partitions.
        """
        found = []
        total = 0
        count = 0
        for source in self.fleet.backend.replication_sources():
            entry = source.catalog.table(table)
            column = entry.schema.names().index(delta_column)
            for _, values in entry.table.scan():
                total += values[column]
                count += 1
        now = self.fleet.clock.now()
        if total != 0:
            found.append(self._record(
                "balance_conservation",
                f"{table} deltas sum to {total}, not 0 — money was created "
                "or destroyed",
                table=table, total=total, rows=count, time=now,
            ))
        if expected_rows is not None and count != expected_rows:
            found.append(self._record(
                "balance_conservation",
                f"{table} holds {count} legs for {expected_rows} expected — "
                "a transfer was torn or double-applied",
                table=table, rows=count, expected_rows=expected_rows,
                time=now,
            ))
        return found

    def check_convergence(self):
        """After recovery, every live node's views must equal the back-end.

        Call once faults are cleared, crashed nodes restarted, and every
        agent has propagated through "now".  Compares each materialized
        view row-for-row against the projected + filtered base table.
        Returns the violations found.
        """
        found = []
        for node in self.fleet.nodes:
            if not node.accepting:
                continue
            for view in node.catalog.matviews():
                self.views_checked += 1
                # Union the expected rows over every replicated partition:
                # one source on a single server, one per shard on a
                # sharded back-end (each holds a disjoint row subset).
                expected = []
                for source in node.backend.replication_sources():
                    base_entry = source.catalog.table(view.base_table)
                    sub = _ViewSubscription(view, base_entry.table)
                    expected.extend(
                        tuple(sub.project(values))
                        for _, values in base_entry.table.scan()
                        if sub.satisfies(values)
                    )
                expected.sort()
                actual = sorted(
                    tuple(values) for _, values in view.table.scan()
                )
                if expected != actual:
                    missing = len([r for r in expected if r not in set(actual)])
                    extra = len([r for r in actual if r not in set(expected)])
                    found.append(self._record(
                        "convergence",
                        f"{view.name} on {node.name} diverged from "
                        f"{view.base_table}: {len(actual)} local rows vs "
                        f"{len(expected)} expected "
                        f"({missing} missing, {extra} extra/changed)",
                        node=node.name, view=view.name,
                        base_table=view.base_table,
                        local_rows=len(actual), expected_rows=len(expected),
                        time=self.fleet.clock.now(),
                    ))
        found.extend(self.check_replica_convergence())
        return found

    def check_replica_convergence(self):
        """After recovery + catch-up, every surviving standby must hold
        exactly its primary's rows — log shipping is complete, not
        approximate.  No-op over back-ends without shard replicas."""
        backend = self.fleet.backend
        replicas = getattr(backend, "replicas", None)
        if not replicas:
            return []
        found = []
        for shard, standbys in sorted(replicas.items()):
            primary = backend.partitions[shard]
            for replica in standbys:
                self.replicas_checked += 1
                for entry in primary.catalog.tables():
                    expected = sorted(
                        tuple(values) for _, values in entry.table.scan()
                    )
                    mirror = replica.server.catalog.table(entry.name)
                    actual = sorted(
                        tuple(values) for _, values in mirror.table.scan()
                    )
                    if expected != actual:
                        found.append(self._record(
                            "replica_convergence",
                            f"replica p{shard}/r{replica.replica_id} diverged "
                            f"from its primary on {entry.name}: "
                            f"{len(actual)} rows vs {len(expected)} expected",
                            shard=shard, replica=replica.replica_id,
                            table=entry.name, local_rows=len(actual),
                            expected_rows=len(expected),
                            time=self.fleet.clock.now(),
                        ))
        return found

    # ------------------------------------------------------------------
    def _record(self, invariant, message, **attrs):
        violation = InvariantViolation(invariant, message, **attrs)
        self.violations.append(violation)
        self.fleet.metrics.counter(
            "chaos_invariant_violations_total", labels={"invariant": invariant},
            help="C&C invariant violations found by the chaos checker",
        ).inc()
        self.fleet.metrics.event(
            "invariant", message, severity="error",
            time=attrs.get("time", self.fleet.clock.now()),
            invariant=invariant, **{k: v for k, v in attrs.items() if k != "time"},
        )
        if self.raise_on_violation:
            raise violation
        return violation

    def __repr__(self):
        return (
            f"<InvariantChecker results={self.results_checked} "
            f"views={self.views_checked} violations={len(self.violations)}>"
        )
