"""repro.chaos — seeded fault schedules with C&C invariant checking.

The paper promises that relaxed results are *bounded* and *declared*:
stale data is fine, silently-too-stale data is a bug.  This package
stress-tests that promise.  A :class:`ChaosScheduler` injects a seeded
mix of faults — node crashes and cold restarts, back-end outages,
per-node partitions, distribution-agent stalls that trip standby
failover — into a running :class:`~repro.fleet.fleet.CacheFleet` while
a workload drives queries through the front door, and an
:class:`InvariantChecker` audits every delivered result (currency bound
honored or explicitly waived, one snapshot per result) and the
post-recovery caches (views converge back to the back-end).

Everything runs on the simulated clock from seeded generators: one seed
is one exact fault/recovery history, which is what the CI smoke job
diffs across two runs.

Quickstart::

    from repro.chaos import ChaosScheduler, build_demo_fleet

    fleet = build_demo_fleet()
    chaos = ChaosScheduler(fleet, seed=11)
    chaos.random_schedule(60.0)
    report = chaos.run(60.0)
    assert not report.violations
    print("\\n".join(report.history_lines()))

or from a shell: ``python -m repro.chaos --seed 11 --duration 60``.
"""

from repro.chaos.env import (
    build_demo_fleet,
    build_ledger_fleet,
    default_point_lookup_factory,
)
from repro.chaos.invariants import InvariantChecker
from repro.chaos.scheduler import HISTORY_KINDS, ChaosReport, ChaosScheduler
from repro.common.errors import InvariantViolation

__all__ = [
    "ChaosReport",
    "ChaosScheduler",
    "HISTORY_KINDS",
    "InvariantChecker",
    "InvariantViolation",
    "build_demo_fleet",
    "build_ledger_fleet",
    "default_point_lookup_factory",
]
