"""Query-result caching with C&C-aware reuse (paper §1, third scenario)."""

from repro.resultcache.cache import CachedResult, ResultCache

__all__ = ["CachedResult", "ResultCache"]
