"""A C&C-aware SQL result cache.

The paper's third motivating scenario (§1): a component that caches SQL
query results so they can be reused when the same query is submitted
again.  "The cache can easily keep track of the staleness of its cached
results and if a result does not satisfy a query's currency requirements,
transparently recompute it.  In this way, an application can always be
assured that its currency requirements are met."

:class:`ResultCache` fronts any executor with an ``execute(sql)`` method
(a :class:`~repro.cache.backend.BackendServer` or an
:class:`~repro.cache.mtcache.MTCache`).  Results are keyed by the query
text *without* its currency clause, so the same cached rows can serve
requests with different bounds; each entry remembers the snapshot time it
was computed at, and a lookup succeeds only if

* ``now − snapshot_time`` is within the incoming query's currency bound
  (the *minimum* bound across its constraint tuples — result rows mix all
  inputs, so the tightest bound governs), and
* the entry has not been explicitly invalidated.

Statements that are not SELECTs pass straight through and, being writes,
invalidate cached results derived from the written table.
"""

from repro.cc.constraint import constraint_from_select
from repro.sql import ast
from repro.sql.parser import parse


class CachedResult:
    """One cached query result plus its provenance."""

    __slots__ = ("key", "rows", "columns", "snapshot_time", "tables", "hits")

    def __init__(self, key, rows, columns, snapshot_time, tables):
        self.key = key
        self.rows = rows
        self.columns = columns
        self.snapshot_time = snapshot_time
        self.tables = frozenset(tables)
        self.hits = 0

    def age(self, now):
        return now - self.snapshot_time

    def __repr__(self):
        return f"CachedResult({self.key!r}, rows={len(self.rows)}, t={self.snapshot_time:.3f})"


class ResultCache:
    """Caches SELECT results and reuses them under currency bounds."""

    def __init__(self, executor, clock=None, max_entries=256):
        self.executor = executor
        self.clock = clock if clock is not None else executor.clock
        self.max_entries = max_entries
        self._entries = {}  # key -> CachedResult
        self.stats = {"hits": 0, "misses": 0, "recomputes": 0, "invalidations": 0}

    # ------------------------------------------------------------------
    def execute(self, sql):
        """Execute with caching; non-SELECTs pass through (and invalidate)."""
        stmt = parse(sql) if isinstance(sql, str) else sql
        if not isinstance(stmt, ast.Select):
            result = self.executor.execute(stmt)
            if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
                self.invalidate_table(stmt.table)
            return result
        return self._execute_select(stmt)

    def _execute_select(self, select):
        key = self._key_of(select)
        bound = self._effective_bound(select)
        now = self.clock.now()

        entry = self._entries.get(key)
        if entry is not None and entry.age(now) <= bound:
            entry.hits += 1
            self.stats["hits"] += 1
            return entry

        if entry is not None:
            self.stats["recomputes"] += 1
        else:
            self.stats["misses"] += 1

        # Recompute: strip the currency clause — the underlying executor is
        # asked for a current answer, which then serves any future bound.
        stripped = self._strip_currency(select)
        result = self.executor.execute(stripped)
        fresh = CachedResult(
            key,
            list(result.rows),
            list(result.columns),
            now,
            self._tables_of(select),
        )
        self._store(fresh)
        return fresh

    # ------------------------------------------------------------------
    def invalidate_table(self, table):
        """Drop every cached result that read ``table``."""
        table = table.lower()
        doomed = [k for k, e in self._entries.items() if table in e.tables]
        for key in doomed:
            del self._entries[key]
        self.stats["invalidations"] += len(doomed)
        return len(doomed)

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    # ------------------------------------------------------------------
    @staticmethod
    def _strip_currency(select):
        if select.currency is None:
            return select
        return ast.Select(
            select.items,
            select.from_items,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            distinct=select.distinct,
            currency=None,
            limit=select.limit,
        )

    @classmethod
    def _key_of(cls, select):
        return cls._strip_currency(select).to_sql()

    @staticmethod
    def _effective_bound(select):
        """The tightest bound across the normalized constraint (a cached
        result mixes all inputs, so the minimum governs)."""
        constraint, _ = constraint_from_select(select)
        bounds = [t.bound for t in constraint]
        return min(bounds) if bounds else 0.0

    @staticmethod
    def _tables_of(select):
        tables = set()
        stack = [select]
        while stack:
            block = stack.pop()
            for item in block.from_items:
                if isinstance(item, ast.FromSubquery):
                    stack.append(item.select)
                else:
                    tables.add(item.name)
            for expr in (block.where, block.having):
                if expr is None:
                    continue
                for node in expr.walk():
                    if isinstance(node, (ast.ExistsSubquery, ast.InSubquery)):
                        stack.append(node.select)
        return tables

    def _store(self, entry):
        if len(self._entries) >= self.max_entries and entry.key not in self._entries:
            # Evict the least-recently-useful entry (fewest hits, oldest).
            victim = min(self._entries.values(), key=lambda e: (e.hits, e.snapshot_time))
            del self._entries[victim.key]
        self._entries[entry.key] = entry
