"""A simulated, unreliable network between fleet nodes and the back-end.

Every cache→back-end call in a fleet goes through one shared
:class:`SimulatedNetwork`, which models the link the paper's deployment
picture takes for granted: a mid-tier cache farm talking to a remote
master over a real network.  The shim injects the faults that make
multi-node behavior interesting:

* **latency** — every call advances the simulated clock by a configurable
  round-trip time (plus optional jitter);
* **drops** — a seeded per-call probability of losing the request;
* **timeouts** — calls whose effective latency exceeds the timeout fail
  after waiting the full timeout;
* **outage windows** — absolute `[start, end)` intervals during which the
  back-end is unreachable (:meth:`inject_outage`);
* **partitions** — node-scoped outage windows (:meth:`partition`): one
  node loses its back-end link while the rest of the fleet keeps it;
* **distribution-agent stalls** — windows during which a node's agents
  skip propagation entirely (:meth:`stall_agents` /
  :meth:`wrap_agent`), so its regions fall behind.

All waiting happens on the *simulated* clock — preferably through the
shared scheduler so heartbeats and agents keep firing while a retry backs
off — which keeps every fleet experiment deterministic.
"""

from repro.common.errors import NetworkError


class FaultWindow:
    """One injected fault interval on the simulated timeline."""

    __slots__ = ("start", "end", "node", "shard")

    def __init__(self, start, end, node=None, shard=None):
        self.start = start
        self.end = end
        self.node = node  # None = applies to every node
        self.shard = shard  # None = applies to every back-end partition

    def active(self, now, node=None, shards=None):
        if not (self.start <= now < self.end):
            return False
        if not (self.node is None or node is None or self.node == node):
            return False
        return self._covers_shards(shards)

    def applies_to(self, now, node, shards=None):
        """Strict variant of :meth:`active`: a node-scoped window applies
        only to that node — a ``node=None`` caller asks about the *global*
        link, which per-node partitions do not cut."""
        if not (self.start <= now < self.end):
            return False
        if not (self.node is None or self.node == node):
            return False
        return self._covers_shards(shards)

    def _covers_shards(self, shards):
        """A shard-scoped window only cuts calls touching that partition.
        Callers that don't declare their shards (``shards=None``) are
        treated as touching all of them — the conservative reading."""
        if self.shard is None:
            return True
        return shards is None or self.shard in shards

    def __repr__(self):
        who = self.node or "*"
        part = "*" if self.shard is None else f"p{self.shard}"
        return f"<FaultWindow [{self.start:g}, {self.end:g}) node={who} shard={part}>"


class SimulatedNetwork:
    """Fault-injecting transport shared by every node of one fleet.

    ``registry`` (typically the fleet's metrics registry) receives
    ``fleet_network_calls_total{node,outcome}`` counters and the stall /
    latency bookkeeping.  ``seed`` drives the drop coin-flips so runs are
    reproducible.
    """

    def __init__(self, clock, scheduler=None, *, registry=None, seed=0,
                 latency=0.0, jitter=0.0, drop_rate=0.0, timeout=None):
        import random

        from repro.obs.metrics import NULL_REGISTRY

        self.clock = clock
        self.scheduler = scheduler
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.seed = seed
        self.rng = random.Random(seed)
        #: Optional role-level availability probe (set by the fleet to the
        #: back-end's ``shards_available``): a shard whose primary is
        #: fenced mid-failover is unreachable even with no outage window.
        self.role_faults = None
        self.latency = latency
        self.jitter = jitter
        self.drop_rate = drop_rate
        self.timeout = timeout
        self._outages = []  # FaultWindow list (backend unreachable)
        self._stalls = []  # FaultWindow list (agents skip propagation)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_outage(self, duration, start=None, shard=None):
        """Make the back-end unreachable for ``duration`` simulated
        seconds, beginning at ``start`` (default: now).  With ``shard``
        only that partition goes dark: single-shard plans pinned to other
        partitions keep their remote branch."""
        start = self.clock.now() if start is None else start
        window = FaultWindow(start, start + duration, shard=shard)
        self._outages.append(window)
        scope = "back-end" if shard is None else f"back-end shard p{shard}"
        self.registry.event(
            "outage", f"{scope} outage [{start:g}, {window.end:g})",
            severity="error", time=start, start=start, end=window.end,
            shard="*" if shard is None else shard,
        )
        if self.scheduler is not None:
            self.scheduler.at(
                window.end,
                lambda: self.registry.event(
                    "outage", "back-end outage ended",
                    time=window.end, start=start, end=window.end,
                ),
                name="outage-end-event",
            )
        return window

    def partition(self, node, duration, start=None, shard=None):
        """Cut one node off from the back-end for ``duration`` simulated
        seconds: a node-scoped outage window.  Other nodes keep their
        link; the partitioned node's guards degrade per its policy.
        With ``shard`` the cut only severs that node's link to one
        back-end partition."""
        start = self.clock.now() if start is None else start
        window = FaultWindow(start, start + duration, node=node, shard=shard)
        self._outages.append(window)
        what = "the back-end" if shard is None else f"back-end shard p{shard}"
        self.registry.event(
            "partition",
            f"{node} partitioned from {what} [{start:g}, {window.end:g})",
            severity="error", time=start, node=node, start=start, end=window.end,
            shard="*" if shard is None else shard,
        )
        return window

    def stall_agents(self, duration, start=None, node=None, shard=None):
        """Stall distribution-agent propagation for ``duration`` seconds.

        With ``node`` given only that node's agents stall; otherwise every
        wrapped agent in the fleet skips its propagation wakes.  With
        ``shard`` only the agents tailing that partition stall — the
        other shards of the same region keep replicating.
        """
        start = self.clock.now() if start is None else start
        window = FaultWindow(start, start + duration, node=node, shard=shard)
        self._stalls.append(window)
        self.registry.event(
            "agent_stall",
            f"agent propagation stalled [{start:g}, {window.end:g}) "
            f"on {node or 'every node'}",
            severity="warning", time=start, node=node or "*",
            start=start, end=window.end,
        )
        return window

    def clear_faults(self):
        """Drop every injected window (between experiment phases)."""
        self._outages.clear()
        self._stalls.clear()

    def backend_available(self, now=None, node=None, shards=None):
        """True when no outage (or, given ``node``, partition) window
        covers the current instant for that caller.  ``shards`` declares
        which partitions the caller would touch; shard-scoped windows on
        other partitions don't block it (undeclared = touches all).
        Role faults (a fenced shard primary awaiting promotion) count as
        unavailability the same way, via the ``role_faults`` probe."""
        now = self.clock.now() if now is None else now
        if any(w.applies_to(now, node, shards=shards) for w in self._outages):
            return False
        if self.role_faults is not None and not self.role_faults(shards):
            return False
        return True

    def outage_ends_at(self, now=None, node=None):
        """End of the outage/partition window covering ``now`` for
        ``node`` (None if reachable)."""
        now = self.clock.now() if now is None else now
        ends = [w.end for w in self._outages if w.applies_to(now, node)]
        return max(ends) if ends else None

    def partitioned_nodes(self, now=None):
        """Names of nodes currently cut off by node-scoped windows."""
        now = self.clock.now() if now is None else now
        return sorted({
            w.node for w in self._outages
            if w.node is not None and w.applies_to(now, w.node)
        })

    def agents_stalled(self, node=None, now=None, shard=None):
        now = self.clock.now() if now is None else now
        shards = None if shard is None else (shard,)
        return any(w.active(now, node=node, shards=shards) for w in self._stalls)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def sleep(self, seconds):
        """Advance simulated time (through the scheduler when available,
        so heartbeats and agents keep firing while a caller backs off)."""
        if seconds <= 0:
            return
        if self.scheduler is not None:
            self.scheduler.run_for(seconds)
        else:
            self.clock.advance(seconds)

    def call(self, fn, *args, node="", shards=None, trace=None):
        """One attempt of a cache→back-end call over the simulated link.

        Pays the round-trip latency, then raises :class:`NetworkError`
        (tagged ``drop`` / ``timeout`` / ``outage``) or returns ``fn(*args)``.
        With a ``trace``, the whole attempt is a ``net.call`` span of that
        trace, annotated with the node and the outcome.
        """
        span = trace.span("net.call", node=node or "-").__enter__() if trace else None
        try:
            outcome, result = self._attempt(fn, args, node, shards)
            if span is not None:
                span.attrs["outcome"] = outcome
            return result
        except NetworkError as exc:
            if span is not None:
                span.attrs["outcome"] = exc.reason
            raise
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    def _attempt(self, fn, args, node, shards=None):
        rtt = self.latency
        if self.jitter:
            rtt += self.rng.uniform(0.0, self.jitter)
        if self.timeout is not None and rtt > self.timeout:
            self.sleep(self.timeout)
            self._count(node, "timeout")
            raise NetworkError(
                f"call from {node or 'cache'} timed out after {self.timeout:g}s",
                reason="timeout",
            )
        self.sleep(rtt)
        if not self.backend_available(node=node or None, shards=shards):
            self._count(node, "outage")
            raise NetworkError(
                f"back-end unreachable from {node or 'cache'} (outage window)",
                reason="outage",
            )
        if self.drop_rate and self.rng.random() < self.drop_rate:
            self._count(node, "drop")
            raise NetworkError(
                f"request from {node or 'cache'} dropped", reason="drop"
            )
        result = fn(*args)
        self._count(node, "ok")
        return "ok", result

    def _count(self, node, outcome):
        self.registry.counter(
            "fleet_network_calls_total",
            labels={"node": node or "-", "outcome": outcome},
            help="simulated-network call attempts by outcome",
        ).inc()

    # ------------------------------------------------------------------
    # Agent plumbing
    # ------------------------------------------------------------------
    def wrap_agent(self, agent, node="", shard=None):
        """Route an agent's propagation wakes through the stall windows.

        Replaces ``agent.propagate`` with a shim that skips (and counts)
        wakes landing inside a stall window for ``node`` (and, for a
        partition agent, its ``shard``).  The caller must restart the
        agent afterwards so the scheduler picks up the shim.
        """
        original = agent.propagate
        shard = shard if shard is not None else getattr(agent, "shard_id", None)

        def propagate(cutoff=None):
            if self.agents_stalled(node=node, shard=shard):
                self.registry.counter(
                    "fleet_agent_stall_skips_total", labels={"node": node or "-"},
                    help="agent propagation wakes skipped by injected stalls",
                ).inc()
                return 0
            if (
                self.role_faults is not None
                and shard is not None
                and not self.role_faults((shard,))
            ):
                # The agent's shard primary is fenced: its log is frozen
                # mid-failover and must not be tailed until promotion
                # re-binds the agent to the new primary's log.
                self.registry.counter(
                    "fleet_agent_fence_skips_total", labels={"node": node or "-"},
                    help="agent propagation wakes skipped on fenced shard primaries",
                ).inc()
                return 0
            return original(cutoff)

        agent.propagate = propagate
        return agent

    def __repr__(self):
        return (
            f"<SimulatedNetwork latency={self.latency:g}s drop_rate={self.drop_rate:g} "
            f"outages={len(self._outages)} stalls={len(self._stalls)}>"
        )
