"""Per-node circuit breaking for back-end calls.

The classic three-state breaker, run on the simulated clock:

* **CLOSED** — calls flow; consecutive failures are counted.
* **OPEN** — after ``failure_threshold`` consecutive failures the breaker
  trips: remote calls are refused without touching the network until
  ``reset_timeout`` simulated seconds have passed.
* **HALF_OPEN** — after the cooldown one probe call is let through; a
  success closes the breaker, a failure reopens it (and restarts the
  cooldown).

A node whose breaker is open *degrades* rather than erroring: currency
guards stop selecting the remote branch and fall back according to the
node's :class:`~repro.cache.mtcache.FallbackPolicy` (see
:class:`repro.fleet.node.FleetNode`).
"""

import enum


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Gauge encoding for ``fleet_breaker_state{node=...}``.
_STATE_VALUE = {BreakerState.CLOSED: 0, BreakerState.HALF_OPEN: 1, BreakerState.OPEN: 2}


class CircuitBreaker:
    """Tracks back-end health for one fleet node."""

    def __init__(self, clock, *, failure_threshold=3, reset_timeout=5.0,
                 registry=None, name=""):
        from repro.obs.metrics import NULL_REGISTRY

        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.name = name
        self.state = BreakerState.CLOSED
        self.failures = 0  # consecutive failures while closed
        self.opened_at = None

    # ------------------------------------------------------------------
    @property
    def retry_at(self):
        """Absolute simulated time at which an open breaker half-opens."""
        if self.opened_at is None:
            return self.clock.now()
        return self.opened_at + self.reset_timeout

    def available(self):
        """May a remote call proceed right now?

        An open breaker whose cooldown has elapsed transitions to
        HALF_OPEN here, admitting the probe call.
        """
        if self.state is BreakerState.OPEN:
            if self.clock.now() >= self.retry_at:
                self._transition(BreakerState.HALF_OPEN)
                return True
            return False
        return True

    def record_success(self):
        self.failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self):
        self.failures += 1
        if self.state is BreakerState.HALF_OPEN or self.failures >= self.failure_threshold:
            self.failures = 0
            self.opened_at = self.clock.now()
            if self.state is not BreakerState.OPEN:
                self._transition(BreakerState.OPEN)
            else:
                # Already open (e.g. repeated failures racing the clock):
                # just restart the cooldown.
                self._set_gauge()

    # ------------------------------------------------------------------
    def _transition(self, to):
        came_from = self.state
        self.state = to
        self.registry.counter(
            "fleet_breaker_transitions_total",
            labels={"node": self.name or "-", "to": to.value},
            help="circuit-breaker state transitions",
        ).inc()
        self.registry.event(
            "breaker",
            f"breaker on {self.name or '-'}: {came_from.value} -> {to.value}",
            severity="warning" if to is BreakerState.OPEN else "info",
            time=self.clock.now(), node=self.name or "-",
            from_state=came_from.value, to_state=to.value,
        )
        self._set_gauge()

    def _set_gauge(self):
        self.registry.gauge(
            "fleet_breaker_state", labels={"node": self.name or "-"},
            help="breaker state: 0=closed 1=half-open 2=open",
        ).set(_STATE_VALUE[self.state])

    def __repr__(self):
        return (
            f"<CircuitBreaker {self.name or '-'} {self.state.value} "
            f"failures={self.failures}>"
        )
