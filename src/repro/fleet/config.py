"""One declarative recipe for building a cache fleet and its back-end.

Before :class:`FleetConfig`, every entry point (the CLI, ``python -m
repro.chaos``, the benchmarks, ad-hoc scripts) assembled its own
``BackendServer``/``ShardedBackend`` + :class:`~repro.fleet.fleet.CacheFleet`
with slightly different knob spellings.  The config collects the whole
topology in one value:

* ``nodes`` — how many MTCache front-ends;
* ``partitions`` — how many back-end shards (1 = a plain
  :class:`~repro.cache.backend.BackendServer`; >1 = a
  :class:`~repro.shard.ShardedBackend`);
* ``policy`` / ``network`` / ``metrics`` / breaker tuning — forwarded to
  :class:`~repro.fleet.fleet.CacheFleet` unchanged;
* ``clock`` / ``scheduler`` / ``cost_model`` — shared simulation services
  for a back-end the config builds itself;
* ``backend`` — a pre-built back-end to use instead (``partitions`` must
  then agree with its ``partition_count``).

Build with :meth:`FleetConfig.build` (or pass the config straight to
``CacheFleet(config)`` / ``CacheFleet.from_config(config)``)::

    from repro.fleet import FleetConfig

    config = FleetConfig(nodes=3, partitions=4, policy="staleness_aware")
    fleet = config.build()
    fleet.backend.create_table(...)
"""

from dataclasses import dataclass, field

from repro.common.backend import Backend

__all__ = ["FleetConfig"]


@dataclass
class FleetConfig:
    """Declarative topology for one fleet: front-end count, back-end
    shard count, routing policy and shared plumbing."""

    nodes: int = 3
    partitions: int = 1
    #: Log-shipping standbys per back-end shard (>0 forces a
    #: ShardedBackend even at one partition, so the failover machinery —
    #: fencing, detection, promotion — is available).
    replicas: int = 0
    policy: str = "round_robin"
    names: list = None
    backend: object = None
    clock: object = None
    scheduler: object = None
    cost_model: object = None
    network: object = None
    metrics: object = None
    failure_threshold: int = 3
    reset_timeout: float = 5.0
    max_remote_wait: float = 60.0
    #: Slack added past a covering outage window before a node's deferred
    #: restart retries (None: FleetNode's module default, 1 ms).
    restart_defer_epsilon: float = None
    #: Capture a seed-deterministic run history (repro.history): one
    #: shared recorder across every node, the back-end's commit points
    #: and the fleet event log.  Off by default — recording costs a few
    #: percent on the hot path.
    record_history: bool = False
    #: Extra keyword arguments forwarded to every FleetNode/MTCache
    #: (``fallback_policy``, ``warmup_seconds``, ``failover_threshold``...).
    node_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("a fleet needs at least one node")
        if self.partitions < 1:
            raise ValueError("a back-end needs at least one partition")
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        if self.names is not None and len(self.names) != self.nodes:
            raise ValueError(
                f"{len(self.names)} names for {self.nodes} nodes"
            )

    # ------------------------------------------------------------------
    def resolve_backend(self):
        """The back-end this config describes: the one handed in, or a
        freshly built single/sharded server."""
        if self.backend is not None:
            if not isinstance(self.backend, Backend):
                raise TypeError(
                    f"backend must implement repro.common.backend.Backend, "
                    f"got {type(self.backend).__name__} (the pre-protocol "
                    "duck-typing shim has been removed)"
                )
            count = self.backend.partition_count
            if self.partitions not in (1, count):
                raise ValueError(
                    f"config says partitions={self.partitions} but the "
                    f"supplied backend has {count}"
                )
            self.partitions = count
            return self.backend
        if self.partitions > 1 or self.replicas > 0:
            from repro.shard.backend import ShardedBackend

            return ShardedBackend(
                self.partitions, clock=self.clock, scheduler=self.scheduler,
                cost_model=self.cost_model, replicas=self.replicas,
            )
        from repro.cache.backend import BackendServer

        return BackendServer(
            clock=self.clock, scheduler=self.scheduler,
            cost_model=self.cost_model,
        )

    def build(self):
        """Materialize the fleet (back-end included)."""
        from repro.fleet.fleet import CacheFleet

        return CacheFleet.from_config(self)

    def describe(self):
        """One-line topology summary for logs and the CLI."""
        return (
            f"{self.nodes} node(s) x {self.partitions} partition(s), "
            f"policy={self.policy}"
        )
