"""Pluggable routing policies for the fleet's front door.

A policy picks the node that serves the next query.  Three built-ins:

* **round_robin** — cycle through the nodes; the classic load spreader.
* **least_loaded** — fewest in-flight requests, total routed queries as
  the tie-break; what an L7 balancer with live connection counts does.
* **staleness_aware** — the C&C-specific policy: prefer nodes whose
  regions' replicated heartbeats *already* satisfy the query's currency
  bound, so the guard will pass and the query stays local.  Among fresh
  candidates it balances by load; if no node is fresh enough it sends the
  query to the least-stale node (whose guard then routes remote or
  degrades per its fallback policy).

Policies are duck-typed: anything with ``name`` and
``choose(nodes, bound=None)`` works, so experiments can plug their own.
"""

import re

from repro.sql import ast

__all__ = [
    "LeastLoadedPolicy",
    "POLICIES",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "StalenessAwarePolicy",
    "bound_from_sql",
    "make_policy",
]

#: CURRENCY BOUND <n> <unit> — the router's cheap peek at the constraint;
#: mirrors the parser's time units without paying for a full parse.
_BOUND_RE = re.compile(
    r"CURRENCY\s+BOUND\s+(\d+(?:\.\d+)?)\s*"
    r"(MS|SECONDS?|SEC|MINUTES?|MIN|HOURS?|DAYS?)\b",
    re.IGNORECASE,
)

_UNIT_SECONDS = {
    "ms": 0.001,
    "sec": 1.0, "second": 1.0, "seconds": 1.0,
    "min": 60.0, "minute": 60.0, "minutes": 60.0,
    "hour": 3600.0, "hours": 3600.0,
    "day": 86400.0, "days": 86400.0,
}


def bound_from_sql(sql):
    """Tightest currency bound in seconds named by the SQL text.

    None when the statement carries no currency clause (traditional
    semantics: the back-end answers anyway, so staleness is irrelevant
    to routing).
    """
    bounds = [
        float(value) * _UNIT_SECONDS[unit.lower()]
        for value, unit in _BOUND_RE.findall(sql)
    ]
    return min(bounds) if bounds else None


class RoutingPolicy:
    """Interface: pick one node from a non-empty list."""

    name = "?"

    def choose(self, nodes, bound=None):
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    name = "round_robin"

    def __init__(self):
        self._next = 0

    def choose(self, nodes, bound=None):
        node = nodes[self._next % len(nodes)]
        self._next += 1
        return node


class LeastLoadedPolicy(RoutingPolicy):
    name = "least_loaded"

    def choose(self, nodes, bound=None):
        return min(nodes, key=lambda n: (n.inflight, n.queries_routed))


class StalenessAwarePolicy(RoutingPolicy):
    name = "staleness_aware"

    def __init__(self):
        self._balance = LeastLoadedPolicy()

    def choose(self, nodes, bound=None):
        if bound is None or bound == ast.UNBOUNDED:
            return self._balance.choose(nodes)
        fresh = [n for n in nodes if self._satisfies(n, bound)]
        if fresh:
            return self._balance.choose(fresh)
        # Nobody is fresh enough: least stale loses the least currency.
        return min(nodes, key=self._staleness)

    @staticmethod
    def _satisfies(node, bound):
        staleness = node.max_staleness()
        return staleness is not None and staleness <= bound

    @staticmethod
    def _staleness(node):
        staleness = node.max_staleness()
        return float("inf") if staleness is None else staleness


POLICIES = {
    policy.name: policy
    for policy in (RoundRobinPolicy, LeastLoadedPolicy, StalenessAwarePolicy)
}


def make_policy(spec):
    """A policy instance from a name, a class, or an instance."""
    if isinstance(spec, str):
        try:
            return POLICIES[spec]()
        except KeyError:
            allowed = ", ".join(sorted(POLICIES))
            raise ValueError(
                f"unknown routing policy: {spec!r} (expected one of: {allowed})"
            ) from None
    if isinstance(spec, type):
        return spec()
    return spec
