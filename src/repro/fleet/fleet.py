"""The cache fleet: N MTCache nodes, one back-end, one front door.

:class:`CacheFleet` owns the nodes, the shared
:class:`~repro.fleet.network.SimulatedNetwork`, and a fleet-level metrics
registry; :class:`FleetRouter` is the front door applications submit SQL
to.  DDL helpers (:meth:`CacheFleet.create_region`,
:meth:`CacheFleet.create_matview`) fan the definition out to every node —
each node gets its *own* currency region (suffixed ``@node``) because the
back-end heartbeat table keys one row per region id, and each node's
agent replicates independently.

Besides routing, the router keeps the simulated-capacity ledger: each
query occupies its node for the wall-clock time it actually took, so
``simulated_makespan()`` reports how long the workload would have taken
with the nodes truly running in parallel.  That is the number the fleet
throughput benchmark compares against a single cache.
"""

from repro.common.errors import FleetStateError
from repro.fleet.network import SimulatedNetwork
from repro.fleet.node import FleetNode, NodeLifecycle
from repro.fleet.routing import bound_from_sql, make_policy
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.trace import TraceLog

#: Floor on a query's simulated service time, so zero-cost results still
#: occupy their node for a tick.
_MIN_SERVICE = 1e-6


class FleetRouter:
    """Routes queries to nodes according to a pluggable policy."""

    def __init__(self, fleet, policy="round_robin"):
        self.fleet = fleet
        self.policy = make_policy(policy)

    def set_policy(self, policy):
        self.policy = make_policy(policy)
        return self.policy

    def route(self, sql, bound=None):
        """Pick the node for one statement (no execution).

        Lifecycle-aware: crashed and draining nodes never receive
        queries, and WARMING nodes (just restarted, caches cold) are
        only eligible when no fully-UP node exists.  With every node
        out of rotation, routing fails fast with
        :class:`~repro.common.errors.FleetStateError` instead of
        handing a query to a dead node.
        """
        if bound is None:
            bound = bound_from_sql(sql)
        nodes = self.fleet.nodes
        up = [n for n in nodes if n.lifecycle is NodeLifecycle.UP]
        candidates = up or [n for n in nodes if n.accepting]
        if not candidates:
            states = {n.name: n.lifecycle.value for n in nodes}
            raise FleetStateError(f"no fleet node accepting queries: {states}")
        return self.policy.choose(candidates, bound=bound)

    def execute(self, sql, bound=None):
        """Route and execute one statement; annotates the result with the
        serving node's name (``result.node``).

        The router is the tier that first sees the query, so it creates
        the query's :class:`~repro.obs.trace.TraceContext` here and passes
        it down: the node's parse/optimize/execute spans and any simulated
        network calls all land in one tree, recorded in ``fleet.traces``.
        """
        fleet = self.fleet
        trace = fleet.metrics.new_trace()
        span = (
            trace.span("fleet.route", policy=self.policy.name).__enter__()
            if trace else None
        )
        try:
            node = self.route(sql, bound=bound)
            if span is not None:
                span.attrs["node"] = node.name
            fleet.metrics.counter(
                "fleet_routed_total",
                labels={"node": node.name, "policy": self.policy.name},
                help="queries routed, by node and policy",
            ).inc()
            node.inflight += 1
            node.queries_routed += 1
            start = max(fleet.clock.now(), node.busy_until)
            try:
                result = node.execute(sql, trace=trace if trace else None)
            finally:
                node.inflight -= 1
        finally:
            if span is not None:
                span.__exit__(None, None, None)
            fleet.traces.record(trace)
        timings = getattr(result, "timings", None)
        service = max(timings.total if timings is not None else 0.0, _MIN_SERVICE)
        node.busy_until = start + service
        node.busy_seconds += service
        staleness = fleet.max_staleness()
        if staleness is not None:
            fleet.metrics.gauge(
                "fleet_region_staleness_max_seconds",
                help="worst region staleness bound across the fleet",
            ).set(staleness)
        if hasattr(result, "rows"):
            result.node = node.name
        return result


class CacheFleet:
    """N cache nodes over one shared back-end.

    Keyword knobs:

    * ``policy`` — routing policy name/instance (``round_robin``,
      ``least_loaded``, ``staleness_aware``);
    * ``network`` — a preconfigured :class:`SimulatedNetwork` (default: a
      fault-free one on the back-end's clock and scheduler);
    * ``metrics`` — the fleet-level registry (routing, retries, breaker
      state); each node still owns its per-node registry;
    * breaker tuning (``failure_threshold``, ``reset_timeout``,
      ``max_remote_wait``) is applied to every node;
    * remaining keyword arguments (``fallback_policy``, ``batch_size``,
      ...) are forwarded to each :class:`FleetNode`/MTCache.
    """

    def __init__(self, backend, n_nodes=3, *, names=None, policy="round_robin",
                 network=None, metrics=None, failure_threshold=3,
                 reset_timeout=5.0, max_remote_wait=60.0, **node_kwargs):
        if names is None:
            names = [f"node{i}" for i in range(n_nodes)]
        if not names:
            raise ValueError("a fleet needs at least one node")
        self.backend = backend
        self.clock = backend.clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if network is None:
            network = SimulatedNetwork(
                backend.clock, backend.scheduler, registry=self.metrics
            )
        elif isinstance(network.registry, NullRegistry):
            # A hand-built network without its own registry reports into
            # the fleet's.
            network.registry = self.metrics
        self.network = network
        self.nodes = [
            FleetNode(
                name, backend, network,
                fleet_metrics=self.metrics,
                failure_threshold=failure_threshold,
                reset_timeout=reset_timeout,
                max_remote_wait=max_remote_wait,
                **node_kwargs,
            )
            for name in names
        ]
        self.router = FleetRouter(self, policy)
        #: Recent end-to-end query traces (router → node → network), for
        #: the CLI's ``\trace`` and post-mortem inspection.
        self.traces = TraceLog(128)
        self.regions = {}  # base cid -> {node name: per-node cid}
        self._epoch = self.clock.now()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def node(self, name):
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no fleet node named {name!r}")

    def region_cid(self, cid, node):
        """The per-node region id for base region ``cid`` on ``node``."""
        name = node if isinstance(node, str) else node.name
        return f"{cid}@{name}"

    # ------------------------------------------------------------------
    # Fleet-wide DDL
    # ------------------------------------------------------------------
    def create_region(self, cid, update_interval, update_delay, heartbeat_interval=2.0):
        """Create region ``cid`` on every node (as ``cid@node``)."""
        created = {}
        for node in self.nodes:
            node_cid = self.region_cid(cid, node)
            node.create_region(
                node_cid, update_interval, update_delay,
                heartbeat_interval=heartbeat_interval,
            )
            created[node.name] = node_cid
        self.regions[cid] = created
        return created

    def create_matview(self, name, base_table, columns, predicate=None, region=None):
        """Define the view on every node, in that node's copy of ``region``."""
        if region not in self.regions:
            raise KeyError(f"unknown fleet region {region!r}; create_region first")
        views = {}
        for node in self.nodes:
            views[node.name] = node.create_matview(
                name, base_table, columns,
                predicate=predicate, region=self.regions[region][node.name],
            )
        return views

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def crash_node(self, name):
        """Kill one node (in-memory state lost; router skips it)."""
        node = self.node(name)
        node.crash()
        return node

    def restart_node(self, name, warmup=None):
        """Cold-restart a crashed node (deferred if its link is down)."""
        node = self.node(name)
        node.restart(warmup=warmup)
        return node

    def drain_node(self, name):
        """Quiesce one node (no new queries; caches stay warm)."""
        node = self.node(name)
        node.drain()
        return node

    def resume_node(self, name):
        """Put a drained node back into rotation."""
        node = self.node(name)
        node.resume()
        return node

    # ------------------------------------------------------------------
    # Query entry point
    # ------------------------------------------------------------------
    def execute(self, sql, bound=None):
        """Route one statement through the front door."""
        return self.router.execute(sql, bound=bound)

    def run_for(self, seconds):
        """Advance simulated time (shared scheduler: heartbeats, agents
        of every node)."""
        return self.backend.run_for(seconds)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def max_staleness(self):
        """Worst staleness bound across the whole fleet (None: unknown)."""
        worst = None
        for node in self.nodes:
            staleness = node.max_staleness()
            if staleness is None:
                return None
            if worst is None or staleness > worst:
                worst = staleness
        return worst

    def reset_load(self):
        """Restart the simulated-capacity ledger (between benchmark runs)."""
        now = self.clock.now()
        self._epoch = now
        for node in self.nodes:
            node.busy_until = now
            node.busy_seconds = 0.0

    def simulated_makespan(self):
        """How long the routed workload kept the fleet busy, had the nodes
        truly run in parallel: latest node-finish time minus the epoch."""
        finish = max((node.busy_until for node in self.nodes), default=self._epoch)
        return max(finish - self._epoch, 0.0)

    def slo_report(self):
        """Currency-SLO scorecard for the whole fleet.

        Answers the operator's question — *are the bounds we promised
        actually being met, and with how much room?* — from the metrics
        the guards already record:

        * ``slack`` — per node, per region: the ``B - d`` distribution at
          guard evaluation (:meth:`Histogram.summary`), plus a
          ``bound_missed`` flag when the worst observed slack was
          negative.  Stalled agents show up as this distribution sliding
          toward (and past) zero.
        * ``guard_outcomes`` — per node: local / remote / stale serve
          counts from ``currency_guard_region_total``.
        * ``degraded`` — stale serves forced by back-end unavailability.
        * ``routing`` — queries by serving node.
        * ``breaker_transitions`` — per node, by target state.
        * ``events`` — fleet + node event-log counts by kind.
        """
        slack = {}
        outcomes = {}
        events = dict(self.metrics.events.counts_by_kind())
        for node in self.nodes:
            reg = node.metrics
            per_region = {}
            for key, hist in sorted(reg.family("currency_slack_seconds").items()):
                labels = dict(key)
                summary = hist.summary()
                summary["bound_missed"] = hist.count > 0 and summary["min"] < 0
                per_region[labels.get("region", "-")] = summary
            if per_region:
                slack[node.name] = per_region
            node_outcomes = {}
            for key, counter in sorted(reg.family("currency_guard_region_total").items()):
                labels = dict(key)
                outcome = labels.get("outcome", "-")
                node_outcomes[outcome] = node_outcomes.get(outcome, 0) + counter.value
            if node_outcomes:
                outcomes[node.name] = node_outcomes
            for kind, n in reg.events.counts_by_kind().items():
                events[kind] = events.get(kind, 0) + n
        routing = {}
        for key, counter in self.metrics.family("fleet_routed_total").items():
            labels = dict(key)
            name = labels.get("node", "-")
            routing[name] = routing.get(name, 0) + counter.value
        degraded = sum(
            counter.value
            for counter in self.metrics.family("fleet_degraded_total").values()
        )
        breakers = {}
        for key, counter in self.metrics.family("fleet_breaker_transitions_total").items():
            labels = dict(key)
            breakers.setdefault(labels.get("node", "-"), {})[labels.get("to", "-")] = (
                counter.value
            )
        return {
            "slack": slack,
            "guard_outcomes": outcomes,
            "degraded": degraded,
            "routing": routing,
            "breaker_transitions": breakers,
            "events": events,
        }

    def snapshot_metrics(self):
        """Fleet and per-node registry snapshots under node-labelled keys:
        ``{"fleet": {...}, "node0": {...}, ...}``."""
        out = {"fleet": self.metrics.snapshot()}
        for node in self.nodes:
            out[node.name] = node.metrics.snapshot()
        return out

    def status(self):
        """Monitoring snapshot for the CLI's ``\\fleet`` command."""
        nodes = {}
        for node in self.nodes:
            window = node.query_log.summary()
            nodes[node.name] = {
                "routed": node.queries_routed,
                "inflight": node.inflight,
                "lifecycle": node.lifecycle.value,
                "breaker": node.breaker.state.value,
                "staleness": node.max_staleness(),
                "local_fraction": window["local_fraction"],
                "busy_seconds": node.busy_seconds,
            }
        now = self.clock.now()
        return {
            "policy": self.router.policy.name,
            "nodes": nodes,
            "network": {
                "latency": self.network.latency,
                "drop_rate": self.network.drop_rate,
                "outage_active": not self.network.backend_available(now),
                "agents_stalled": self.network.agents_stalled(now=now),
                "partitioned": self.network.partitioned_nodes(now),
            },
        }

    def __repr__(self):
        return (
            f"<CacheFleet nodes={[n.name for n in self.nodes]} "
            f"policy={self.router.policy.name}>"
        )
