"""The cache fleet: N MTCache nodes, one back-end, one front door.

:class:`CacheFleet` owns the nodes, the shared
:class:`~repro.fleet.network.SimulatedNetwork`, and a fleet-level metrics
registry; :class:`FleetRouter` is the front door applications submit SQL
to.  DDL helpers (:meth:`CacheFleet.create_region`,
:meth:`CacheFleet.create_matview`) fan the definition out to every node —
each node gets its *own* currency region (suffixed ``@node``) because the
back-end heartbeat table keys one row per region id, and each node's
agent replicates independently.

Besides routing, the router keeps the simulated-capacity ledger: each
query occupies its node for the wall-clock time it actually took, so
``simulated_makespan()`` reports how long the workload would have taken
with the nodes truly running in parallel.  That is the number the fleet
throughput benchmark compares against a single cache.
"""

from repro.common.errors import FleetStateError, ParseError
from repro.engine.executor import ExecutionContext, PhaseTimings, QueryResult
from repro.fleet.config import FleetConfig
from repro.fleet.network import SimulatedNetwork
from repro.fleet.node import FleetNode, NodeLifecycle
from repro.fleet.routing import bound_from_sql, make_policy
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.trace import TraceLog
from repro.optimizer.query_info import _constant_value, _split_conjuncts
from repro.plan.store import PlanSnapshotStore
from repro.sql import ast
from repro.sql.parser import parse

#: Floor on a query's simulated service time, so zero-cost results still
#: occupy their node for a tick.
_MIN_SERVICE = 1e-6


class FleetRouter:
    """Routes queries to nodes according to a pluggable policy.

    Over a sharded back-end the router additionally *scatter-gathers*:
    a select whose IN-list on the partition column spans several shards
    is split into one single-shard leg per shard (each a normal query
    the policy routes independently, so legs land on different nodes),
    and the legs' rows are concatenated.  The merged result carries the
    per-shard C&C rule — its recorded snapshots are the union over the
    legs, so it is only as current as the stalest contributing shard —
    and exposes the legs as ``result.shard_results``.
    """

    def __init__(self, fleet, policy="round_robin"):
        self.fleet = fleet
        self.policy = make_policy(policy)

    def set_policy(self, policy):
        self.policy = make_policy(policy)
        return self.policy

    def route(self, sql, bound=None):
        """Pick the node for one statement (no execution).

        Lifecycle-aware: crashed and draining nodes never receive
        queries, and WARMING nodes (just restarted, caches cold) are
        only eligible when no fully-UP node exists.  With every node
        out of rotation, routing fails fast with
        :class:`~repro.common.errors.FleetStateError` instead of
        handing a query to a dead node.
        """
        if bound is None:
            bound = bound_from_sql(sql)
        nodes = self.fleet.nodes
        up = [n for n in nodes if n.lifecycle is NodeLifecycle.UP]
        candidates = up or [n for n in nodes if n.accepting]
        if not candidates:
            states = {n.name: n.lifecycle.value for n in nodes}
            raise FleetStateError(f"no fleet node accepting queries: {states}")
        return self.policy.choose(candidates, bound=bound)

    def execute(self, sql, bound=None, session=None):
        """Route and execute one statement; annotates the result with the
        serving node's name (``result.node``).

        Multi-shard IN-list selects are scatter-gathered (see the class
        docstring); everything else takes the single-leg path.  A
        read-your-writes ``session`` rides along to whichever node the
        policy picks — tokens are keyed by replication source, so the
        floor means the same thing on every node.
        """
        legs = self.scatter_split(sql)
        if legs is None:
            return self._execute_one(sql, bound=bound, session=session)
        merged = self._execute_scatter(legs, bound=bound, session=session)
        recorder = self.fleet.history
        if recorder is not None:
            recorder.record_scatter(
                node=merged.node,
                sql=sql,
                time=self.fleet.clock.now(),
                legs=[
                    getattr(r, "history_qid", None)
                    for r in merged.shard_results
                ],
                shards=[r.shard for r in merged.shard_results],
                rows=len(merged.rows),
            )
        return merged

    # ------------------------------------------------------------------
    # Scatter-gather over a sharded back-end
    # ------------------------------------------------------------------
    def scatter_split(self, sql):
        """Split a multi-shard IN-list select into single-shard legs.

        Returns ``[(shard_id, leg_sql), ...]`` when the statement is a
        plain select over one table whose only cross-shard fan-out is a
        top-level ``pcol IN (...)`` conjunct spanning >1 shard — the one
        shape where splitting is exact (shards hold disjoint rows and
        there is no final aggregation/ordering pass).  Anything else
        returns None and routes as a single query.
        """
        backend = self.fleet.backend
        if getattr(backend, "partition_count", 1) <= 1:
            return None
        if not isinstance(sql, str):
            return None
        try:
            stmt = parse(sql)
        except ParseError:
            return None
        if not isinstance(stmt, ast.Select):
            return None
        if (
            len(stmt.from_items) != 1
            or not isinstance(stmt.from_items[0], ast.FromTable)
            or stmt.group_by
            or stmt.having is not None
            or stmt.order_by
            or stmt.distinct
            or stmt.limit is not None
        ):
            return None
        for item in stmt.items:
            if item.star:
                continue
            if any(
                isinstance(node, ast.FuncCall) and node.is_aggregate
                for node in item.expr.walk()
            ):
                return None
        table = stmt.from_items[0]
        pcol = backend.partition_column(table.name)
        if pcol is None:
            return None
        conjuncts = _split_conjuncts(stmt.where)
        split_at = None
        for i, conjunct in enumerate(conjuncts):
            if (
                isinstance(conjunct, ast.InList)
                and not conjunct.negated
                and isinstance(conjunct.operand, ast.ColumnRef)
                and conjunct.operand.name == pcol
                and conjunct.operand.qualifier in (None, table.alias)
            ):
                if split_at is not None:
                    return None  # two IN lists on the key: don't split
                split_at = i
        if split_at is None:
            return None
        in_list = conjuncts[split_at]
        by_shard = {}
        for item in in_list.items:
            ok, value = _constant_value(item)
            if not ok:
                return None
            shard = backend.shard_of(table.name, value)
            by_shard.setdefault(shard, []).append(item)
        if len(by_shard) <= 1:
            return None
        legs = []
        for shard in sorted(by_shard):
            parts = list(conjuncts)
            parts[split_at] = ast.InList(in_list.operand, by_shard[shard])
            where = parts[0]
            for conjunct in parts[1:]:
                where = ast.BinaryOp("and", where, conjunct)
            leg = ast.Select(
                stmt.items, [table], where=where, currency=stmt.currency
            )
            legs.append((shard, leg.to_sql()))
        return legs

    def _execute_scatter(self, legs, bound=None, session=None):
        """Run the legs through the normal routed path and merge."""
        fleet = self.fleet
        fleet.metrics.counter(
            "fleet_scatter_total",
            help="multi-shard selects split by the scatter-gather router",
        ).inc()
        fleet.metrics.counter(
            "fleet_scatter_legs_total",
            help="single-shard legs issued by the scatter-gather router",
        ).inc(len(legs))
        results = []
        for shard, leg_sql in legs:
            result = self._execute_one(leg_sql, bound=bound, session=session)
            result.shard = shard
            results.append(result)
        ctx = ExecutionContext(clock=fleet.clock)
        rows = []
        service = 0.0
        for result in results:
            rows.extend(result.rows)
            leg_ctx = result.context
            if leg_ctx is not None:
                ctx.branches.extend(leg_ctx.branches)
                ctx.remote_queries.extend(leg_ctx.remote_queries)
                ctx.snapshots_used.extend(leg_ctx.snapshots_used)
                ctx.warnings.extend(leg_ctx.warnings)
            timings = getattr(result, "timings", None)
            if timings is not None:
                service = max(service, timings.total)
        merged = QueryResult(
            results[0].columns, rows, PhaseTimings(run=service), ctx
        )
        #: per-leg results (each annotated with ``.shard`` and ``.node``),
        #: for invariant checkers and tests auditing the fan-out.
        merged.shard_results = results
        merged.node = "+".join(r.node for r in results)
        return merged

    def _execute_one(self, sql, bound=None, session=None):
        """The single-leg path: route, execute, charge the capacity
        ledger and record the query's trace tree.

        The router is the tier that first sees the query, so it creates
        the query's :class:`~repro.obs.trace.TraceContext` here and passes
        it down: the node's parse/optimize/execute spans and any simulated
        network calls all land in one tree, recorded in ``fleet.traces``.
        """
        fleet = self.fleet
        trace = fleet.metrics.new_trace()
        span = (
            trace.span("fleet.route", policy=self.policy.name).__enter__()
            if trace else None
        )
        try:
            node = self.route(sql, bound=bound)
            if span is not None:
                span.attrs["node"] = node.name
            fleet.metrics.counter(
                "fleet_routed_total",
                labels={"node": node.name, "policy": self.policy.name},
                help="queries routed, by node and policy",
            ).inc()
            node.inflight += 1
            node.queries_routed += 1
            start = max(fleet.clock.now(), node.busy_until)
            try:
                result = node.execute(
                    sql, trace=trace if trace else None, session=session
                )
            finally:
                node.inflight -= 1
        finally:
            if span is not None:
                span.__exit__(None, None, None)
            fleet.traces.record(trace)
        timings = getattr(result, "timings", None)
        service = max(timings.total if timings is not None else 0.0, _MIN_SERVICE)
        node.busy_until = start + service
        node.busy_seconds += service
        staleness = fleet.max_staleness()
        if staleness is not None:
            fleet.metrics.gauge(
                "fleet_region_staleness_max_seconds",
                help="worst region staleness bound across the fleet",
            ).set(staleness)
        if hasattr(result, "rows"):
            result.node = node.name
        return result


class CacheFleet:
    """N cache nodes over one shared back-end.

    Keyword knobs:

    * ``policy`` — routing policy name/instance (``round_robin``,
      ``least_loaded``, ``staleness_aware``);
    * ``network`` — a preconfigured :class:`SimulatedNetwork` (default: a
      fault-free one on the back-end's clock and scheduler);
    * ``metrics`` — the fleet-level registry (routing, retries, breaker
      state); each node still owns its per-node registry;
    * breaker tuning (``failure_threshold``, ``reset_timeout``,
      ``max_remote_wait``) is applied to every node;
    * remaining keyword arguments (``fallback_policy``, ``batch_size``,
      ...) are forwarded to each :class:`FleetNode`/MTCache.

    Instead of a backend + knobs, the first argument may be a
    :class:`~repro.fleet.config.FleetConfig` — the fleet then builds its
    own back-end (sharded when ``config.partitions > 1``) and takes every
    unspecified knob from the config (see :meth:`from_config`).
    """

    @classmethod
    def from_config(cls, config):
        """Build the fleet (and its back-end) from a
        :class:`~repro.fleet.config.FleetConfig`."""
        return cls(config)

    def __init__(self, backend, n_nodes=None, *, names=None, policy=None,
                 network=None, metrics=None, failure_threshold=None,
                 reset_timeout=None, max_remote_wait=None,
                 restart_defer_epsilon=None, record_history=None,
                 **node_kwargs):
        config = backend if isinstance(backend, FleetConfig) else None
        if config is not None:
            backend = config.resolve_backend()
            node_kwargs = {**config.node_kwargs, **node_kwargs}
        defaults = config if config is not None else FleetConfig()
        n_nodes = defaults.nodes if n_nodes is None else n_nodes
        names = defaults.names if names is None else names
        policy = defaults.policy if policy is None else policy
        network = defaults.network if network is None else network
        metrics = defaults.metrics if metrics is None else metrics
        failure_threshold = (
            defaults.failure_threshold if failure_threshold is None
            else failure_threshold
        )
        reset_timeout = (
            defaults.reset_timeout if reset_timeout is None else reset_timeout
        )
        max_remote_wait = (
            defaults.max_remote_wait if max_remote_wait is None
            else max_remote_wait
        )
        restart_defer_epsilon = (
            defaults.restart_defer_epsilon if restart_defer_epsilon is None
            else restart_defer_epsilon
        )
        record_history = (
            defaults.record_history if record_history is None
            else record_history
        )
        if names is None:
            names = [f"node{i}" for i in range(n_nodes)]
        if not names:
            raise ValueError("a fleet needs at least one node")
        self.backend = backend
        self.clock = backend.clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if network is None:
            network = SimulatedNetwork(
                backend.clock, backend.scheduler, registry=self.metrics
            )
        elif isinstance(network.registry, NullRegistry):
            # A hand-built network without its own registry reports into
            # the fleet's.
            network.registry = self.metrics
        self.network = network
        # A registry-less back-end reports into the fleet's too, so shard
        # crash/promotion events land in the same event log the chaos
        # history and the certifier read.
        if isinstance(getattr(backend, "metrics", None), NullRegistry):
            backend.metrics = self.metrics
        # Shard-role availability (a fenced primary awaiting promotion)
        # counts as network unavailability for every node.
        if getattr(backend, "replica_count", 0) > 0 or hasattr(backend, "shard_is_down"):
            network.role_faults = backend.shards_available
        #: Fleet-shared precompiled-plan snapshot store: the first node to
        #: optimize a statement publishes; identically-configured peers
        #: instantiate without re-parse/re-optimize (see repro.plan).
        self.snapshot_store = node_kwargs.pop(
            "snapshot_store", PlanSnapshotStore(backend.clock)
        )
        self.nodes = [
            FleetNode(
                name, backend, network,
                fleet_metrics=self.metrics,
                failure_threshold=failure_threshold,
                reset_timeout=reset_timeout,
                max_remote_wait=max_remote_wait,
                restart_defer_epsilon=restart_defer_epsilon,
                snapshot_store=self.snapshot_store,
                **node_kwargs,
            )
            for name in names
        ]
        if hasattr(backend, "add_promotion_listener"):
            backend.add_promotion_listener(self._on_promotion)
        self.router = FleetRouter(self, policy)
        #: Recent end-to-end query traces (router → node → network), for
        #: the CLI's ``\trace`` and post-mortem inspection.
        self.traces = TraceLog(128)
        self.regions = {}  # base cid -> {node name: per-node cid}
        self._epoch = self.clock.now()
        #: Optional shared history recorder (repro.history), None when
        #: recording is off.
        self.history = None
        if record_history:
            from repro.history.recorder import HistoryRecorder

            self.attach_history(
                record_history
                if isinstance(record_history, HistoryRecorder)
                else HistoryRecorder()
            )

    def _on_promotion(self, info):
        """Re-resolve the cache tier onto a freshly promoted shard
        primary: every agent tailing the dead primary's log re-binds to
        the new one's (the replica's log is a prefix-consistent copy, so
        agent checkpoints stay valid), and fleet-shared plan snapshots
        are dropped — they may embed placements chosen against the dead
        server's statistics."""
        shard = info["shard"]
        for node in self.nodes:
            for agent in node.agents.values():
                if getattr(agent, "shard_id", None) == shard:
                    agent.backend_catalog = info["catalog"]
                    agent.log = info["log"]
        self.snapshot_store.invalidate(reason="shard-promotion")

    def attach_history(self, recorder):
        """Share one :class:`~repro.history.recorder.HistoryRecorder`
        across the whole deployment: commit observers on every
        replication source, the fleet event log's sink, and every node's
        per-query capture.  Returns the recorder."""
        self.history = recorder
        recorder.attach_backend(self.backend)
        recorder.attach_events(self.metrics)
        for node in self.nodes:
            node.history = recorder
        return recorder

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def node(self, name):
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no fleet node named {name!r}")

    def region_cid(self, cid, node):
        """The per-node region id for base region ``cid`` on ``node``."""
        name = node if isinstance(node, str) else node.name
        return f"{cid}@{name}"

    # ------------------------------------------------------------------
    # Fleet-wide DDL
    # ------------------------------------------------------------------
    def create_region(self, cid, update_interval, update_delay, heartbeat_interval=2.0):
        """Create region ``cid`` on every node (as ``cid@node``)."""
        created = {}
        for node in self.nodes:
            node_cid = self.region_cid(cid, node)
            node.create_region(
                node_cid, update_interval, update_delay,
                heartbeat_interval=heartbeat_interval,
            )
            created[node.name] = node_cid
        self.regions[cid] = created
        return created

    def create_matview(self, name, base_table, columns, predicate=None, region=None):
        """Define the view on every node, in that node's copy of ``region``."""
        if region not in self.regions:
            raise KeyError(f"unknown fleet region {region!r}; create_region first")
        views = {}
        for node in self.nodes:
            views[node.name] = node.create_matview(
                name, base_table, columns,
                predicate=predicate, region=self.regions[region][node.name],
            )
        return views

    def declare_table_consistency(self, table, mode):
        """Declare a base table ``strict``/``relaxed`` on every node.

        Strictness shapes guard construction and the snapshot
        fingerprint, so the declaration must be fleet-uniform — a session
        token is only honored if whichever node serves the read knows the
        table is strict.
        """
        for node in self.nodes:
            node.declare_table_consistency(table, mode)
        return mode

    def alter_region(self, cid, update_interval=None, update_delay=None):
        """Reconfigure region ``cid``'s currency parameters on every node.

        Each node's :meth:`~repro.cache.mtcache.MTCache.alter_region`
        invalidates its plan cache and the shared snapshot store — the
        parameters feed plan choice and the snapshot fingerprint.
        """
        if cid not in self.regions:
            raise KeyError(f"unknown fleet region {cid!r}")
        altered = {}
        for node in self.nodes:
            altered[node.name] = node.alter_region(
                self.regions[cid][node.name],
                update_interval=update_interval,
                update_delay=update_delay,
            )
        return altered

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def crash_node(self, name):
        """Kill one node (in-memory state lost; router skips it)."""
        node = self.node(name)
        node.crash()
        # Topology change: snapshots may embed guards/placements chosen
        # under the old fleet shape — drop them rather than reason about
        # which survive.
        self.snapshot_store.invalidate(reason="node-crash")
        return node

    def restart_node(self, name, warmup=None):
        """Cold-restart a crashed node (deferred if its link is down)."""
        node = self.node(name)
        node.restart(warmup=warmup)
        self.snapshot_store.invalidate(reason="node-restart")
        return node

    def drain_node(self, name):
        """Quiesce one node (no new queries; caches stay warm)."""
        node = self.node(name)
        node.drain()
        return node

    def resume_node(self, name):
        """Put a drained node back into rotation."""
        node = self.node(name)
        node.resume()
        return node

    # ------------------------------------------------------------------
    # Query entry point
    # ------------------------------------------------------------------
    def execute(self, sql, bound=None, session=None):
        """Route one statement through the front door."""
        return self.router.execute(sql, bound=bound, session=session)

    def run_for(self, seconds):
        """Advance simulated time (shared scheduler: heartbeats, agents
        of every node)."""
        return self.backend.run_for(seconds)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def max_staleness(self):
        """Worst staleness bound across the whole fleet (None: unknown)."""
        worst = None
        for node in self.nodes:
            staleness = node.max_staleness()
            if staleness is None:
                return None
            if worst is None or staleness > worst:
                worst = staleness
        return worst

    def reset_load(self):
        """Restart the simulated-capacity ledger (between benchmark runs)."""
        now = self.clock.now()
        self._epoch = now
        for node in self.nodes:
            node.busy_until = now
            node.busy_seconds = 0.0

    def simulated_makespan(self):
        """How long the routed workload kept the fleet busy, had the nodes
        truly run in parallel: latest node-finish time minus the epoch."""
        finish = max((node.busy_until for node in self.nodes), default=self._epoch)
        return max(finish - self._epoch, 0.0)

    def slo_report(self):
        """Currency-SLO scorecard for the whole fleet.

        Answers the operator's question — *are the bounds we promised
        actually being met, and with how much room?* — from the metrics
        the guards already record:

        * ``slack`` — per node, per region: the ``B - d`` distribution at
          guard evaluation (:meth:`Histogram.summary`), plus a
          ``bound_missed`` flag when the worst observed slack was
          negative.  Stalled agents show up as this distribution sliding
          toward (and past) zero.
        * ``guard_outcomes`` — per node: local / remote / stale serve
          counts from ``currency_guard_region_total``.
        * ``session_guards`` — per node: session-floor guard outcomes
          (``local`` / ``remote`` / ``degraded``) from
          ``session_guard_total`` — how often read-your-writes tokens
          forced a routing decision.
        * ``degraded`` — stale serves forced by back-end unavailability.
        * ``deferred_restarts`` — per node: restarts that had to wait out
          an unreachable back-end (each with its scheduled retry time).
        * ``routing`` — queries by serving node.
        * ``breaker_transitions`` — per node, by target state.
        * ``events`` — fleet + node event-log counts by kind.
        """
        slack = {}
        outcomes = {}
        session_guards = {}
        events = dict(self.metrics.events.counts_by_kind())
        for node in self.nodes:
            reg = node.metrics
            per_region = {}
            for key, hist in sorted(reg.family("currency_slack_seconds").items()):
                labels = dict(key)
                summary = hist.summary()
                summary["bound_missed"] = hist.count > 0 and summary["min"] < 0
                per_region[labels.get("region", "-")] = summary
            if per_region:
                slack[node.name] = per_region
            node_outcomes = {}
            for key, counter in sorted(reg.family("currency_guard_region_total").items()):
                labels = dict(key)
                outcome = labels.get("outcome", "-")
                node_outcomes[outcome] = node_outcomes.get(outcome, 0) + counter.value
            if node_outcomes:
                outcomes[node.name] = node_outcomes
            node_session = {}
            for key, counter in sorted(reg.family("session_guard_total").items()):
                labels = dict(key)
                outcome = labels.get("outcome", "-")
                node_session[outcome] = node_session.get(outcome, 0) + counter.value
            if node_session:
                session_guards[node.name] = node_session
            for kind, n in reg.events.counts_by_kind().items():
                events[kind] = events.get(kind, 0) + n
        routing = {}
        for key, counter in self.metrics.family("fleet_routed_total").items():
            labels = dict(key)
            name = labels.get("node", "-")
            routing[name] = routing.get(name, 0) + counter.value
        degraded = sum(
            counter.value
            for counter in self.metrics.family("fleet_degraded_total").values()
        )
        breakers = {}
        for key, counter in self.metrics.family("fleet_breaker_transitions_total").items():
            labels = dict(key)
            breakers.setdefault(labels.get("node", "-"), {})[labels.get("to", "-")] = (
                counter.value
            )
        deferred = {
            node.name: [dict(d) for d in node.restart_deferrals]
            for node in self.nodes if node.restart_deferrals
        }
        return {
            "slack": slack,
            "guard_outcomes": outcomes,
            "session_guards": session_guards,
            "degraded": degraded,
            "deferred_restarts": deferred,
            "routing": routing,
            "breaker_transitions": breakers,
            "events": events,
        }

    def snapshot_metrics(self):
        """Fleet and per-node registry snapshots under node-labelled keys:
        ``{"fleet": {...}, "node0": {...}, ...}``."""
        out = {"fleet": self.metrics.snapshot()}
        for node in self.nodes:
            out[node.name] = node.metrics.snapshot()
        return out

    def status(self):
        """Monitoring snapshot for the CLI's ``\\fleet`` command."""
        nodes = {}
        for node in self.nodes:
            window = node.query_log.summary()
            nodes[node.name] = {
                "routed": node.queries_routed,
                "inflight": node.inflight,
                "lifecycle": node.lifecycle.value,
                "breaker": node.breaker.state.value,
                "staleness": node.max_staleness(),
                "local_fraction": window["local_fraction"],
                "busy_seconds": node.busy_seconds,
            }
        now = self.clock.now()
        return {
            "policy": self.router.policy.name,
            "backend": self.backend.describe_topology(),
            "nodes": nodes,
            "network": {
                "latency": self.network.latency,
                "drop_rate": self.network.drop_rate,
                "outage_active": not self.network.backend_available(now),
                "agents_stalled": self.network.agents_stalled(now=now),
                "partitioned": self.network.partitioned_nodes(now),
            },
        }

    def __repr__(self):
        return (
            f"<CacheFleet nodes={[n.name for n in self.nodes]} "
            f"policy={self.router.policy.name}>"
        )
