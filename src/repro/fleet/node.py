"""One cache node of a fleet: an MTCache behind a simulated network.

:class:`FleetNode` extends :class:`~repro.cache.mtcache.MTCache` with the
three things a fleet member needs:

* every back-end call goes through the shared
  :class:`~repro.fleet.network.SimulatedNetwork` with retry + exponential
  backoff, feeding a per-node :class:`~repro.fleet.breaker.CircuitBreaker`;
* currency guards become *availability-aware*: when the guard wants the
  remote branch but the back-end is unreachable (outage window or open
  breaker), the node degrades instead of erroring — it serves the local
  (stale) rows with a constraint-violation warning, exactly the
  ``serve_stale`` behavior of its
  :class:`~repro.cache.mtcache.FallbackPolicy`; nodes configured with the
  ``error`` policy already abort at the guard and never reach this path;
* its distribution agents honor injected stall windows, so experiments
  can let one node's regions fall behind the rest of the fleet.

Remote-only plans (currency bound 0, shipped subqueries) have no local
branch to degrade to; those calls *ride out* short outages by retrying on
the simulated clock — waiting out breaker cooldowns — up to
``max_remote_wait`` simulated seconds before the failure propagates.
"""

import enum
import random

from repro.cache.mtcache import MTCache
from repro.common.errors import CircuitOpenError, FleetStateError, NetworkError
from repro.fleet.breaker import BreakerState, CircuitBreaker
from repro.obs.metrics import NULL_REGISTRY
from repro.replication.agent import DistributionAgent
from repro.replication.failover import AgentSupervisor

#: Default slack added past a covering outage window before a deferred
#: restart retries.  Configurable per fleet via
#: :attr:`~repro.fleet.config.FleetConfig.restart_defer_epsilon`.
RESTART_DEFER_EPSILON = 1e-3

#: Retry cadence for deferred restarts whose unavailability has no
#: scheduled end (a fenced shard primary awaiting promotion, rather than
#: an outage window with a known close).  Polling at the epsilon alone
#: would spin the scheduler once per millisecond for the whole window.
RESTART_RETRY_INTERVAL = 0.5


class NodeLifecycle(enum.Enum):
    """Where one fleet node is in its crash/recovery life.

    * **UP** — serving normally.
    * **DRAINING** — quiesced: refuses new queries, keeps its data warm.
    * **CRASHED** — process gone: in-memory views, plan cache and local
      heartbeats are lost; the router skips it entirely.
    * **WARMING** — restarted and rebuilt, but treated as degraded by the
      router until the warm-up window ends.
    """

    UP = "up"
    DRAINING = "draining"
    CRASHED = "crashed"
    WARMING = "warming"


class FleetNode(MTCache):
    """An MTCache that reaches its back-end over a simulated network."""

    def __init__(self, name, backend, network, *, fleet_metrics=None,
                 failure_threshold=3, reset_timeout=5.0, max_remote_wait=60.0,
                 retry_backoff=0.25, retry_backoff_cap=8.0,
                 restart_defer_epsilon=None, warmup_seconds=2.0,
                 failover_threshold=None, failover_check_interval=None,
                 **mtcache_kwargs):
        self.name = name
        self.network = network
        self.fleet_metrics = fleet_metrics if fleet_metrics is not None else NULL_REGISTRY
        self.breaker = CircuitBreaker(
            backend.clock,
            failure_threshold=failure_threshold,
            reset_timeout=reset_timeout,
            registry=self.fleet_metrics,
            name=name,
        )
        #: Ceiling (simulated seconds) a remote-only call may spend riding
        #: out drops, outages and breaker cooldowns before giving up.
        self.max_remote_wait = max_remote_wait
        #: Base and ceiling of the capped exponential retry backoff.
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        #: Slack past a covering outage window before a deferred restart
        #: retries (None: the module default).
        self.restart_defer_epsilon = (
            RESTART_DEFER_EPSILON if restart_defer_epsilon is None
            else restart_defer_epsilon
        )
        #: Deterministic per-node jitter source for retry backoff: seeded
        #: from the network seed + node name (never the wall clock), so a
        #: chaos history replays byte-identically under the same seed.
        self._backoff_rng = random.Random(
            f"backoff:{getattr(network, 'seed', 0)}:{name}"
        )
        #: Deferred-restart records ({"time", "retry_at"}), in order —
        #: surfaced by the fleet's ``slo_report()``.
        self.restart_deferrals = []
        #: How long a restarted node stays WARMING before the router
        #: treats it as a full peer again.
        self.warmup_seconds = warmup_seconds
        #: Stalled-agent failover: promote a standby once a region's agent
        #: makes no progress for this many simulated seconds (None: off).
        self.failover_threshold = failover_threshold
        self.failover_check_interval = failover_check_interval
        self.supervisors = {}  # cid -> AgentSupervisor
        self._lifecycle = NodeLifecycle.UP
        self._warm_event = None
        #: Router bookkeeping (FleetRouter maintains these).
        self.inflight = 0
        self.queries_routed = 0
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        super().__init__(backend, **mtcache_kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def lifecycle(self):
        return self._lifecycle

    @property
    def accepting(self):
        """May the router send this node new queries right now?"""
        return self._lifecycle in (NodeLifecycle.UP, NodeLifecycle.WARMING)

    def _lifecycle_event(self, state, message, severity="info"):
        self._lifecycle = state
        now = self.clock.now()
        self.fleet_metrics.counter(
            "fleet_node_lifecycle_total",
            labels={"node": self.name, "state": state.value},
            help="node lifecycle transitions by target state",
        ).inc()
        self.fleet_metrics.event(
            "lifecycle", message, severity=severity, time=now,
            node=self.name, state=state.value,
        )

    def _cancel_warmup(self):
        if self._warm_event is not None:
            self._warm_event.cancel()
            self._warm_event = None

    def crash(self):
        """Kill the node: everything in memory is lost.

        Materialized views, the plan cache, the query log and the local
        heartbeat tables vanish; agents and supervisors stop mid-flight.
        The durable pieces — catalog definitions and the agent checkpoint
        store — survive for :meth:`restart` to rebuild from.
        """
        if self._lifecycle is NodeLifecycle.CRASHED:
            raise FleetStateError(f"node {self.name} is already crashed")
        self._cancel_warmup()
        for supervisor in self.supervisors.values():
            supervisor.stop()
        for agent in self.agents.values():
            agent.stop()
        for view in self.catalog.matviews():
            view.table.truncate()
            view.applied_txn = 0
            view.snapshot_time = 0.0
            view.shard_snapshots.clear()
        for heartbeat in self._local_heartbeats.values():
            heartbeat.truncate()
        self.invalidate_plans()
        self.query_log.clear()
        # A fresh process starts with a fresh (closed) breaker.
        self.breaker.state = BreakerState.CLOSED
        self.breaker.failures = 0
        self.breaker.opened_at = None
        self._lifecycle_event(
            NodeLifecycle.CRASHED,
            f"{self.name} crashed: views, plan cache and heartbeats lost",
            severity="error",
        )

    def restart(self, warmup=None):
        """Cold-restart a crashed node and begin warming it up.

        Rebuild order per region: a fresh agent re-registers against the
        region, re-subscribes every view (repopulating from the back-end
        and replaying the replication-log tail), checkpoints, and resumes
        its propagation cadence.  The node then serves as WARMING —
        degraded in the router's eyes — until ``warmup`` (default
        ``warmup_seconds``) simulated seconds pass.

        The rebuild needs the back-end: when this node's link is cut
        (outage or partition), the restart is deferred to just after the
        covering window ends and False is returned.
        """
        if self._lifecycle is not NodeLifecycle.CRASHED:
            raise FleetStateError(
                f"node {self.name} is {self._lifecycle.value}, not crashed"
            )
        warmup = self.warmup_seconds if warmup is None else warmup
        if not self.network.backend_available(node=self.name):
            now = self.clock.now()
            ends = self.network.outage_ends_at(node=self.name)
            if ends is not None:
                retry_at = ends + self.restart_defer_epsilon
            else:
                # Unavailability with no scheduled end (a fenced shard
                # primary awaiting promotion): poll at a bounded cadence.
                retry_at = now + RESTART_RETRY_INTERVAL
            self.restart_deferrals.append({"time": now, "retry_at": retry_at})
            self.fleet_metrics.counter(
                "fleet_restart_deferrals_total", labels={"node": self.name},
                help="restarts deferred because the back-end was unreachable",
            ).inc()
            self.fleet_metrics.event(
                "lifecycle",
                f"{self.name} restart deferred to t={retry_at:g}: "
                f"back-end unreachable", severity="warning",
                time=now, node=self.name, state="restart_deferred",
                retry_at=retry_at,
            )
            self.scheduler.at(
                retry_at,
                lambda: self.restart(warmup=warmup)
                if self._lifecycle is NodeLifecycle.CRASHED else None,
                name=f"restart:{self.name}",
            )
            return False
        self._lifecycle_event(
            NodeLifecycle.WARMING,
            f"{self.name} restarting: cold-cache rebuild begins",
        )
        for region in self.catalog.regions():
            self._rebuild_region(region)
        self.fleet_metrics.counter(
            "fleet_node_restarts_total", labels={"node": self.name},
            help="cold restarts completed",
        ).inc()
        self._warm_event = self.scheduler.after(
            warmup, self._complete_warmup, name=f"warmup:{self.name}"
        )
        return True

    def _rebuild_region(self, region):
        """One region's cold rebuild: fresh agents, re-subscribed views.

        One agent per replication source; the views were truncated by the
        crash, so each source agent re-populates its partition's slice
        without wiping its siblings' (``truncate=False``).
        """
        keys = []
        for source in self.backend.replication_sources():
            key = self._agent_key(region.cid, source.shard_id)
            agent = DistributionAgent(
                region, source.catalog, source.log, self.catalog, self.clock,
                registry=self.metrics, checkpoints=self.checkpoints,
                shard_id=source.shard_id, checkpoint_key=key,
            )
            agent.attach_heartbeat(self._local_heartbeats[key])
            for view_name in region.view_names:
                agent.subscribe(self.catalog.matview(view_name), truncate=False)
            self.network.wrap_agent(agent, node=self.name, shard=source.shard_id)
            agent.start(self.scheduler, interval=region.update_interval)
            self.agents[key] = agent
            keys.append((source.shard_id, key))
        self._region_agent_keys[region.cid] = keys
        for _, key in keys:
            self._start_supervisor(key)

    def _complete_warmup(self):
        self._warm_event = None
        if self._lifecycle is NodeLifecycle.WARMING:
            self._lifecycle_event(
                NodeLifecycle.UP, f"{self.name} warmed up: serving normally"
            )

    def drain(self):
        """Quiesce: stop accepting new queries, keep the caches warm.

        Returns the number of queries still in flight (always 0 in the
        discrete-time simulation — queries complete within their tick)."""
        if self._lifecycle is NodeLifecycle.CRASHED:
            raise FleetStateError(f"cannot drain crashed node {self.name}")
        self._cancel_warmup()
        self._lifecycle_event(
            NodeLifecycle.DRAINING, f"{self.name} draining: refusing new queries"
        )
        return self.inflight

    def resume(self):
        """Put a drained node back into rotation."""
        if self._lifecycle is not NodeLifecycle.DRAINING:
            raise FleetStateError(
                f"node {self.name} is {self._lifecycle.value}, not draining"
            )
        self._lifecycle_event(NodeLifecycle.UP, f"{self.name} resumed")

    def _start_supervisor(self, cid):
        if self.failover_threshold is None:
            return None
        supervisor = AgentSupervisor(
            self, cid,
            stall_threshold=self.failover_threshold,
            check_interval=self.failover_check_interval,
            registry=self.fleet_metrics, node=self.name,
        )
        supervisor.start(self.scheduler)
        self.supervisors[cid] = supervisor
        return supervisor

    # ------------------------------------------------------------------
    # Back-end access
    # ------------------------------------------------------------------
    def remote_available(self, shards=None):
        """Would a remote call have a chance right now?  Used by guards
        to decide between the remote branch and graceful degradation.
        ``shards`` narrows the check to the partitions the call would
        touch (a shard-scoped outage doesn't block other shards)."""
        return (self.network.backend_available(node=self.name, shards=shards)
                and self.breaker.available())

    def _backend_call(self, fn, *args, shards=None):
        """Back-end call with retry/backoff over the simulated network.

        Failed attempts feed the circuit breaker; an open breaker is
        waited out on the simulated clock (modelling client retry-after)
        rather than busy-looped.  Gives up — re-raising the last network
        error — once ``max_remote_wait`` simulated seconds have passed.
        Retrying is safe for DML too: the simulated network raises its
        faults *before* invoking ``fn``, so a failed attempt never
        reached the back-end.
        """
        clock = self.clock
        deadline = clock.now() + self.max_remote_wait
        attempt = 0
        while True:
            if not self.breaker.available():
                wait = min(self.breaker.retry_at, deadline) - clock.now()
                if wait > 0:
                    self.network.sleep(wait)
                if clock.now() >= deadline and not self.breaker.available():
                    raise CircuitOpenError(
                        f"breaker open on {self.name}: back-end calls refused"
                    )
                continue
            try:
                out = self.network.call(
                    fn, *args, node=self.name,
                    shards=shards, trace=self.metrics.active_trace,
                )
            except NetworkError as exc:
                self.breaker.record_failure()
                attempt += 1
                self.fleet_metrics.counter(
                    "fleet_remote_retries_total",
                    labels={"node": self.name, "reason": exc.reason},
                    help="failed back-end attempts that were retried",
                ).inc()
                if clock.now() >= deadline:
                    raise
                if self.breaker.available():
                    # Capped exponential backoff with deterministic seeded
                    # jitter between attempts while closed; an open
                    # breaker's cooldown paces us instead.  The jitter rng
                    # is a pure function of (network seed, node name), so
                    # identical seeds replay identical sleeps.
                    delay = min(
                        self.retry_backoff_cap,
                        self.retry_backoff * (2.0 ** (attempt - 1)),
                    ) * (0.5 + 0.5 * self._backoff_rng.random())
                    self.fleet_metrics.counter(
                        "fleet_remote_backoff_seconds_total",
                        labels={"node": self.name},
                        help="simulated seconds slept in remote retry backoff",
                    ).inc(delay)
                    self.network.sleep(delay)
                continue
            self.breaker.record_success()
            return out

    def remote_executor(self, sql, shards=None):
        """Rows-only back-end endpoint for RemoteQuery operators."""
        return self._backend_call(
            self.backend.execute_remote, sql, shards, shards=shards
        )

    def backend_dml(self, stmt):
        """Ship DML to the back-end through the node's network path, so
        writes see the same faults, retries and breaker as reads.

        The statement's shard pin (when the back-end can compute one)
        scopes the availability check: a write to a healthy shard is not
        blocked by another shard's failover, while a write to the fenced
        shard itself retries until its replica is promoted.
        """
        shards = self.backend.dml_shards(stmt)
        pin = None if shards is None else tuple(shards)
        return self._backend_call(self.backend.execute_dml, stmt, shards=pin)

    # ------------------------------------------------------------------
    # Availability-aware currency guards
    # ------------------------------------------------------------------
    def make_currency_guard(self, view, bound, shard=None):
        """Wrap the base guard with the degraded mode.

        When the guard picks the remote branch but the back-end is
        unreachable, serve the stale local rows with a warning instead of
        letting the remote branch fail — availability over currency, the
        coordination-avoidance trade the fleet exists to demonstrate.
        """
        base = super().make_currency_guard(view, bound, shard=shard)
        node = self
        pin = None if shard is None else (shard,)

        def selector(ctx):
            choice = base(ctx)
            if choice == 1 and not node.remote_available(shards=pin):
                failover = not node.backend.shards_available(pin)
                if failover:
                    decisions = ctx.session_decisions
                    floor_forced = bool(
                        decisions
                        and decisions[-1][0] == view.name
                        and decisions[-1][1] == "remote"
                    )
                    strict = node.table_consistency(view.base_table) == "strict"
                    if floor_forced or strict:
                        # Strict tables and session-floor reads must not
                        # fall back to rows below the floor: take the
                        # remote branch anyway and let the retry loop ride
                        # out the promotion (the new primary covers the
                        # floor — with a durable log it replays the whole
                        # tail before serving).
                        node.fleet_metrics.counter(
                            "fleet_failover_blocked_total",
                            labels={
                                "node": node.name,
                                "reason": "session_floor" if floor_forced else "strict",
                            },
                            help="reads that rode out a shard failover "
                                 "instead of degrading",
                        ).inc()
                        return 1
                    what = "shard failover in progress"
                else:
                    what = "back-end unreachable"
                ctx.record_warning(
                    f"degraded: {what} from {node.name}; serving "
                    f"{view.name} beyond its {bound:g}s bound"
                )
                snapshot = node._view_snapshot(view, shard)
                ctx.record_snapshot(snapshot)
                if ctx.capture_reads:
                    ctx.record_read(
                        view.name, view.base_table, view.region, shard,
                        snapshot,
                        node.table_consistency(view.base_table) == "strict",
                        node._read_sources(view.region, shard),
                    )
                node.metrics.counter(
                    "currency_guard_degraded_total", labels={"view": view.name},
                    help="guard fallbacks forced by back-end unavailability",
                ).inc()
                node.fleet_metrics.counter(
                    "fleet_degraded_total",
                    labels={"node": node.name, "policy": node.fallback_policy},
                    help="queries served stale because the back-end was down",
                ).inc()
                if failover:
                    node.fleet_metrics.counter(
                        "fleet_failover_degraded_total",
                        labels={"node": node.name, "view": view.name},
                        help="relaxed reads served within-bound from the "
                             "local copy during a shard failover",
                    ).inc()
                node.metrics.event(
                    "degraded",
                    f"{what} from {node.name}; serving "
                    f"{view.name} beyond its {bound:g}s bound",
                    severity="warning", time=node.clock.now(),
                    node=node.name, view=view.name,
                )
                return 0
            return choice

        # Keep the snapshot recipe of the base guard: snapshot-plan
        # instantiation on any node rebuilds the full wrapped guard.
        selector.guard_params = base.guard_params
        return selector

    # ------------------------------------------------------------------
    # Replication under the network
    # ------------------------------------------------------------------
    def create_region(self, cid, update_interval, update_delay, heartbeat_interval=2.0):
        region = super().create_region(
            cid, update_interval, update_delay, heartbeat_interval=heartbeat_interval
        )
        # Route each agent's wakes through the network's stall windows;
        # the scheduler captured the unwrapped bound method, so restart.
        for shard_id, key in self._region_agent_keys[cid]:
            agent = self.agents[key]
            self.network.wrap_agent(agent, node=self.name, shard=shard_id)
            agent.start(self.scheduler, interval=update_interval)
            self._start_supervisor(key)
        return region

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def max_staleness(self):
        """Worst guaranteed staleness bound across this node's regions.

        None when any region has not seen a heartbeat yet (unknown is
        treated as infinitely stale by the staleness-aware router).
        """
        worst = None
        for agent in self.agents.values():
            bound = agent.staleness_bound()
            if bound is None:
                return None
            if worst is None or bound > worst:
                worst = bound
        return worst

    def __repr__(self):
        return (
            f"<FleetNode {self.name} breaker={self.breaker.state.value} "
            f"routed={self.queries_routed}>"
        )
